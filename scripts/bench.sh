#!/bin/sh
# Run the perf-regression bench and diff BENCH_perf.json against the
# previous snapshot.
#
# Usage: scripts/bench.sh [--jobs N] [extra pytest args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
snapshot="$repo/BENCH_perf.json"
previous="$repo/BENCH_perf.prev.json"

if [ -f "$snapshot" ]; then
    cp "$snapshot" "$previous"
fi

cd "$repo"
PYTHONPATH=src python -m pytest benchmarks/test_perf.py -m perf -q -p no:cacheprovider "$@"

if [ -f "$previous" ]; then
    python scripts/bench_diff.py "$previous" "$snapshot"
else
    echo "no previous BENCH_perf.json - baseline recorded"
fi
