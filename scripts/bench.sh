#!/bin/sh
# Run the perf-regression bench and diff BENCH_perf.json against the
# previous snapshot. A run manifest (host info, phase wall times, all
# observability counters) is recorded alongside it as
# BENCH_manifest.json.
#
# Usage: scripts/bench.sh [--jobs N] [extra pytest args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
snapshot="$repo/BENCH_perf.json"
previous="$repo/BENCH_perf.prev.json"

if [ -f "$snapshot" ]; then
    cp "$snapshot" "$previous"
fi

cd "$repo"
PYTHONPATH=src python -m pytest benchmarks/test_perf.py -m perf -q -p no:cacheprovider "$@"

if [ -f "$previous" ]; then
    python scripts/bench_diff.py "$previous" "$snapshot"
else
    echo "no previous BENCH_perf.json - baseline recorded"
fi

# Cold-vs-warm memoization summary (repro.store): the snapshot records
# a fig6 run served entirely from the content-addressed store.
python - "$snapshot" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
speedup = data.get("speedup_cold_over_warm")
if speedup:
    print(f"warm-cache fig6: {speedup:.1f}x faster than cold serial "
          f"({data.get('warm_cache_hits')} store hits, "
          f"identical={data.get('warm_identical')})")
EOF

# Columnar backend summary: vectorized profile build and batched cache
# sweep vs their scalar twins (bit-identical by construction).
python - "$snapshot" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
build = data.get("speedup_profile_build")
sweep = data.get("speedup_cache_sweep")
if build and sweep:
    print(f"columnar backend: profile build {build:.1f}x, "
          f"cache sweep {sweep:.1f}x over scalar "
          f"(identical={data.get('columnar_identical')})")
EOF

# Job-queue service summary: the client storm's exactly-once accounting
# and sustained throughput against the shared engine + store.
python - "$snapshot" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
clients = data.get("storm_clients")
if clients:
    print(f"service storm: {clients} clients, "
          f"{data.get('storm_unique_computes')} computes "
          f"(exactly_once={data.get('storm_exactly_once')}, "
          f"dedupe hit rate {data.get('storm_dedupe_hit_rate'):.1%}), "
          f"{data.get('storm_cold_jobs_per_sec'):.0f} jobs/s cold / "
          f"{data.get('storm_warm_jobs_per_sec'):.0f} warm")
EOF

if [ -f "$repo/BENCH_manifest.json" ]; then
    echo "run manifest: BENCH_manifest.json"
fi
