#!/bin/sh
# Run the perf-regression bench and diff BENCH_perf.json against the
# previous snapshot. A run manifest (host info, phase wall times, all
# observability counters) is recorded alongside it as
# BENCH_manifest.json.
#
# Usage: scripts/bench.sh [--jobs N] [extra pytest args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
snapshot="$repo/BENCH_perf.json"
previous="$repo/BENCH_perf.prev.json"

if [ -f "$snapshot" ]; then
    cp "$snapshot" "$previous"
fi

cd "$repo"
PYTHONPATH=src python -m pytest benchmarks/test_perf.py -m perf -q -p no:cacheprovider "$@"

if [ -f "$previous" ]; then
    python scripts/bench_diff.py "$previous" "$snapshot"
else
    echo "no previous BENCH_perf.json - baseline recorded"
fi

if [ -f "$repo/BENCH_manifest.json" ]; then
    echo "run manifest: BENCH_manifest.json"
fi
