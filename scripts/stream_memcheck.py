"""Prove the streaming profiler's memory bound under a hard RLIMIT_AS cap.

Generates a multi-million-request trace to disk block by block, then
runs two capped subprocesses over the same file:

* ``--worker stream``   — ``build_profile_streaming(iter_blocks(path))``
  must *succeed* under the cap (peak memory is O(block)), and
* ``--worker inmemory`` — ``Trace.load_binary`` + single-pass
  ``build_profile`` must *die with MemoryError* under the same cap
  (peak memory is O(trace)).

If the in-memory leg survives, the cap is too generous to prove
anything and the check fails loudly; if the streaming leg dies, the
O(block) bound is broken. Exit status 0 means both expectations held.

Usage: python scripts/stream_memcheck.py [--requests N] [--cap-mb MB]
"""

from __future__ import annotations

import argparse
import resource
import subprocess
import sys
from pathlib import Path

#: Exit code a worker uses to report "MemoryError, as expected".
MEMORY_ERROR_EXIT = 3


def _generate(path: Path, requests: int, block_requests: int) -> None:
    from repro.stream import TraceBlockWriter
    from repro.workloads import make_generator

    generator = make_generator("hevc1", seed=0)
    with TraceBlockWriter(path, expected_requests=requests) as writer:
        for block in generator.generate_blocks(requests, block_requests):
            writer.write_block(block)
    print(f"generated {writer.requests_written:,} requests "
          f"-> {path} ({writer.bytes_written:,} bytes)")


def _config():
    # A hierarchy whose *profile* stays small (one leaf per 100k
    # requests, sufficient-stats streaming mode): the cap must measure
    # the pipeline's working set, not the size of the retained model —
    # a leaf-dense hierarchy holds O(trace) memory in the result itself
    # on both paths, proving nothing about streaming.
    from repro.core.hierarchy import HierarchyConfig, TemporalLayer

    return HierarchyConfig([TemporalLayer("request_count", 100_000)])


def _worker(mode: str, path: Path, cap_mb: int, block_requests: int) -> int:
    cap = cap_mb << 20
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    try:
        if mode == "stream":
            from repro.stream import build_profile_streaming, iter_blocks

            profile = build_profile_streaming(
                iter_blocks(path, block_requests), _config()
            )
        else:
            from repro.core.profiler import build_profile
            from repro.core.trace import Trace

            profile = build_profile(Trace.load_binary(path), _config(), stream=False)
    except MemoryError:
        print(f"worker {mode}: MemoryError under {cap_mb} MiB cap", flush=True)
        return MEMORY_ERROR_EXIT
    print(f"worker {mode}: built {len(profile.leaves)} leaves "
          f"under {cap_mb} MiB cap", flush=True)
    return 0


def _run_capped(mode: str, path: Path, cap_mb: int, block_requests: int) -> int:
    command = [
        sys.executable, __file__, "--worker", mode, "--trace", str(path),
        "--cap-mb", str(cap_mb), "--block-requests", str(block_requests),
    ]
    return subprocess.run(command).returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2_000_000)
    parser.add_argument("--cap-mb", type=int, default=512)
    parser.add_argument("--block-requests", type=int, default=8192)
    parser.add_argument("--trace", type=Path, default=None,
                        help="reuse an existing .mtr instead of generating")
    parser.add_argument("--worker", choices=["stream", "inmemory"],
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return _worker(args.worker, args.trace, args.cap_mb, args.block_requests)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="stream-memcheck-") as tmp:
        path = args.trace
        if path is None:
            path = Path(tmp) / "memcheck.mtr"
            _generate(path, args.requests, args.block_requests)

        failures = 0
        status = _run_capped("stream", path, args.cap_mb, args.block_requests)
        if status != 0:
            print(f"FAIL: streaming build did not fit the {args.cap_mb} MiB cap "
                  f"(exit {status}); the O(block) bound is broken", file=sys.stderr)
            failures += 1
        else:
            print(f"PASS: streaming build fits the {args.cap_mb} MiB cap")

        status = _run_capped("inmemory", path, args.cap_mb, args.block_requests)
        if status != MEMORY_ERROR_EXIT:
            print(f"FAIL: in-memory build survived the {args.cap_mb} MiB cap "
                  f"(exit {status}); the cap proves nothing — lower it or "
                  "raise --requests", file=sys.stderr)
            failures += 1
        else:
            print("PASS: in-memory build exceeds the cap, as expected")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
