"""Service smoke: a live job-queue server under 50 concurrent clients.

Starts ``python -m repro.eval serve`` as a real subprocess over a fresh
cache directory, storms it with concurrent clients submitting profile +
evaluate jobs, and proves four service contracts end to end:

* exactly-once — the engine executed each unique job once, no matter
  how many clients asked for it (asserted on the scheduler tallies);
* byte-identity — ``quick fig6`` served warm from the store the service
  populated is byte-identical to a direct ``--no-cache`` run, and the
  warm run simulated nothing;
* no orphaned workers — every pool worker PID the server reported is
  gone after a clean SIGTERM shutdown;
* no leaked lockfiles — the store's ``locks/`` directory is empty.

With ``--sanitize`` the server additionally runs the concurrency
sanitizers (``--lock-order-check`` plus the event-loop stall monitor);
the server exits nonzero on any lock-order violation or loop stall, and
the byte-identity leg then doubles as the proof that sanitized serving
changes nothing: the store populated by the *sanitized* server must be
byte-identical to a direct unsanitized ``--no-cache`` run.

Usage: PYTHONPATH=src python scripts/service_smoke.py [--clients 50] [--sanitize]
"""

import argparse
import dataclasses
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.eval.parallel import jobs_for  # noqa: E402
from repro.service import ServiceClient, storm  # noqa: E402


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_server(cache_dir, jobs, extra_args=()):
    """Launch ``repro.eval serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval", "serve",
         "--host", "127.0.0.1", "--port", "0",
         "--cache-dir", cache_dir, "--jobs", str(jobs),
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        rest = proc.stdout.read()
        fail(f"server did not announce an endpoint: {line!r}\n{rest}")
    port = int(line.rsplit(":", 1)[1])
    print(f"server up: {line} (pid {proc.pid})")
    return proc, port


def build_submissions(clients, requests):
    """Round-robin profile + evaluate jobs over ``clients`` clients."""
    evaluate = [("evaluate", dataclasses.asdict(job))
                for job in jobs_for("fig6", requests)]
    profile = [("profile", {"name": params["name"], "num_requests": requests})
               for _, params in evaluate]
    submissions = [
        [profile[index % len(profile)], evaluate[index % len(evaluate)]]
        for index in range(clients)
    ]
    unique = {(kind, tuple(sorted(params.items())))
              for client in submissions for kind, params in client}
    return submissions, len(unique)


def run_cli(arguments):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    subprocess.run(
        [sys.executable, "-m", "repro.eval"] + arguments,
        check=True, env=env, cwd=REPO, stdout=subprocess.DEVNULL,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent storm clients (default 50)")
    parser.add_argument("--requests", type=int, default=2_000,
                        help="requests per trace, matching 'quick' (default 2000)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="server worker processes (default: server's own)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the server under the lock-order checker "
                             "and event-loop stall monitor; any violation "
                             "or stall fails the smoke")
    parser.add_argument("--stall-threshold-ms", type=float, default=500.0,
                        help="loop-stall threshold for --sanitize "
                             "(default 500 ms; generous for noisy CI hosts)")
    args = parser.parse_args(argv)

    sanitizer_args = []
    if args.sanitize:
        sanitizer_args = ["--lock-order-check",
                          "--stall-threshold-ms", str(args.stall_threshold_ms)]
    workdir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    cache_dir = os.path.join(workdir, "cache")
    proc, port = start_server(cache_dir,
                              args.jobs or min(os.cpu_count() or 1, 8),
                              sanitizer_args)
    try:
        submissions, unique = build_submissions(args.clients, args.requests)
        total = sum(len(client) for client in submissions)
        print(f"storming: {args.clients} clients, {total} submissions, "
              f"{unique} unique jobs")
        responses = storm("127.0.0.1", port, submissions,
                          concurrency=args.clients)
        flat = [response for client in responses for response in client]
        bad = [r for r in flat if r.get("type") != "result"]
        if bad:
            fail(f"{len(bad)}/{total} submissions did not resolve: {bad[:3]}")

        with ServiceClient(port=port) as client:
            stats = client.stats()
        tally = stats["engine"]["tally"]
        worker_pids = stats["worker_pids"]
        print(f"engine tally: {json.dumps(tally, sort_keys=True)}")
        if tally["executed"] != unique:
            fail(f"exactly-once violated: {tally['executed']} executions "
                 f"for {unique} unique jobs")
        if tally["submitted"] + tally["deduped"] != total:
            fail(f"admission accounting off: submitted={tally['submitted']} "
                 f"deduped={tally['deduped']} for {total} submissions")
        if not worker_pids:
            fail("server reported no pool workers after the storm")

        proc.send_signal(signal.SIGTERM)
        tail, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"server exited with {proc.returncode}:\n{tail}")
        if args.sanitize:
            reports = [line for line in tail.splitlines()
                       if line.startswith(("lock-order:", "loop-stalls:"))]
            if len(reports) != 2:
                fail(f"sanitizer reports missing from server output:\n{tail}")
            for line in reports:
                print(f"server {line}")
        print("server shut down cleanly")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    deadline = time.monotonic() + 10
    orphans = list(worker_pids)
    while orphans and time.monotonic() < deadline:
        for pid in list(orphans):
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                orphans.remove(pid)
        if orphans:
            time.sleep(0.2)
    if orphans:
        fail(f"orphaned workers survived shutdown: {orphans}")
    print(f"no orphaned workers ({len(worker_pids)} pool pids reaped)")

    lock_dir = os.path.join(cache_dir, "locks")
    leaked = sorted(os.listdir(lock_dir)) if os.path.isdir(lock_dir) else []
    if leaked:
        fail(f"leaked lockfiles: {leaked}")
    print("no leaked lockfiles")

    warm = os.path.join(workdir, "warm.json")
    direct = os.path.join(workdir, "direct.json")
    manifest = os.path.join(workdir, "warm-manifest.json")
    run_cli(["quick", "fig6", "--requests", str(args.requests),
             "--cache-dir", cache_dir, "--json-out", warm,
             "--metrics-out", manifest])
    run_cli(["quick", "fig6", "--requests", str(args.requests),
             "--no-cache", "--json-out", direct])
    with open(warm, "rb") as handle:
        warm_bytes = handle.read()
    with open(direct, "rb") as handle:
        direct_bytes = handle.read()
    if warm_bytes != direct_bytes:
        fail("warm-from-service output differs from direct CLI output")
    with open(manifest) as handle:
        counters = json.load(handle)["metrics"]["counters"]
    hits = counters.get("store.memo.hits", 0)
    computed = counters.get("eval.runs.computed", 0)
    if hits < 1 or computed != 0:
        fail(f"warm run was not served by the service-populated store "
             f"(hits={hits}, computed={computed})")
    print(f"byte-identical with direct CLI output "
          f"({len(warm_bytes)} bytes, {hits} store hits, 0 recomputes)")
    print("service smoke: all contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
