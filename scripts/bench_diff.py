"""Diff two BENCH_perf.json snapshots: per-timing deltas, worst first.

Usage: python scripts/bench_diff.py OLD.json NEW.json
"""

import json
import sys


def _load_bench(path):
    """Load one BENCH json; exits with a clear message when unusable."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        print(f"error: cannot read {path}: {error.strerror or error}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as error:
        print(f"error: {path} is not valid JSON (line {error.lineno}: {error.msg}); "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict) or not isinstance(data.get("timings_seconds"), dict):
        print(f"error: {path} is not a BENCH snapshot "
              "(expected an object with a 'timings_seconds' mapping)", file=sys.stderr)
        raise SystemExit(2)
    _check_schema4_fields(path, data)
    _check_schema5_fields(path, data)
    _check_schema6_fields(path, data)
    _check_schema7_fields(path, data)
    _check_schema8_fields(path, data)
    _check_schema9_fields(path, data)
    return data


#: Snapshot fields introduced with the columnar backend (schema 4): the
#: scalar/columnar micro-bench timings and their speedup summaries. A
#: schema-4 snapshot missing any of them is a broken bench run, not a
#: diffable measurement.
_SCHEMA4_TIMINGS = (
    "profile_build_scalar",
    "profile_build_columnar",
    "cache_sweep_scalar",
    "cache_sweep_columnar",
)
_SCHEMA4_FIELDS = ("speedup_profile_build", "speedup_cache_sweep")


def _check_schema4_fields(path, data):
    """Fail loudly when a schema>=4 snapshot lacks the columnar entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 4:
        return  # pre-columnar snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA4_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA4_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required columnar "
              f"bench entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


#: Snapshot fields introduced with the streaming build (schema 5): the
#: streamed micro-bench timing, its ratio over the in-memory columnar
#: build, and the tracemalloc peak allocation sizes of both builds.
_SCHEMA5_TIMINGS = ("profile_build_streamed",)
_SCHEMA5_FIELDS = (
    "streaming_identical",
    "streaming_over_columnar",
    "peak_profile_memory_bytes",
    "peak_profile_memory_bytes_inmemory",
)


def _check_schema5_fields(path, data):
    """Fail loudly when a schema>=5 snapshot lacks the streaming entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 5:
        return  # pre-streaming snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA5_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA5_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required streaming "
              f"bench entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


#: Snapshot fields introduced with statistical sampling (schema 6): the
#: K-representative profile-build timing, its speedup over the full
#: columnar build, and the estimator's measured-vs-declared error.
_SCHEMA6_TIMINGS = ("sampled_profile_build",)
_SCHEMA6_FIELDS = (
    "speedup_sampled_profile_build",
    "sampled_geomean_error_percent",
    "sampled_error_bound_percent",
    "sampled_within_bound",
)


def _check_schema6_fields(path, data):
    """Fail loudly when a schema>=6 snapshot lacks the sampling entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 6:
        return  # pre-sampling snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA6_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA6_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required sampling "
              f"bench entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


#: Snapshot fields introduced with the job-queue service (schema 7):
#: the client-storm timings (cold store, then the same storm warm) and
#: the exactly-once/dedupe accounting of the engine underneath it.
_SCHEMA7_TIMINGS = ("service_storm_cold", "service_storm_warm")
_SCHEMA7_FIELDS = (
    "storm_clients",
    "storm_unique_jobs",
    "storm_unique_computes",
    "storm_exactly_once",
    "storm_dedupe_hit_rate",
    "storm_cold_jobs_per_sec",
    "storm_warm_jobs_per_sec",
)


def _check_schema7_fields(path, data):
    """Fail loudly when a schema>=7 snapshot lacks the service entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 7:
        return  # pre-service snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA7_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA7_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required service "
              f"storm entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


#: Snapshot fields introduced with the two-phase lint engine (schema 8):
#: full-repo lint wall time cold vs warm through the incremental
#: per-file cache, and the warm run's hit count (must equal the file
#: count — a warm lint re-parses nothing).
_SCHEMA8_TIMINGS = ("lint_full", "lint_warm")
_SCHEMA8_FIELDS = (
    "lint_files",
    "lint_full_wall_seconds",
    "lint_warm_wall_seconds",
    "lint_cache_hits_warm",
)


def _check_schema8_fields(path, data):
    """Fail loudly when a schema>=8 snapshot lacks the lint entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 8:
        return  # pre-lint-bench snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA8_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA8_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required lint "
              f"bench entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


#: Snapshot fields introduced with batched memory-system replay
#: (schema 9): the scalar-vs-batched DRAM replay micro timings, their
#: speedup on bit-identical stats, and the serial figure wall time
#: attributed to synthesis/crossbar/DRAM phases.
_SCHEMA9_TIMINGS = ("dram_replay_scalar", "dram_replay_batched")
_SCHEMA9_FIELDS = (
    "dram_replay_identical",
    "speedup_dram_replay",
    "figure_phase_seconds",
)


def _check_schema9_fields(path, data):
    """Fail loudly when a schema>=9 snapshot lacks the replay entries."""
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 9:
        return  # pre-batched-replay snapshot: nothing to require
    timings = data["timings_seconds"]
    missing = [key for key in _SCHEMA9_TIMINGS if key not in timings]
    missing += [f"top-level '{key}'" for key in _SCHEMA9_FIELDS if key not in data]
    if missing:
        print(f"error: {path} (schema {schema}) is missing required batched "
              f"replay bench entries: {', '.join(missing)}; "
              "re-run scripts/bench.sh to regenerate it", file=sys.stderr)
        raise SystemExit(2)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    old = _load_bench(argv[1])
    new = _load_bench(argv[2])

    if old.get("scale") != new.get("scale"):
        print(f"note: scales differ ({old.get('scale')} vs {new.get('scale')}); "
              "deltas are not comparable")

    old_times = old.get("timings_seconds", {})
    new_times = new.get("timings_seconds", {})
    rows = []
    for key in sorted(set(old_times) | set(new_times)):
        before, after = old_times.get(key), new_times.get(key)
        if before is None or after is None or before == 0:
            rows.append((float("-inf"), key, before, after, None))
        else:
            rows.append((after / before - 1.0, key, before, after, after / before - 1.0))
    rows.sort(reverse=True)

    if not rows:
        print("no timings recorded in either snapshot; nothing to diff")
        return 0
    width = max(len(key) for _, key, *_ in rows)
    print(f"{'timing':>{width}}  {'before':>8}  {'after':>8}  {'delta':>8}")
    for _, key, before, after, delta in rows:
        before_s = "-" if before is None else f"{before:8.3f}"
        after_s = "-" if after is None else f"{after:8.3f}"
        delta_s = "new/gone" if delta is None else f"{delta:+7.1%}"
        print(f"{key:>{width}}  {before_s}  {after_s}  {delta_s}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
