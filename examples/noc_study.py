#!/usr/bin/env python
"""NoC study: how the interconnect shapes memory behaviour.

The paper points out that bursts from different spatial partitions
"may need to go to different memory controllers, putting strain on the
interconnection network". This example replays one device per class
through (a) the flat crossbar and (b) a contention-aware 2D mesh with
edge-placed memory controllers, and reports what the topology adds:
hop counts, link hotspots and the latency delta.

Run:  python examples/noc_study.py
"""

import os

from repro import workload_trace
from repro.eval.reporting import print_table
from repro.interconnect.mesh import MeshConfig
from repro.sim.driver import simulate_trace
from repro.sim.noc_driver import simulate_trace_mesh

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "6000"))
WORKLOADS = {"CPU": "crypto1", "DPU": "fbc-linear1", "GPU": "trex1", "VPU": "hevc1"}


def main() -> None:
    rows = []
    hotspots = {}
    for device, name in WORKLOADS.items():
        trace = workload_trace(name, num_requests=NUM_REQUESTS)
        flat = simulate_trace(trace)
        meshed = simulate_trace_mesh(
            trace, mesh_config=MeshConfig(width=4, height=4, hop_latency=2)
        )
        rows.append(
            [
                device,
                f"{flat.avg_access_latency:,.0f}",
                f"{meshed.memory.avg_access_latency:,.0f}",
                f"{meshed.mesh.avg_hops:.1f}",
                f"{meshed.mesh.avg_latency:.0f}",
            ]
        )
        hotspots[device] = meshed.mesh.hottest_links(1)[0]

    print_table(
        "Crossbar vs 4x4 mesh (device at (0,0), controllers on the edges)",
        ["device", "xbar latency", "mesh latency", "avg hops", "NoC latency"],
        rows,
    )

    print("\nhottest link per device (link, busy cycles):")
    for device, (link, busy) in hotspots.items():
        print(f"  {device}: {link[0]} -> {link[1]}  ({busy:,} cycles)")
    print(
        "\nLinks near the injection point saturate first — the NoC "
        "dimension matters most for the bursty GPU/VPU streams."
    )


if __name__ == "__main__":
    main()
