#!/usr/bin/env python
"""Quickstart: profile a workload, synthesize it, validate the clone.

This walks the whole Mocktails loop from the paper's Fig. 1 (Option A):

    baseline trace  ->  statistical profile  ->  synthetic trace
                                             ->  same simulator, compare

Run:  python examples/quickstart.py
"""

import os

from repro import build_profile, synthesize, workload_trace
from repro.eval.metrics import percent_error
from repro.sim.driver import simulate_trace

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "20000"))


def main() -> None:
    # 1. The "proprietary" trace. In the paper this comes from RTL
    #    emulation of a real IP block; here a workload model stands in.
    trace = workload_trace("hevc1", num_requests=NUM_REQUESTS)
    print(f"baseline trace: {len(trace):,} requests, "
          f"{trace.read_count():,} reads / {trace.write_count():,} writes, "
          f"{trace.duration:,} cycles")

    # 2. Industry side: build the statistical profile (2L-TS hierarchy —
    #    500k-cycle temporal intervals, then dynamic spatial partitions).
    profile = build_profile(trace, name="hevc1")
    print(f"profile: {len(profile):,} leaf models covering "
          f"{profile.total_requests:,} requests")

    # 3. Academia side: synthesize a clone of the workload.
    synthetic = synthesize(profile, seed=42)
    print(f"synthetic trace: {len(synthetic):,} requests "
          f"({synthetic.read_count():,} reads — exact, by strict convergence)")

    # 4. Validate: replay both against the same memory system (Table III).
    baseline_stats = simulate_trace(trace)
    synthetic_stats = simulate_trace(synthetic)

    print("\nmetric                     baseline     synthetic    error")
    for key in ("read_bursts", "write_bursts", "read_row_hits",
                "write_row_hits", "avg_read_queue_length",
                "avg_write_queue_length", "avg_access_latency"):
        base = baseline_stats.summary()[key]
        synth = synthetic_stats.summary()[key]
        error = percent_error(synth, base)
        print(f"{key:26} {base:12,.2f} {synth:12,.2f} {error:7.2f}%")


if __name__ == "__main__":
    main()
