#!/usr/bin/env python
"""Drive a Mocktails job-queue service from a client.

Start a server in one terminal::

    python -m repro.eval serve --port 8642 --jobs 4

then run this against it::

    python examples/service_client.py --port 8642

With no server listening (or no arguments at all) the example
self-hosts: it starts an in-process server on an ephemeral port, runs
the same session against it, and shuts it down — so the script works
out of the box.

The client profiles a workload, synthesizes a clone, runs the DRAM
evaluation trio and a sampling-fidelity report — four job kinds over one
connection — then submits the profile job a second time to show the
result coming back memoized instead of recomputed. Each submission is
one JSON line on the socket; the server streams back an ack, optional
progress events and exactly one terminal result or error per job (see
DESIGN.md, "Service & engine").
"""

import argparse
import os

from repro.service import ServiceClient, ServiceError

WORKLOAD = "hevc1"


def _fmt(value) -> str:
    if isinstance(value, dict):
        return "{" + ", ".join(f"{k}: {_fmt(v)}" for k, v in sorted(value.items())) + "}"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def show(label: str, response: dict) -> None:
    payload = response["payload"]
    source = response["source"]
    print(f"\n{label} (job {response['job_id']}, {source}):")
    for key in sorted(payload):
        print(f"  {key:22} {_fmt(payload[key])}")


def self_hosted_server():
    """An in-process server on an ephemeral port; returns (port, stop)."""
    import asyncio
    import threading

    from repro import store
    from repro.engine import Scheduler
    from repro.service import JobServer

    store.configure()  # default cache dir, same as `python -m repro.eval`
    scheduler = Scheduler(workers=2, backend="thread")
    server = JobServer(scheduler, port=0)
    ready = threading.Event()
    state = {}

    async def main() -> None:
        await server.start()
        state["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.run()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    if not ready.wait(10):
        raise SystemExit("self-hosted server did not start")

    def stop() -> None:
        state["loop"].call_soon_threadsafe(server.request_stop)
        thread.join(10)
        scheduler.close(cancel_pending=True)
        store.deactivate()

    return server.port, stop


def run_session(client: ServiceClient, requests: int) -> None:
    if not client.ping():
        raise SystemExit("server did not answer ping")
    scale = {"name": WORKLOAD, "num_requests": requests}

    show("profile", client.submit("profile", scale))
    show("synthesize", client.submit("synthesize", scale))
    show(
        "evaluate",
        client.submit(
            "evaluate",
            scale,
            events=True,
            on_event=lambda event: print(f"  [job {event['job_id']} {event['state']}]"),
        ),
    )
    show("sample", client.submit("sample", dict(scale, k=4)))

    # Same job again: the engine already memoized it, so the second
    # answer comes straight from the store — byte-identical payload.
    again = client.submit("profile", scale)
    print(f"\nprofile again: source={again['source']}")

    try:
        client.submit("profile", {"name": "no-such-workload"})
    except ServiceError as error:
        print(f"bad request rejected as expected: {error.code}")

    stats = client.stats()
    print(f"\nengine tally: {stats['engine']['tally']}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--unix", default=None, help="unix socket path instead of TCP")
    parser.add_argument(
        "--requests", type=int,
        default=int(os.environ.get("EXAMPLE_REQUESTS", "2000")),
    )
    # parse_known_args: tolerate being launched under a test harness.
    args, _ = parser.parse_known_args()

    stop = None
    try:
        try:
            client = ServiceClient(host=args.host, port=args.port, unix_path=args.unix)
        except OSError:
            print(f"no server at {args.host}:{args.port}; self-hosting one")
            port, stop = self_hosted_server()
            client = ServiceClient(host="127.0.0.1", port=port)
        with client:
            run_session(client, args.requests)
    finally:
        if stop is not None:
            stop()


if __name__ == "__main__":
    main()
