#!/usr/bin/env python
"""The industry/academia exchange: ship a profile, not a trace.

Demonstrates the paper's Fig. 1 flow end to end, including:
  * on-disk sizes (profiles are the artifact that travels),
  * what the profile does and does not reveal (obfuscation),
  * coupled Option B synthesis with simulator backpressure feedback.

Run:  python examples/profile_exchange.py
"""

import os

import json
import tempfile
from pathlib import Path

from repro import (
    FeedbackSynthesizer,
    build_profile,
    load_profile,
    save_profile,
    workload_trace,
)
from repro.core.serialization import profile_to_dict
from repro.dram.config import MemoryConfig
from repro.sim.driver import simulate_profile

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "15000"))


def industry_side(workdir: Path) -> Path:
    """Collect a trace, profile it, ship the profile."""
    trace = workload_trace("manhattan", num_requests=NUM_REQUESTS)
    trace_path = workdir / "manhattan.mtr.gz"
    trace_bytes = trace.save_binary(trace_path)

    profile = build_profile(trace)  # note: no workload name recorded
    profile_path = workdir / "mystery-gpu.mprof.gz"
    profile_bytes = save_profile(profile, profile_path)

    print(f"trace on disk:   {trace_bytes:10,} bytes  (stays in-house)")
    print(f"profile on disk: {profile_bytes:10,} bytes  (shipped)")

    # What leaks? Leaf metadata and Markov transition counts — not the
    # request sequence. Show a sample leaf verbatim:
    sample = profile_to_dict(profile)["leaves"][0]
    print("\nfirst leaf of the shipped profile:")
    print(json.dumps(sample, indent=1)[:400], "...")
    return profile_path


def academia_side(profile_path: Path) -> None:
    """Load the profile and run a coupled (Option B) simulation."""
    profile = load_profile(profile_path)
    print(f"\nloaded profile: {len(profile):,} leaves, "
          f"{profile.total_requests:,} requests, hierarchy {profile.hierarchy}")

    # Option B: synthesis reacts to backpressure from a congested
    # single-channel memory system.
    congested = MemoryConfig(num_channels=1, read_queue_size=16)
    stats = simulate_profile(profile, congested, seed=7)
    print(f"coupled simulation serviced {stats.latency_count:,} requests; "
          f"accumulated backpressure delay {stats.backpressure_delay:,} cycles")
    print(f"avg access latency under congestion: {stats.avg_access_latency:,.0f} cycles")

    # The same profile, pulled manually one request at a time:
    synthesizer = FeedbackSynthesizer(profile, seed=7)
    first = synthesizer.next_request()
    synthesizer.report_backpressure(500)
    second = synthesizer.next_request()
    print(f"\nmanual pull: first request at t={first.timestamp:,}; after "
          f"reporting 500 cycles of backpressure the next is at "
          f"t={second.timestamp:,}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        profile_path = industry_side(workdir)
        academia_side(profile_path)


if __name__ == "__main__":
    main()
