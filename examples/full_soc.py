#!/usr/bin/env python
"""A full SoC from profiles: four devices sharing one memory system.

The end-state the paper argues for: an academic studies a realistic
mobile SoC — CPU + GPU + display + video — where every device is a
Mocktails profile, no proprietary trace in sight. On top, the ChargeCache
extension study from the paper's Discussion: do non-CPU devices benefit?

Run:  python examples/full_soc.py
"""

import os

from repro import build_profile, workload_trace
from repro.dram.chargecache import ChargeCacheConfig
from repro.dram.config import MemoryConfig
from repro.eval.reporting import print_table
from repro.sim.multi_device import run_soc

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "8000"))
DEVICES = {"cpu": "crypto1", "gpu": "trex1", "dpu": "fbc-linear1", "vpu": "hevc1"}


def build_device_profiles():
    return {
        device: build_profile(workload_trace(name, num_requests=NUM_REQUESTS))
        for device, name in DEVICES.items()
    }


def report(result, title):
    shares = result.bandwidth_share()
    rows = [
        [
            device,
            stats.requests,
            f"{stats.avg_access_latency:,.0f}",
            f"{shares[device]:.1%}",
        ]
        for device, stats in sorted(result.devices.items())
    ]
    print_table(title, ["device", "requests", "avg latency", "bw share"], rows)
    memory = result.memory
    print(
        f"memory: {memory.read_bursts:,} rd / {memory.write_bursts:,} wr bursts, "
        f"row hit rates {memory.read_row_hits / memory.read_bursts:.1%} rd / "
        f"{memory.write_row_hits / max(memory.write_bursts, 1):.1%} wr, "
        f"bus utilization {memory.avg_bus_utilization:.1%}"
    )


def main() -> None:
    profiles = build_device_profiles()

    baseline = run_soc(profiles, config=MemoryConfig())
    report(baseline, "Shared memory system (Table III)")

    boosted = run_soc(
        profiles, config=MemoryConfig(charge_cache=ChargeCacheConfig())
    )
    report(boosted, "Same SoC with ChargeCache (Sec. VI study)")

    rows = []
    for device in sorted(DEVICES):
        before = baseline.devices[device].avg_access_latency
        after = boosted.devices[device].avg_access_latency
        saving = (before - after) / before * 100 if before else 0.0
        rows.append([device, f"{before:,.0f}", f"{after:,.0f}", f"{saving:.1f}%"])
    print_table(
        "Per-device ChargeCache benefit",
        ["device", "baseline", "ChargeCache", "saving"],
        rows,
    )


if __name__ == "__main__":
    main()
