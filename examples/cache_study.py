#!/usr/bin/env python
"""Sec. V-style cache study: Mocktails vs HRD on SPEC-like CPU traces.

Reproduces the flavour of the paper's Figs. 14-16 on a handful of
benchmarks: L1 miss rate and write-backs across associativities for the
baseline, a Mocktails (dynamic) clone and an HRD clone.

Run:  python examples/cache_study.py
"""

import os

from repro import build_profile, synthesize, two_level_rs
from repro.baselines.hrd import HRDModel
from repro.cache.cache import CacheConfig
from repro.eval.reporting import print_table
from repro.sim.cache_driver import run_cache_trace
from repro.workloads.spec import SpecWorkload

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "20000"))
BENCHMARKS = ("gobmk", "libquantum", "hmmer")
ASSOCIATIVITIES = (2, 4, 8, 16)


def clones(benchmark: str):
    trace = SpecWorkload(benchmark).generate(NUM_REQUESTS)
    profile = build_profile(trace, two_level_rs(NUM_REQUESTS // 4))
    return {
        "baseline": trace,
        "mocktails": synthesize(profile, seed=1),
        "hrd": HRDModel.fit(trace).synthesize(seed=1),
    }


def main() -> None:
    for benchmark in BENCHMARKS:
        traces = clones(benchmark)
        miss_rows, writeback_rows = [], []
        for associativity in ASSOCIATIVITIES:
            config = CacheConfig(32 * 1024, associativity)
            results = {
                label: run_cache_trace(trace, config)
                for label, trace in traces.items()
            }
            miss_rows.append(
                [associativity]
                + [results[k].l1_miss_rate * 100 for k in ("baseline", "mocktails", "hrd")]
            )
            writeback_rows.append(
                [associativity]
                + [results[k].l1.write_backs for k in ("baseline", "mocktails", "hrd")]
            )
        print_table(
            f"{benchmark}: 32KB L1 miss rate (%) vs associativity",
            ["assoc", "baseline", "Mocktails", "HRD"],
            miss_rows,
        )
        print_table(
            f"{benchmark}: L1 write-backs vs associativity",
            ["assoc", "baseline", "Mocktails", "HRD"],
            writeback_rows,
        )


if __name__ == "__main__":
    main()
