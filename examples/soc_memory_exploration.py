#!/usr/bin/env python
"""SoC memory-system exploration using Mocktails profiles.

The paper's motivating use case (Sec. VI): an academic has *profiles* of
proprietary IP blocks — never the traces — and wants to explore memory
controller design points. Here we compare page policies and channel
counts across one workload per device class, driving every simulation
from synthesized requests only.

Run:  python examples/soc_memory_exploration.py
"""

import os

from repro import build_profile, synthesize, workload_trace
from repro.dram.config import MemoryConfig
from repro.eval.reporting import print_table
from repro.sim.driver import simulate_trace

NUM_REQUESTS = int(os.environ.get("EXAMPLE_REQUESTS", "10000"))
WORKLOADS = {"CPU": "crypto1", "DPU": "fbc-linear1", "GPU": "trex1", "VPU": "hevc1"}


def make_profiles():
    """The artifacts industry would ship: one profile per device."""
    profiles = {}
    for device, name in WORKLOADS.items():
        trace = workload_trace(name, num_requests=NUM_REQUESTS)
        profiles[device] = build_profile(trace, name=name)
    return profiles


def explore_page_policy(profiles) -> None:
    rows = []
    for device, profile in profiles.items():
        synthetic = synthesize(profile, seed=1)
        hits = {}
        for policy in ("open", "open_adaptive"):
            stats = simulate_trace(synthetic, MemoryConfig(page_policy=policy))
            hits[policy] = stats.read_row_hits + stats.write_row_hits
        rows.append([device, hits["open"], hits["open_adaptive"]])
    print_table(
        "Row hits: open vs open-adaptive page policy (synthetic traffic)",
        ["device", "open", "open_adaptive"],
        rows,
    )


def explore_channel_count(profiles) -> None:
    rows = []
    for device, profile in profiles.items():
        synthetic = synthesize(profile, seed=1)
        latencies = []
        for channels in (1, 2, 4):
            stats = simulate_trace(synthetic, MemoryConfig(num_channels=channels))
            latencies.append(stats.avg_access_latency)
        rows.append([device] + latencies)
    print_table(
        "Average access latency (cycles) vs channel count",
        ["device", "1 channel", "2 channels", "4 channels"],
        rows,
    )


def main() -> None:
    profiles = make_profiles()
    explore_page_policy(profiles)
    explore_channel_count(profiles)
    print(
        "\nEvery number above came from synthesized requests — the"
        " original traces were never needed after profiling."
    )


if __name__ == "__main__":
    main()
