"""Unit tests for hierarchical partitioning and leaf extraction."""

import pytest

from repro.core.hierarchy import (
    HierarchyConfig,
    SpatialLayer,
    TemporalLayer,
    build_leaves,
    micro_macro,
    two_level_rs,
    two_level_ts,
)

from ..conftest import req


class TestLayerValidation:
    def test_temporal_kinds(self):
        TemporalLayer("request_count", 10)
        TemporalLayer("cycle_count", 10)
        with pytest.raises(ValueError):
            TemporalLayer("bogus", 10)

    def test_temporal_size_positive(self):
        with pytest.raises(ValueError):
            TemporalLayer("cycle_count", 0)

    def test_spatial_kinds(self):
        SpatialLayer("dynamic")
        SpatialLayer("fixed", 4096)
        with pytest.raises(ValueError):
            SpatialLayer("bogus")

    def test_fixed_requires_block_size(self):
        with pytest.raises(ValueError):
            SpatialLayer("fixed")
        with pytest.raises(ValueError):
            SpatialLayer("fixed", 0)

    def test_config_needs_layers(self):
        with pytest.raises(ValueError):
            HierarchyConfig([])

    def test_describe(self):
        config = two_level_ts(500_000)
        assert "cycle_count=500000" in config.describe()
        assert "dynamic" in config.describe()

    def test_named_configs(self):
        assert len(two_level_ts().layers) == 2
        assert len(two_level_rs().layers) == 2
        fixed = two_level_ts(spatial="fixed", block_size=8192)
        assert fixed.layers[1].block_size == 8192

    def test_micro_macro_config(self):
        config = micro_macro(macro_cycles=100_000, micro_cycles=500)
        assert len(config.layers) == 3
        assert config.layers[0].size == 100_000
        assert config.layers[1].size == 500
        with pytest.raises(ValueError):
            micro_macro(macro_cycles=100, micro_cycles=100)

    def test_micro_macro_builds_leaves(self, bursty_trace):
        leaves = build_leaves(bursty_trace.requests, micro_macro(1_000_000, 10))
        assert sum(len(leaf) for leaf in leaves) == len(bursty_trace)
        # Micro intervals split each burst finely.
        two_level = build_leaves(bursty_trace.requests, two_level_ts(1_000_000))
        assert len(leaves) >= len(two_level)


class TestBuildLeaves:
    def test_temporal_then_spatial(self):
        # Two time bins; second bin has two spatial clusters.
        requests = [
            req(0, 0x100), req(10, 0x140),
            req(2_000_000, 0x100), req(2_000_010, 0x9000), req(2_000_020, 0x9040),
        ]
        config = HierarchyConfig(
            [TemporalLayer("cycle_count", 1_000_000), SpatialLayer("dynamic")]
        )
        leaves = build_leaves(requests, config)
        assert len(leaves) == 3
        assert sum(len(leaf) for leaf in leaves) == len(requests)

    def test_spatial_then_temporal(self):
        requests = [
            req(0, 0x100), req(10, 0x9000), req(20, 0x9040),
            req(1_500_000, 0x100),
        ]
        config = HierarchyConfig(
            [SpatialLayer("dynamic"), TemporalLayer("cycle_count", 1_000_000)]
        )
        leaves = build_leaves(requests, config)
        # Region 0x100 splits into two temporal leaves; 0x9000 stays one.
        assert len(leaves) == 3

    def test_leaf_region_from_spatial_layer(self):
        requests = [req(0, 0x1100), req(1, 0x1140)]
        config = HierarchyConfig([SpatialLayer("fixed", 0x1000)])
        leaves = build_leaves(requests, config)
        assert leaves[0].region.start == 0x1000
        assert leaves[0].region.end == 0x2000

    def test_leaf_region_tight_without_spatial_layer(self):
        requests = [req(0, 0x100, "R", 64), req(1, 0x300, "R", 64)]
        config = HierarchyConfig([TemporalLayer("request_count", 10)])
        leaves = build_leaves(requests, config)
        assert leaves[0].region.start == 0x100
        assert leaves[0].region.end == 0x340

    def test_three_level_hierarchy(self):
        requests = [req(i * 100, 0x1000 + (i % 4) * 0x1000) for i in range(40)]
        config = HierarchyConfig(
            [
                TemporalLayer("request_count", 20),
                SpatialLayer("fixed", 0x1000),
                TemporalLayer("request_count", 3),
            ]
        )
        leaves = build_leaves(requests, config)
        assert sum(len(leaf) for leaf in leaves) == 40
        assert all(len(leaf) <= 3 for leaf in leaves)

    def test_leaves_cover_all_requests(self, bursty_trace):
        leaves = build_leaves(bursty_trace.requests, two_level_ts(500_000))
        assert sum(len(leaf) for leaf in leaves) == len(bursty_trace)

    def test_start_time_property(self):
        requests = [req(123, 0x100), req(456, 0x140)]
        leaves = build_leaves(requests, two_level_ts())
        assert leaves[0].start_time == 123

    def test_rejects_unsorted_requests(self):
        with pytest.raises(ValueError):
            build_leaves([req(10, 0), req(0, 0)], two_level_ts())

    def test_empty_input(self):
        assert build_leaves([], two_level_ts()) == []

    def test_requests_keep_time_order_within_leaf(self, mixed_trace):
        leaves = build_leaves(mixed_trace.requests, two_level_ts())
        for leaf in leaves:
            times = [r.timestamp for r in leaf.requests]
            assert times == sorted(times)
