"""Unit tests for profile inspection."""

from repro.baselines.stm import stm_leaf_factory
from repro.core.inspect import format_summary, summarize_profile
from repro.core.profiler import build_profile


class TestSummarizeProfile:
    def test_counts(self, mixed_trace):
        profile = build_profile(mixed_trace, name="mixed")
        summary = summarize_profile(profile)
        assert summary.leaf_count == len(profile)
        assert summary.total_requests == len(mixed_trace)
        assert summary.name == "mixed"
        assert summary.mean_leaf_size > 0

    def test_feature_kinds_cover_all_leaves(self, mixed_trace):
        profile = build_profile(mixed_trace)
        summary = summarize_profile(profile)
        for feature in ("delta_time", "stride", "operation", "size"):
            assert sum(summary.feature_kinds[feature].values()) == len(profile)

    def test_constant_fraction_for_regular_trace(self, linear_trace):
        profile = build_profile(linear_trace)
        summary = summarize_profile(profile)
        # A constant-stride, constant-size read stream is all constants.
        assert summary.constant_fraction == 1.0
        assert summary.markov_state_total == 0

    def test_stm_models_labelled(self, mixed_trace):
        profile = build_profile(mixed_trace, leaf_factory=stm_leaf_factory)
        summary = summarize_profile(profile)
        assert summary.feature_kinds["stride"]["stm"] == len(profile)
        assert summary.feature_kinds["operation"]["stm"] == len(profile)

    def test_histograms_bucketized(self, bursty_trace):
        profile = build_profile(bursty_trace)
        summary = summarize_profile(profile)
        assert sum(summary.leaf_size_histogram.values()) == len(profile)
        for bucket in summary.leaf_size_histogram:
            assert bucket & (bucket - 1) == 0  # power of two

    def test_time_span(self, bursty_trace):
        profile = build_profile(bursty_trace)
        summary = summarize_profile(profile)
        assert summary.time_span > 0


class TestFormatSummary:
    def test_renders_key_fields(self, mixed_trace):
        profile = build_profile(mixed_trace, name="wl")
        text = format_summary(summarize_profile(profile))
        assert "wl" in text
        assert "leaves:" in text
        assert "constant feature models:" in text

    def test_anonymous_profile(self, mixed_trace):
        profile = build_profile(mixed_trace)
        text = format_summary(summarize_profile(profile))
        assert "(withheld)" in text
