"""Property-based tests (hypothesis) for core data structures/invariants."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import two_level_rs, two_level_ts
from repro.core.leaf import wrap_address
from repro.core.markov import MarkovChain
from repro.core.mcc import McCModel
from repro.core.partition import partition_by_cycle_count, partition_by_request_count
from repro.core.profiler import build_profile
from repro.core.request import AddressRange, MemoryRequest, Operation
from repro.core.serialization import profile_from_dict, profile_to_dict
from repro.core.spatial import partition_dynamic, partition_fixed
from repro.core.synthesis import synthesize
from repro.core.trace import Trace


@st.composite
def request_lists(draw, min_size=1, max_size=60):
    """Time-sorted lists of small random requests."""
    count = draw(st.integers(min_size, max_size))
    clock = 0
    requests = []
    for _ in range(count):
        clock += draw(st.integers(0, 1000))
        address = draw(st.integers(0, 1 << 20))
        size = draw(st.sampled_from([4, 8, 32, 64, 128]))
        op = draw(st.sampled_from([Operation.READ, Operation.WRITE]))
        requests.append(MemoryRequest(clock, address, op, size))
    return requests


@st.composite
def value_sequences(draw):
    return draw(st.lists(st.integers(-300, 300), min_size=1, max_size=80))


class TestMarkovProperties:
    @given(value_sequences())
    @settings(max_examples=60, deadline=None)
    def test_strict_convergence_preserves_multiset(self, values):
        chain = MarkovChain.fit(values)
        generated = chain.generate_strict(random.Random(0))
        assert Counter(generated) == Counter(values)

    @given(value_sequences())
    @settings(max_examples=60, deadline=None)
    def test_strict_convergence_preserves_transitions(self, values):
        chain = MarkovChain.fit(values)
        generated = chain.generate_strict(random.Random(1))
        assert Counter(zip(generated, generated[1:])) == Counter(zip(values, values[1:]))

    @given(value_sequences())
    @settings(max_examples=60, deadline=None)
    def test_mcc_roundtrip(self, values):
        model = McCModel.fit(values)
        assert McCModel.from_dict(model.to_dict()) == model


class TestWrapAddressProperties:
    @given(
        st.integers(0, 1 << 30),
        st.integers(0, 1 << 20),
        st.integers(1, 1 << 16),
    )
    @settings(max_examples=100, deadline=None)
    def test_result_always_in_region(self, address, start, span):
        region = AddressRange(start, start + span)
        assert region.contains(wrap_address(address, region))

    @given(st.integers(0, 1 << 20), st.integers(1, 1 << 12))
    @settings(max_examples=50, deadline=None)
    def test_identity_inside_region(self, start, span):
        region = AddressRange(start, start + span)
        inside = start + span // 2
        assert wrap_address(inside, region) == inside


class TestPartitioningProperties:
    @given(request_lists(), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_request_count_partitions_cover(self, requests, size):
        parts = partition_by_request_count(requests, size)
        assert [r for p in parts for r in p] == requests
        assert all(len(p) <= size for p in parts)

    @given(request_lists(), st.integers(1, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_cycle_count_partitions_cover(self, requests, interval):
        parts = partition_by_cycle_count(requests, interval)
        assert [r for p in parts for r in p] == requests
        assert all(p for p in parts)

    @given(request_lists())
    @settings(max_examples=40, deadline=None)
    def test_dynamic_partitions_cover_and_contain(self, requests):
        parts = partition_dynamic(requests)
        assert sum(len(p) for p in parts) == len(requests)
        for part in parts:
            for request in part.requests:
                assert part.region.start <= request.address
                assert request.end_address <= part.region.end

    @given(request_lists(), st.sampled_from([256, 4096, 65536]))
    @settings(max_examples=40, deadline=None)
    def test_fixed_partitions_cover(self, requests, block):
        parts = partition_fixed(requests, block)
        assert sum(len(p) for p in parts) == len(requests)
        for part in parts:
            assert part.region.size == block
            for request in part.requests:
                assert part.region.contains(request.address)

    @given(request_lists(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_dynamic_merge_leaves_no_multi_lonely(self, requests):
        parts = partition_dynamic(requests)
        lonely = [p for p in parts if len(p) == 1]
        assert len(lonely) <= 1


class TestSynthesisProperties:
    @given(request_lists(min_size=2))
    @settings(max_examples=30, deadline=None)
    def test_synthesis_invariants(self, requests):
        trace = Trace(requests)
        profile = build_profile(trace, two_level_ts(10_000))
        synthetic = synthesize(profile, seed=0)
        assert len(synthetic) == len(trace)
        assert synthetic.is_sorted()
        assert synthetic.read_count() == trace.read_count()
        assert Counter(r.size for r in synthetic) == Counter(r.size for r in trace)

    @given(request_lists(min_size=2))
    @settings(max_examples=30, deadline=None)
    def test_synthesis_stays_in_footprint(self, requests):
        trace = Trace(requests)
        profile = build_profile(trace, two_level_rs(16))
        footprint = trace.address_range()
        for request in synthesize(profile, seed=1):
            assert footprint.contains(request.address)

    @given(request_lists(min_size=2))
    @settings(max_examples=20, deadline=None)
    def test_profile_roundtrip(self, requests):
        profile = build_profile(Trace(requests))
        assert profile_from_dict(profile_to_dict(profile)) == profile
