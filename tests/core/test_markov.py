"""Unit tests for the Markov chain and strict convergence."""

import random
from collections import Counter

import pytest

from repro.core.markov import MarkovChain


class TestFit:
    def test_transition_counts(self):
        chain = MarkovChain.fit([64, 64, 128, 64])
        assert chain.transitions[64][64] == 1
        assert chain.transitions[64][128] == 1
        assert chain.transitions[128][64] == 1

    def test_initial_state(self):
        chain = MarkovChain.fit(["a", "b"])
        assert chain.initial_state == "a"

    def test_length_recorded(self):
        assert MarkovChain.fit([1, 2, 3]).length == 3

    def test_single_element(self):
        chain = MarkovChain.fit([42])
        assert chain.length == 1
        assert chain.transitions == {}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MarkovChain.fit([])

    def test_states_enumeration(self):
        chain = MarkovChain.fit([1, 2, 3, 2, 1])
        assert set(chain.states) == {1, 2, 3}

    def test_transition_probability(self):
        chain = MarkovChain.fit([64, 64, 64, 128, 64])
        # From 64: two 64s, one 128.
        assert chain.transition_probability(64, 64) == pytest.approx(2 / 3)
        assert chain.transition_probability(64, 128) == pytest.approx(1 / 3)
        assert chain.transition_probability(128, 64) == 1.0
        assert chain.transition_probability(999, 64) == 0.0

    def test_value_counts_match_sequence(self):
        sequence = [1, 1, 2, 3, 2, 1, 1]
        chain = MarkovChain.fit(sequence)
        assert chain.value_counts() == Counter(sequence)


class TestStrictConvergence:
    @pytest.mark.parametrize("sequence", [
        [64] * 10,
        [64, 64, 128, 64, 64, 128],
        [1, 2, 3, 4, 5],
        [1, 2, 1, 3, 1, 2, 1],
        ["R", "R", "W", "R", "W", "W", "R"],
    ])
    def test_exact_value_multiset(self, sequence):
        chain = MarkovChain.fit(sequence)
        for seed in range(5):
            generated = chain.generate_strict(random.Random(seed))
            assert Counter(generated) == Counter(sequence)

    def test_exact_transition_multiset(self):
        sequence = [1, 2, 1, 3, 1, 2, 3, 1]
        chain = MarkovChain.fit(sequence)
        generated = chain.generate_strict(random.Random(7))
        observed = Counter(zip(generated, generated[1:]))
        expected = Counter(zip(sequence, sequence[1:]))
        assert observed == expected

    def test_starts_at_initial_state(self):
        sequence = [9, 1, 2, 1, 2]
        chain = MarkovChain.fit(sequence)
        assert chain.generate_strict(random.Random(0))[0] == 9

    def test_length_preserved(self):
        sequence = list(range(20)) + list(range(20))
        chain = MarkovChain.fit(sequence)
        assert len(chain.generate_strict(random.Random(3))) == len(sequence)

    def test_randomizes_order_when_possible(self):
        # A sequence with genuine branching should not always replay
        # identically across seeds.
        rng = random.Random(0)
        sequence = [rng.choice([1, 2, 3]) for _ in range(200)]
        chain = MarkovChain.fit(sequence)
        outputs = {tuple(chain.generate_strict(random.Random(s))) for s in range(5)}
        assert len(outputs) > 1

    def test_table1_example(self):
        # The paper's Table I: strict convergence ensures exactly two 128
        # sizes and ten 64 sizes are generated.
        sizes = [128, 64, 64, 64, 64, 64, 128, 64, 64, 64, 64, 64]
        chain = MarkovChain.fit(sizes)
        generated = chain.generate_strict(random.Random(11))
        assert Counter(generated) == Counter({64: 10, 128: 2})

    def test_deterministic_given_seed(self):
        sequence = [1, 2, 3, 1, 2, 3, 1]
        chain = MarkovChain.fit(sequence)
        a = chain.generate_strict(random.Random(5))
        b = chain.generate_strict(random.Random(5))
        assert a == b

    def test_generation_does_not_mutate_chain(self):
        sequence = [1, 2, 1, 2, 1]
        chain = MarkovChain.fit(sequence)
        before = {s: Counter(c) for s, c in chain.transitions.items()}
        chain.generate_strict(random.Random(0))
        assert chain.transitions == before


class TestSampledGeneration:
    def test_length(self):
        chain = MarkovChain.fit([1, 2, 1, 2, 1])
        assert len(chain.generate_sampled(random.Random(0))) == 5

    def test_custom_length(self):
        chain = MarkovChain.fit([1, 2, 1, 2, 1])
        assert len(chain.generate_sampled(random.Random(0), length=20)) == 20

    def test_only_observed_states(self):
        chain = MarkovChain.fit([5, 6, 5, 6, 7, 5])
        generated = chain.generate_sampled(random.Random(2), length=100)
        assert set(generated) <= {5, 6, 7}

    def test_dead_end_recovers(self):
        # 3 is a dead end; sampled generation must still reach the length.
        chain = MarkovChain.fit([1, 2, 3])
        generated = chain.generate_sampled(random.Random(0), length=10)
        assert len(generated) == 10


class TestSerialization:
    def test_roundtrip(self):
        chain = MarkovChain.fit([64, 64, 128, -264, 64, 64])
        restored = MarkovChain.from_dict(chain.to_dict())
        assert restored == chain

    def test_roundtrip_preserves_generation(self):
        chain = MarkovChain.fit([1, 2, 1, 3, 1, 2])
        restored = MarkovChain.from_dict(chain.to_dict())
        assert chain.generate_strict(random.Random(4)) == restored.generate_strict(
            random.Random(4)
        )

    def test_dict_is_json_compatible(self):
        import json

        chain = MarkovChain.fit([1, 2, 1, 2])
        json.dumps(chain.to_dict())
