"""Unit tests for spatial partitioning (fixed and dynamic, Alg. 1)."""

import pytest

from repro.core.request import AddressRange
from repro.core.spatial import partition_dynamic, partition_fixed

from ..conftest import req


class TestFixedPartitioning:
    def test_groups_by_block(self):
        requests = [req(0, 0x0000), req(1, 0x1000), req(2, 0x0040)]
        parts = partition_fixed(requests, 0x1000)
        assert len(parts) == 2
        assert len(parts[0]) == 2  # 0x0000 and 0x0040
        assert len(parts[1]) == 1

    def test_regions_are_block_aligned(self):
        parts = partition_fixed([req(0, 0x1234)], 0x1000)
        assert parts[0].region == AddressRange(0x1000, 0x2000)

    def test_assignment_by_start_address(self):
        # A request straddling a block boundary belongs to its start block.
        parts = partition_fixed([req(0, 0x0FC0, "R", 128)], 0x1000)
        assert parts[0].region == AddressRange(0x0000, 0x1000)

    def test_partitions_sorted_by_address(self):
        requests = [req(0, 0x3000), req(1, 0x1000), req(2, 0x2000)]
        parts = partition_fixed(requests, 0x1000)
        starts = [p.region.start for p in parts]
        assert starts == sorted(starts)

    def test_preserves_time_order_within_partition(self):
        requests = [req(3, 0x100), req(1, 0x200), req(2, 0x140)]
        parts = partition_fixed(requests, 0x1000)
        times = [r.timestamp for r in parts[0].requests]
        assert times == [3, 1, 2]  # insertion (trace) order kept

    def test_empty(self):
        assert partition_fixed([], 4096) == []

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            partition_fixed([], 0)


class TestDynamicPartitioning:
    def test_merges_overlapping(self):
        requests = [req(0, 0x100, "R", 64), req(1, 0x120, "R", 64)]
        parts = partition_dynamic(requests)
        assert len(parts) == 1
        assert parts[0].region == AddressRange(0x100, 0x160)

    def test_merges_adjacent(self):
        requests = [req(0, 0x100, "R", 64), req(1, 0x140, "R", 64)]
        parts = partition_dynamic(requests)
        assert len(parts) == 1
        assert parts[0].region == AddressRange(0x100, 0x180)

    def test_keeps_disjoint_apart(self):
        requests = [
            req(0, 0x100, "R", 64), req(1, 0x140, "R", 64),
            req(2, 0x9000, "R", 64), req(3, 0x9040, "R", 64),
        ]
        parts = partition_dynamic(requests)
        assert len(parts) == 2

    def test_regions_are_tight(self):
        requests = [req(0, 0x104, "R", 4), req(1, 0x108, "R", 4)]
        parts = partition_dynamic(requests)
        assert parts[0].region == AddressRange(0x104, 0x10C)

    def test_reuse_lands_in_same_partition(self):
        # Requests spread over time to the same region belong together
        # (paper's partition F).
        requests = [req(0, 0x200, "R", 64), req(100, 0x200, "R", 64)]
        parts = partition_dynamic(requests)
        assert len(parts) == 1
        assert len(parts[0]) == 2

    def test_time_order_preserved_in_partition(self):
        requests = [req(0, 0x240, "R", 64), req(1, 0x200, "R", 64), req(2, 0x280, "R", 64)]
        parts = partition_dynamic(requests)
        assert [r.timestamp for r in parts[0].requests] == [0, 1, 2]

    def test_empty(self):
        assert partition_dynamic([]) == []

    def test_single_request(self):
        parts = partition_dynamic([req(0, 0x100, "R", 32)])
        assert len(parts) == 1
        assert parts[0].region == AddressRange(0x100, 0x120)

    def test_partitions_cover_all_requests(self, mixed_trace):
        parts = partition_dynamic(list(mixed_trace))
        total = sum(len(p) for p in parts)
        assert total == len(mixed_trace)

    def test_partition_regions_do_not_overlap(self, mixed_trace):
        parts = partition_dynamic(list(mixed_trace), merge_lonely=False)
        for first, second in zip(parts, parts[1:]):
            assert first.region.end < second.region.start  # adjacency merged


class TestLonelyMerging:
    def test_equal_stride_lonelies_grouped(self):
        # Three isolated requests with a constant 0x1000 stride form one
        # partition (paper: "if there are multiple lonely requests that
        # are equally spaced out in memory ... group them").
        requests = [req(i, 0x10000 + i * 0x1000, "R", 64) for i in range(3)]
        parts = partition_dynamic(requests)
        assert len(parts) == 1
        assert len(parts[0]) == 3

    def test_unequal_lonelies_merged_together(self):
        requests = [req(0, 0x1000, "R", 64), req(1, 0x5000, "R", 64)]
        # Two lonely requests with no stride run: merged into one catch-all.
        parts = partition_dynamic(requests)
        assert len(parts) == 1
        assert len(parts[0]) == 2

    def test_single_lonely_keeps_own_partition(self):
        requests = [
            req(0, 0x100, "R", 64), req(1, 0x140, "R", 64),  # crowded
            req(2, 0x9000, "R", 64),  # lonely, nothing to merge with
        ]
        parts = partition_dynamic(requests)
        assert len(parts) == 2

    def test_merge_lonely_can_be_disabled(self):
        requests = [req(0, 0x1000, "R", 64), req(1, 0x5000, "R", 64)]
        parts = partition_dynamic(requests, merge_lonely=False)
        assert len(parts) == 2

    def test_no_lonely_partitions_after_merge(self):
        # With >= 2 lonely requests, merging guarantees no single-request
        # partitions remain.
        requests = [
            req(0, 0x100, "R", 64), req(1, 0x140, "R", 64),
            req(2, 0x9000, "R", 64), req(3, 0xF000, "R", 64),
        ]
        parts = partition_dynamic(requests)
        assert all(len(p) >= 2 for p in parts)

    def test_crowded_partitions_untouched_by_lonely_merge(self):
        requests = [
            req(0, 0x100, "R", 64), req(1, 0x140, "R", 64),
            req(2, 0x9000, "R", 64), req(3, 0xF000, "R", 64),
        ]
        parts = partition_dynamic(requests)
        crowded = [p for p in parts if p.region.start == 0x100]
        assert len(crowded) == 1 and len(crowded[0]) == 2
