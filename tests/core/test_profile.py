"""Unit tests for the Profile container."""

from repro.baselines.stm import stm_leaf_factory
from repro.core.profile import Profile
from repro.core.profiler import build_profile
from repro.core.hierarchy import two_level_ts


class TestProfileContainer:
    def test_len_iter_index(self, mixed_trace):
        profile = build_profile(mixed_trace)
        assert len(list(profile)) == len(profile)
        assert profile[0] is profile.leaves[0]

    def test_total_requests(self, mixed_trace):
        profile = build_profile(mixed_trace)
        assert profile.total_requests == len(mixed_trace)

    def test_empty_profile(self):
        profile = Profile([])
        assert len(profile) == 0
        assert profile.total_requests == 0
        assert profile.constant_model_count() == 0

    def test_equality_ignores_name(self, mixed_trace):
        a = build_profile(mixed_trace, name="a")
        b = build_profile(mixed_trace, name="b")
        assert a == b  # provenance is not identity

    def test_equality_respects_hierarchy(self, mixed_trace):
        a = build_profile(mixed_trace, two_level_ts(100_000))
        b = build_profile(mixed_trace, two_level_ts(500_000))
        assert a != b

    def test_constant_model_count_regular(self, linear_trace):
        profile = build_profile(linear_trace)
        # 1 leaf x 4 features, all constant.
        assert profile.constant_model_count() == 4 * len(profile)

    def test_constant_model_count_with_stm_leaves(self, mixed_trace):
        profile = build_profile(mixed_trace, leaf_factory=stm_leaf_factory)
        # STM address/op models are not McC: only dt/size can be constant.
        assert profile.constant_model_count() <= 2 * len(profile)
