"""Unit tests for profile serialization."""

import pytest

from repro.baselines.stm import stm_leaf_factory
from repro.core.profiler import build_profile
from repro.core.serialization import (
    leaf_from_dict,
    leaf_to_dict,
    load_profile,
    profile_from_dict,
    profile_size_bytes,
    profile_to_dict,
    save_profile,
)
from repro.core.synthesis import synthesize


class TestProfileRoundtrip:
    def test_mcc_profile_roundtrip(self, mixed_trace):
        profile = build_profile(mixed_trace, name="mixed")
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile
        assert restored.name == "mixed"

    def test_file_roundtrip(self, tmp_path, mixed_trace):
        profile = build_profile(mixed_trace)
        path = tmp_path / "p.mprof.gz"
        size = save_profile(profile, path)
        assert size == path.stat().st_size
        assert load_profile(path) == profile

    def test_roundtrip_preserves_synthesis(self, tmp_path, bursty_trace):
        profile = build_profile(bursty_trace)
        path = tmp_path / "p.mprof.gz"
        save_profile(profile, path)
        restored = load_profile(path)
        assert synthesize(profile, seed=6) == synthesize(restored, seed=6)

    def test_stm_profile_roundtrip(self, mixed_trace):
        profile = build_profile(mixed_trace, leaf_factory=stm_leaf_factory)
        data = profile_to_dict(profile)
        restored = profile_from_dict(data)
        assert restored.total_requests == profile.total_requests
        assert len(synthesize(restored, seed=2)) == len(mixed_trace)

    def test_unknown_model_type_rejected(self, mixed_trace):
        profile = build_profile(mixed_trace)
        data = profile_to_dict(profile)
        data["leaves"][0]["address"]["type"] = "martian"
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_bad_version_rejected(self, mixed_trace):
        data = profile_to_dict(build_profile(mixed_trace))
        data["format_version"] = 999
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_leaf_roundtrip(self, mixed_trace):
        profile = build_profile(mixed_trace)
        leaf = profile[0]
        assert leaf_from_dict(leaf_to_dict(leaf)) == leaf


class TestProfileSize:
    def test_size_matches_disk(self, tmp_path, mixed_trace):
        profile = build_profile(mixed_trace)
        in_memory = profile_size_bytes(profile)
        on_disk = save_profile(profile, tmp_path / "p.gz")
        # gzip embeds no filename for both paths; sizes must agree closely.
        assert abs(in_memory - on_disk) <= 16

    def test_profile_smaller_than_trace_for_regular_traffic(self, tmp_path, linear_trace):
        # A constant-stride trace compresses to a handful of constants.
        big = linear_trace
        profile = build_profile(big)
        trace_size = big.save_binary(tmp_path / "t.gz")
        profile_size = profile_size_bytes(profile)
        assert profile_size < trace_size * 5  # same order; real wins need volume


class TestDeterministicBytes:
    def test_save_profile_is_byte_deterministic(self, tmp_path, mixed_trace):
        # Regression: gzip used to stamp the save-time mtime into the
        # header, so two saves of the same profile differed on disk.
        # MTIME lives at header bytes 4-8; 0 means "not recorded".
        profile = build_profile(mixed_trace)
        first, second = tmp_path / "a.mprof.gz", tmp_path / "b.mprof.gz"
        save_profile(profile, first)
        save_profile(profile, second)
        data = first.read_bytes()
        assert data[4:8] == b"\x00\x00\x00\x00"
        assert data == second.read_bytes()

    def test_size_is_exact(self, tmp_path, mixed_trace):
        profile = build_profile(mixed_trace)
        assert profile_size_bytes(profile) == save_profile(profile, tmp_path / "p.gz")


class TestObfuscation:
    def test_profile_contains_no_raw_timestamps(self, mixed_trace):
        """The profile must not embed the original request sequence."""
        import json

        profile = build_profile(mixed_trace)
        payload = json.dumps(profile_to_dict(profile))
        raw_times = [str(r.timestamp) for r in list(mixed_trace)[5:15]]
        # Start times of leaves may appear; the full ordered timestamp
        # sequence must not be recoverable as a contiguous run.
        joined = ",".join(raw_times)
        assert joined not in payload


class TestCorruptFiles:
    def test_not_gzip(self, tmp_path):
        from repro.core.serialization import load_profile

        path = tmp_path / "p.mprof.gz"
        path.write_bytes(b"definitely not gzip")
        with pytest.raises(ValueError, match="not a gzip"):
            load_profile(path)

    def test_truncated_gzip(self, tmp_path, mixed_trace):
        from repro.core.serialization import load_profile

        path = tmp_path / "p.mprof.gz"
        save_profile(build_profile(mixed_trace), path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ValueError):
            load_profile(path)

    def test_gzip_but_not_json(self, tmp_path):
        import gzip

        from repro.core.serialization import load_profile

        path = tmp_path / "p.mprof.gz"
        path.write_bytes(gzip.compress(b"{not json"))
        with pytest.raises(ValueError, match="corrupt profile payload"):
            load_profile(path)

    def test_json_but_wrong_structure(self, tmp_path):
        import gzip
        import json

        from repro.core.serialization import load_profile

        path = tmp_path / "p.mprof.gz"
        payload = json.dumps({"format_version": 1, "leaves": [{"bogus": 1}]})
        path.write_bytes(gzip.compress(payload.encode()))
        with pytest.raises(ValueError, match="malformed profile structure"):
            load_profile(path)
