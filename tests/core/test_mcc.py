"""Unit tests for the McC (Markov chain or Constant) feature model."""

import random
from collections import Counter

import pytest

from repro.core.markov import MarkovChain
from repro.core.mcc import CONSTANT, MARKOV, McCModel


class TestFit:
    def test_constant_detected(self):
        model = McCModel.fit([64, 64, 64])
        assert model.is_constant
        assert model.constant == 64
        assert model.count == 3

    def test_variable_becomes_markov(self):
        model = McCModel.fit([64, 128, 64])
        assert model.kind == MARKOV
        assert not model.is_constant

    def test_empty_is_degenerate_constant(self):
        model = McCModel.fit([])
        assert model.count == 0
        assert model.generate(random.Random(0)) == []

    def test_single_value_is_constant(self):
        model = McCModel.fit([7])
        assert model.is_constant and model.count == 1

    def test_validation_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            McCModel("nonsense", 1)

    def test_markov_requires_chain(self):
        with pytest.raises(ValueError):
            McCModel(MARKOV, 3)

    def test_markov_count_must_match_chain(self):
        chain = MarkovChain.fit([1, 2, 1])
        with pytest.raises(ValueError):
            McCModel(MARKOV, 5, chain=chain)


class TestGenerate:
    def test_constant_generation(self):
        model = McCModel.fit(["R"] * 5)
        assert model.generate(random.Random(0)) == ["R"] * 5

    def test_strict_markov_preserves_multiset(self):
        values = [64, 64, 128, 64, 32, 64]
        model = McCModel.fit(values)
        for seed in range(4):
            assert Counter(model.generate(random.Random(seed))) == Counter(values)

    def test_non_strict_generates_right_length(self):
        values = [1, 2, 3, 1, 2, 3]
        model = McCModel.fit(values)
        assert len(model.generate(random.Random(0), strict=False)) == 6

    def test_generation_length_always_count(self):
        values = [1, 2] * 10
        model = McCModel.fit(values)
        assert len(model.generate(random.Random(9))) == 20


class TestSerialization:
    def test_constant_roundtrip(self):
        model = McCModel.fit([64] * 4)
        restored = McCModel.from_dict(model.to_dict())
        assert restored == model

    def test_markov_roundtrip(self):
        model = McCModel.fit([1, -2, 3, 1, -2])
        restored = McCModel.from_dict(model.to_dict())
        assert restored == model

    def test_empty_roundtrip(self):
        model = McCModel.fit([])
        restored = McCModel.from_dict(model.to_dict())
        assert restored == model
        assert restored.generate(random.Random(0)) == []

    def test_roundtrip_preserves_generation(self):
        model = McCModel.fit([5, 6, 5, 7, 5, 6])
        restored = McCModel.from_dict(model.to_dict())
        assert model.generate(random.Random(3)) == restored.generate(random.Random(3))


class TestHigherOrder:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            McCModel.fit([1, 2], order=0)

    def test_order2_multiset_preserved(self):
        values = [1, 2, 1, 3, 1, 2, 3, 1, 2]
        model = McCModel.fit(values, order=2)
        for seed in range(4):
            generated = model.generate(random.Random(seed))
            assert len(generated) == len(values)
            assert Counter(generated) == Counter(values)

    def test_order2_preserves_pair_transitions(self):
        values = [1, 2, 1, 2, 3, 1, 2, 1, 2, 3]
        model = McCModel.fit(values, order=2)
        generated = model.generate(random.Random(1))
        original_pairs = Counter(zip(values, values[1:]))
        generated_pairs = Counter(zip(generated, generated[1:]))
        assert generated_pairs == original_pairs

    def test_order_larger_than_sequence_falls_back(self):
        model = McCModel.fit([1, 2], order=5)
        assert model.order == 1
        assert len(model.generate(random.Random(0))) == 2

    def test_constant_sequence_stays_constant(self):
        model = McCModel.fit([7, 7, 7], order=3)
        assert model.is_constant

    def test_order2_roundtrip(self):
        values = [1, 2, 1, 3, 1, 2, 3, 1]
        model = McCModel.fit(values, order=2)
        restored = McCModel.from_dict(model.to_dict())
        assert restored == model
        assert restored.generate(random.Random(3)) == model.generate(random.Random(3))

    def test_order2_json_compatible(self):
        import json

        model = McCModel.fit([1, 2, 1, 3, 1], order=2)
        json.dumps(model.to_dict())
