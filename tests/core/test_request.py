"""Unit tests for MemoryRequest, Operation and AddressRange."""

import pytest

from repro.core.request import AddressRange, MemoryRequest, Operation


class TestOperation:
    def test_read_is_read(self):
        assert Operation.READ.is_read
        assert not Operation.READ.is_write

    def test_write_is_write(self):
        assert Operation.WRITE.is_write
        assert not Operation.WRITE.is_read

    @pytest.mark.parametrize("token,expected", [
        ("R", Operation.READ),
        ("r", Operation.READ),
        ("READ", Operation.READ),
        ("0", Operation.READ),
        ("W", Operation.WRITE),
        ("write", Operation.WRITE),
        ("1", Operation.WRITE),
        (" R ", Operation.READ),
    ])
    def test_parse(self, token, expected):
        assert Operation.parse(token) is expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Operation.parse("X")

    def test_str_roundtrip(self):
        assert Operation.parse(str(Operation.READ)) is Operation.READ
        assert Operation.parse(str(Operation.WRITE)) is Operation.WRITE

    def test_int_values_stable(self):
        # Serialization depends on these values.
        assert int(Operation.READ) == 0
        assert int(Operation.WRITE) == 1


class TestMemoryRequest:
    def test_basic_fields(self):
        r = MemoryRequest(10, 0x100, Operation.READ, 64)
        assert r.timestamp == 10
        assert r.address == 0x100
        assert r.size == 64
        assert r.is_read and not r.is_write

    def test_end_address(self):
        r = MemoryRequest(0, 0x100, Operation.WRITE, 32)
        assert r.end_address == 0x120

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(0, 0x100, Operation.READ, 0)
        with pytest.raises(ValueError):
            MemoryRequest(0, 0x100, Operation.READ, -4)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryRequest(0, -1, Operation.READ, 4)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            MemoryRequest(-1, 0, Operation.READ, 4)

    def test_overlaps_true_for_intersection(self):
        a = MemoryRequest(0, 0x100, Operation.READ, 64)
        b = MemoryRequest(0, 0x120, Operation.READ, 64)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlaps_true_for_adjacency(self):
        a = MemoryRequest(0, 0x100, Operation.READ, 64)
        b = MemoryRequest(0, 0x140, Operation.READ, 64)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlaps_false_when_disjoint(self):
        a = MemoryRequest(0, 0x100, Operation.READ, 64)
        b = MemoryRequest(0, 0x141, Operation.READ, 64)
        assert not a.overlaps(b) and not b.overlaps(a)

    def test_copy_is_independent(self):
        a = MemoryRequest(1, 2, Operation.READ, 3)
        b = a.copy()
        assert a == b
        b.timestamp = 99
        assert a.timestamp == 1

    def test_equality(self):
        a = MemoryRequest(1, 2, Operation.READ, 3)
        assert a == MemoryRequest(1, 2, Operation.READ, 3)
        assert a != MemoryRequest(1, 2, Operation.WRITE, 3)


class TestAddressRange:
    def test_size(self):
        assert AddressRange(0x100, 0x200).size == 0x100

    def test_empty_range_allowed(self):
        assert AddressRange(5, 5).size == 0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            AddressRange(10, 5)

    def test_contains(self):
        r = AddressRange(0x100, 0x200)
        assert r.contains(0x100)
        assert r.contains(0x1FF)
        assert not r.contains(0x200)
        assert not r.contains(0xFF)

    def test_contains_range(self):
        outer = AddressRange(0, 100)
        assert outer.contains_range(AddressRange(10, 90))
        assert outer.contains_range(AddressRange(0, 100))
        assert not outer.contains_range(AddressRange(10, 101))

    def test_intersects_includes_adjacency(self):
        assert AddressRange(0, 10).intersects(AddressRange(10, 20))
        assert AddressRange(0, 10).intersects(AddressRange(5, 15))
        assert not AddressRange(0, 10).intersects(AddressRange(11, 20))

    def test_expand(self):
        merged = AddressRange(0, 10).expand(AddressRange(20, 30))
        assert merged == AddressRange(0, 30)

    def test_of_request(self):
        r = MemoryRequest(0, 0x80, Operation.READ, 0x20)
        assert AddressRange.of_request(r) == AddressRange(0x80, 0xA0)

    def test_frozen(self):
        with pytest.raises(Exception):
            AddressRange(0, 1).start = 5
