"""Unit tests for the Trace container and its on-disk formats."""

import pytest

from repro.core.request import AddressRange, Operation
from repro.core.trace import Trace

from ..conftest import req


class TestTraceContainer:
    def test_empty(self):
        trace = Trace()
        assert len(trace) == 0
        assert list(trace) == []

    def test_append_and_len(self):
        trace = Trace()
        trace.append(req(0, 0x100))
        trace.append(req(5, 0x140))
        assert len(trace) == 2

    def test_extend(self):
        trace = Trace()
        trace.extend([req(0, 0), req(1, 64)])
        assert len(trace) == 2

    def test_indexing(self):
        trace = Trace([req(0, 0), req(1, 64)])
        assert trace[0].address == 0
        assert trace[-1].address == 64

    def test_slicing_returns_trace(self):
        trace = Trace([req(i, i * 64) for i in range(10)])
        sliced = trace[2:5]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 3
        assert sliced[0].timestamp == 2

    def test_head(self):
        trace = Trace([req(i, i * 64) for i in range(10)])
        assert len(trace.head(4)) == 4
        assert len(trace.head(100)) == 10

    def test_equality(self):
        a = Trace([req(0, 0)])
        b = Trace([req(0, 0)])
        assert a == b
        assert a != Trace([req(1, 0)])


class TestTraceProperties:
    def test_is_sorted(self):
        assert Trace([req(0, 0), req(1, 0)]).is_sorted()
        assert not Trace([req(1, 0), req(0, 0)]).is_sorted()
        assert Trace().is_sorted()

    def test_sorted_by_time_is_stable(self):
        trace = Trace([req(5, 1), req(5, 2), req(0, 3)])
        ordered = trace.sorted_by_time()
        assert [r.address for r in ordered] == [3, 1, 2]

    def test_start_end_duration(self):
        trace = Trace([req(10, 0), req(50, 0)])
        assert trace.start_time == 10
        assert trace.end_time == 50
        assert trace.duration == 40

    def test_empty_trace_time_raises(self):
        with pytest.raises(ValueError):
            Trace().start_time
        with pytest.raises(ValueError):
            Trace().end_time

    def test_empty_duration_is_zero(self):
        assert Trace().duration == 0

    def test_address_range_covers_sizes(self):
        trace = Trace([req(0, 0x100, "R", 64), req(1, 0x300, "R", 128)])
        assert trace.address_range() == AddressRange(0x100, 0x380)

    def test_read_write_counts(self):
        trace = Trace([req(0, 0, "R"), req(1, 0, "W"), req(2, 0, "R")])
        assert trace.read_count() == 2
        assert trace.write_count() == 1

    def test_total_bytes(self):
        trace = Trace([req(0, 0, "R", 64), req(1, 0, "W", 32)])
        assert trace.total_bytes() == 96


class TestTraceIO:
    def test_csv_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "t.csv.gz"
        mixed_trace.save_csv(path)
        loaded = Trace.load_csv(path)
        assert loaded == mixed_trace

    def test_binary_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "t.mtr.gz"
        size = mixed_trace.save_binary(path)
        assert size > 0
        assert Trace.load_binary(path) == mixed_trace

    def test_binary_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.mtr.gz"
        Trace().save_binary(path)
        assert len(Trace.load_binary(path)) == 0

    def test_binary_rejects_bad_magic(self, tmp_path):
        import gzip

        path = tmp_path / "bad.mtr.gz"
        path.write_bytes(gzip.compress(b"NOPE" + b"\x00" * 16))
        with pytest.raises(ValueError):
            Trace.load_binary(path)

    def test_csv_rejects_missing_header(self, tmp_path):
        import gzip

        path = tmp_path / "bad.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1,0x100,R,64\n")
        with pytest.raises(ValueError):
            Trace.load_csv(path)

    def test_csv_preserves_operations(self, tmp_path):
        trace = Trace([req(0, 0x10, "W", 8)])
        path = tmp_path / "w.csv.gz"
        trace.save_csv(path)
        assert Trace.load_csv(path)[0].operation is Operation.WRITE

    def test_plain_csv_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "t.csv"
        size = mixed_trace.save_csv(path)
        assert size == path.stat().st_size
        assert path.read_bytes().startswith(b"timestamp,")  # uncompressed
        assert Trace.load_csv(path) == mixed_trace

    def test_plain_binary_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "t.mtr"
        size = mixed_trace.save_binary(path)
        assert size == path.stat().st_size
        assert path.read_bytes().startswith(b"MTR1")  # uncompressed
        assert Trace.load_binary(path) == mixed_trace

    def test_save_returns_bytes_written(self, tmp_path, mixed_trace):
        compressed = mixed_trace.save_csv(tmp_path / "t.csv.gz")
        plain = mixed_trace.save_csv(tmp_path / "t.csv")
        assert compressed == (tmp_path / "t.csv.gz").stat().st_size
        assert compressed < plain

    def test_gzip_output_is_byte_deterministic(self, tmp_path, mixed_trace):
        # Regression: the gzip header used to embed the save-time mtime
        # (and, for CSV, the output filename), so saving the same trace
        # twice produced different bytes. Byte 3 is the FLG field (0 =
        # no FNAME), bytes 4-8 are MTIME (0 = not recorded).
        for suffix, save in (
            ("csv.gz", mixed_trace.save_csv),
            ("mtr.gz", mixed_trace.save_binary),
        ):
            first, second = tmp_path / f"a.{suffix}", tmp_path / f"b.{suffix}"
            save(first)
            save(second)
            data = first.read_bytes()
            assert data[3] == 0
            assert data[4:8] == b"\x00\x00\x00\x00"
            assert data == second.read_bytes()
