"""Unit tests for the columnar trace backend (repro.core.columnar).

Every structural test runs twice: once on the numpy engine (skipped when
numpy is absent) and once on the stdlib-``array`` fallback, forced via
``MOCKTAILS_NO_NUMPY`` so it is exercised even on hosts that do have
numpy. The CI ``no-numpy`` leg additionally runs the whole suite with
numpy genuinely uninstalled.
"""

import pytest

from repro.core.columnar import (
    BACKENDS,
    ColumnarTrace,
    active_backend,
    as_columnar,
    as_scalar,
    numpy_or_none,
    resolve_backend,
    selected_backend,
    set_backend,
)
from repro.core.request import MemoryRequest, Operation
from repro.core.trace import Trace

from ..conftest import req

HAVE_NUMPY = numpy_or_none() is not None


@pytest.fixture(params=["numpy", "array"])
def engine(request, monkeypatch):
    """Run the test under each storage engine."""
    if request.param == "numpy":
        if not HAVE_NUMPY:
            pytest.skip("numpy not installed")
        monkeypatch.delenv("MOCKTAILS_NO_NUMPY", raising=False)
    else:
        monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
    return request.param


def sample_trace() -> Trace:
    return Trace(
        [
            req(0, 0x1000, "R", 64),
            req(3, 0x1040, "W", 32),
            req(3, 0x2000, "R", 16),  # equal timestamps are legal
            req(9, 0xFFFF_FFFF_0040, "W", 128),  # > 2**32 address
        ]
    )


class TestRoundTrip:
    def test_empty_trace(self, engine):
        cols = ColumnarTrace.from_trace(Trace())
        assert len(cols) == 0
        assert list(cols) == []
        assert cols.to_trace() == Trace()
        assert cols == ColumnarTrace.empty()

    def test_single_request(self, engine):
        trace = Trace([req(7, 0x40, "W", 32)])
        cols = ColumnarTrace.from_trace(trace)
        assert len(cols) == 1
        back = cols.to_trace()
        assert back == trace
        assert back[0] == MemoryRequest(7, 0x40, Operation.WRITE, 32)

    def test_order_preserved_exactly(self, engine):
        trace = sample_trace()
        back = ColumnarTrace.from_trace(trace).to_trace()
        assert list(back) == list(trace)

    def test_addresses_above_2_32(self, engine):
        trace = Trace([req(0, 2**32 + 64), req(1, 2**63 + 4096), req(2, 2**64 - 64)])
        cols = ColumnarTrace.from_trace(trace)
        assert [r.address for r in cols.to_trace()] == [
            2**32 + 64,
            2**63 + 4096,
            2**64 - 64,
        ]

    def test_indexing_and_slicing(self, engine):
        trace = sample_trace()
        cols = ColumnarTrace.from_trace(trace)
        assert cols[1] == trace[1]
        assert cols[1:3].to_trace() == Trace(list(trace)[1:3])
        assert cols.head(2).to_trace() == trace.head(2)

    def test_derived_stats_match_trace(self, engine):
        trace = sample_trace()
        cols = ColumnarTrace.from_trace(trace)
        assert cols.start_time == trace.start_time
        assert cols.end_time == trace.end_time
        assert cols.read_count() == sum(
            1 for r in trace if r.operation is Operation.READ
        )
        assert cols.write_count() == sum(
            1 for r in trace if r.operation is Operation.WRITE
        )
        assert cols.total_bytes() == sum(r.size for r in trace)

    def test_empty_trace_has_no_times(self, engine):
        cols = ColumnarTrace.empty()
        with pytest.raises(ValueError):
            cols.start_time
        with pytest.raises(ValueError):
            cols.end_time


class TestValidation:
    def test_non_monotonic_timestamps_rejected(self, engine):
        with pytest.raises(ValueError, match="sorted by timestamp"):
            ColumnarTrace.from_columns([5, 3], [0, 64], [64, 64], [0, 0])

    def test_non_monotonic_allowed_when_opted_out(self, engine):
        cols = ColumnarTrace.from_columns(
            [5, 3], [0, 64], [64, 64], [0, 0], require_sorted=False
        )
        assert not cols.is_sorted()

    def test_unequal_column_lengths_rejected(self, engine):
        with pytest.raises(ValueError, match="equal lengths"):
            ColumnarTrace([0, 1], [0], [64], [0])

    def test_negative_address_rejected(self, engine):
        with pytest.raises(ValueError, match="address"):
            ColumnarTrace([0], [-1], [64], [0])

    def test_zero_size_rejected(self, engine):
        with pytest.raises(ValueError, match="size must be positive"):
            ColumnarTrace([0], [0], [0], [0])

    def test_oversize_rejected(self, engine):
        with pytest.raises(ValueError, match="outside the columnar range"):
            ColumnarTrace([0], [0], [2**32], [0])

    def test_bad_operation_rejected(self, engine):
        with pytest.raises(ValueError, match="operation column"):
            ColumnarTrace([0], [0], [64], [2])

    def test_address_beyond_64_bits_rejected(self, engine):
        with pytest.raises(ValueError, match="outside the columnar range"):
            ColumnarTrace([0], [2**64], [64], [0])


class TestChunking:
    def test_iter_blocks_concat_identity(self, engine):
        trace = Trace([req(t, t * 64) for t in range(100)])
        cols = ColumnarTrace.from_trace(trace)
        blocks = list(cols.iter_blocks(block_requests=7))
        assert [len(b) for b in blocks] == [7] * 14 + [2]
        assert ColumnarTrace.concat(blocks) == cols

    def test_concat_empty(self, engine):
        assert len(ColumnarTrace.concat([])) == 0

    def test_bad_block_size(self, engine):
        with pytest.raises(ValueError, match="block_requests"):
            list(ColumnarTrace.empty().iter_blocks(0))


class TestCoercions:
    def test_as_columnar_and_as_scalar(self, engine):
        trace = sample_trace()
        cols = as_columnar(trace)
        assert as_columnar(cols) is cols
        assert as_scalar(cols) == trace
        assert as_scalar(trace) is trace


class TestArrayFallback:
    def test_no_numpy_env_forces_array_engine(self, monkeypatch):
        from array import array

        monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
        assert numpy_or_none() is None
        cols = ColumnarTrace.from_trace(sample_trace())
        assert isinstance(cols.timestamps, array)
        assert cols.timestamps.typecode == "Q"
        assert cols.addresses.typecode == "Q"
        assert cols.sizes.typecode == "I"
        assert cols.ops.typecode == "B"
        assert cols.to_trace() == sample_trace()

    def test_engines_agree_on_lists(self, monkeypatch):
        if not HAVE_NUMPY:
            pytest.skip("needs both engines to compare")
        monkeypatch.delenv("MOCKTAILS_NO_NUMPY", raising=False)
        with_numpy = ColumnarTrace.from_trace(sample_trace()).to_lists()
        monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
        without = ColumnarTrace.from_trace(sample_trace()).to_lists()
        assert with_numpy == without


class TestBackendSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("MOCKTAILS_BACKEND", raising=False)
        assert selected_backend() == "auto"

    def test_auto_resolution_follows_numpy(self, monkeypatch):
        monkeypatch.delenv("MOCKTAILS_BACKEND", raising=False)
        monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
        assert resolve_backend("auto") == "scalar"
        assert active_backend() == "scalar"
        if HAVE_NUMPY:
            monkeypatch.delenv("MOCKTAILS_NO_NUMPY")
            assert resolve_backend("auto") == "columnar"

    def test_explicit_backend_wins(self, monkeypatch):
        monkeypatch.setenv("MOCKTAILS_BACKEND", "columnar")
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend(None) == "columnar"

    def test_set_backend_writes_env(self, monkeypatch):
        # setenv (not delenv) so monkeypatch always restores the
        # original state after set_backend mutates os.environ.
        monkeypatch.setenv("MOCKTAILS_BACKEND", "auto")
        resolved = set_backend("scalar")
        assert resolved == "scalar"
        import os

        assert os.environ["MOCKTAILS_BACKEND"] == "scalar"
        assert set_backend(None) == active_backend()
        assert os.environ["MOCKTAILS_BACKEND"] == "auto"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("vectorized")
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("simd")
        monkeypatch.setenv("MOCKTAILS_BACKEND", "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            selected_backend()

    def test_backend_names(self):
        assert BACKENDS == ("auto", "scalar", "columnar")
