"""Unit tests for profile building and request synthesis."""

import random
from collections import Counter

import pytest

from repro.core.profile import Profile
from repro.core.profiler import build_profile
from repro.core.synthesis import (
    FeedbackSynthesizer,
    synthesize,
    synthesize_stream,
    synthesize_transition_based,
)
from repro.core.hierarchy import two_level_ts
from repro.core.trace import Trace

from ..conftest import req


class TestBuildProfile:
    def test_total_requests_matches_trace(self, mixed_trace):
        profile = build_profile(mixed_trace)
        assert profile.total_requests == len(mixed_trace)

    def test_default_hierarchy_recorded(self, mixed_trace):
        profile = build_profile(mixed_trace)
        assert "cycle_count=500000" in profile.hierarchy

    def test_name_recorded(self, mixed_trace):
        assert build_profile(mixed_trace, name="wl").name == "wl"

    def test_leaves_nonempty(self, bursty_trace):
        profile = build_profile(bursty_trace)
        assert len(profile) > 1

    def test_empty_trace_gives_empty_profile(self):
        profile = build_profile(Trace())
        assert len(profile) == 0
        assert len(synthesize(profile)) == 0


class TestSynthesize:
    def test_same_request_count(self, bursty_trace):
        profile = build_profile(bursty_trace)
        assert len(synthesize(profile, seed=3)) == len(bursty_trace)

    def test_output_time_sorted(self, bursty_trace):
        profile = build_profile(bursty_trace)
        assert synthesize(profile, seed=3).is_sorted()

    def test_strict_preserves_read_write_counts(self, mixed_trace):
        profile = build_profile(mixed_trace)
        synthetic = synthesize(profile, seed=5)
        assert synthetic.read_count() == mixed_trace.read_count()
        assert synthetic.write_count() == mixed_trace.write_count()

    def test_strict_preserves_size_histogram(self, mixed_trace):
        profile = build_profile(mixed_trace)
        synthetic = synthesize(profile, seed=5)
        assert Counter(r.size for r in synthetic) == Counter(r.size for r in mixed_trace)

    def test_deterministic_for_seed(self, mixed_trace):
        profile = build_profile(mixed_trace)
        assert synthesize(profile, seed=7) == synthesize(profile, seed=7)

    def test_different_seeds_can_differ(self, bursty_trace):
        # With a seeded RNG two seeds normally produce different traces
        # for any workload with variability.
        trace = Trace(
            [req(i * 3, 0x1000 + random.Random(i).choice([0, 64, 128, 256])) for i in range(64)]
        )
        profile = build_profile(trace)
        assert synthesize(profile, seed=1) != synthesize(profile, seed=2)

    def test_regular_trace_replayed_exactly(self, linear_trace):
        profile = build_profile(linear_trace)
        assert synthesize(profile, seed=0) == Trace(list(linear_trace))

    def test_addresses_within_original_footprint(self, mixed_trace):
        profile = build_profile(mixed_trace)
        original_range = mixed_trace.address_range()
        for request in synthesize(profile, seed=9):
            assert original_range.contains(request.address)

    def test_stream_matches_trace(self, mixed_trace):
        profile = build_profile(mixed_trace)
        streamed = Trace(synthesize_stream(profile, seed=4))
        assert streamed == synthesize(profile, seed=4)

    def test_burst_start_times_preserved(self, bursty_trace):
        # Leaves save start times, so idle gaps between bursts survive
        # synthesis (Fig. 3 behaviour).
        profile = build_profile(bursty_trace)
        synthetic = synthesize(profile, seed=2)
        original_bins = {r.timestamp // 1_000_000 for r in bursty_trace}
        synthetic_bins = {r.timestamp // 1_000_000 for r in synthetic}
        assert original_bins == synthetic_bins


class TestFeedbackSynthesizer:
    def test_no_backpressure_matches_plain(self, mixed_trace):
        profile = build_profile(mixed_trace)
        synthesizer = FeedbackSynthesizer(profile, seed=4)
        requests = list(synthesizer)
        assert Trace(requests) == synthesize(profile, seed=4)

    def test_backpressure_shifts_later_requests(self, mixed_trace):
        profile = build_profile(mixed_trace)
        synthesizer = FeedbackSynthesizer(profile, seed=4)
        first = synthesizer.next_request()
        synthesizer.report_backpressure(1000)
        second = synthesizer.next_request()

        plain = list(synthesize_stream(profile, seed=4))
        assert first == plain[0]
        assert second.timestamp == plain[1].timestamp + 1000

    def test_backpressure_accumulates(self, mixed_trace):
        profile = build_profile(mixed_trace)
        synthesizer = FeedbackSynthesizer(profile, seed=4)
        synthesizer.report_backpressure(10)
        synthesizer.report_backpressure(5)
        assert synthesizer.accumulated_delay == 15

    def test_rejects_negative_delay(self, mixed_trace):
        synthesizer = FeedbackSynthesizer(build_profile(mixed_trace))
        with pytest.raises(ValueError):
            synthesizer.report_backpressure(-1)

    def test_exhaustion_returns_none(self, linear_trace):
        synthesizer = FeedbackSynthesizer(build_profile(linear_trace))
        count = sum(1 for _ in synthesizer)
        assert count == len(linear_trace)
        assert synthesizer.next_request() is None


class TestTransitionBasedSynthesis:
    def test_request_count_preserved(self, bursty_trace):
        profile = build_profile(bursty_trace)
        assert len(synthesize_transition_based(profile, seed=1)) == len(bursty_trace)

    def test_time_sorted(self, bursty_trace):
        profile = build_profile(bursty_trace)
        assert synthesize_transition_based(profile, seed=1).is_sorted()

    def test_differs_from_priority_queue_order(self, bursty_trace):
        # The ablation injector loses the per-leaf start times, so the
        # stream generally differs from the paper's approach.
        profile = build_profile(bursty_trace)
        assert synthesize_transition_based(profile, seed=1) != synthesize(profile, seed=1)

    def test_decremental_weights_match_rng_choices(self):
        # The Fenwick-tree sampler must be draw-for-draw identical to the
        # rng.choices(range(n), weights=...) loop it replaced.
        from repro.core.synthesis import _DecrementalWeights

        for trial in range(30):
            seed_rng = random.Random(1000 + trial)
            counts = [seed_rng.randrange(0, 8) for _ in range(seed_rng.randrange(1, 12))]
            if not sum(counts):
                counts[0] = 1

            rng_a, rng_b = random.Random(trial), random.Random(trial)
            weights = _DecrementalWeights(list(counts))
            remaining = list(counts)
            while weights.total:
                chosen = weights.choose(rng_a)
                expected = rng_b.choices(range(len(remaining)), weights=remaining)[0]
                assert chosen == expected
                weights.decrement(chosen)
                remaining[chosen] -= 1
            assert sum(remaining) == 0
