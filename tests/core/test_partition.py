"""Unit tests for temporal partitioning."""

import pytest

from repro.core.partition import partition_by_cycle_count, partition_by_request_count

from ..conftest import req


class TestRequestCountPartitioning:
    def test_exact_chunks(self):
        requests = [req(i, 0) for i in range(10)]
        parts = partition_by_request_count(requests, 5)
        assert [len(p) for p in parts] == [5, 5]

    def test_remainder_chunk(self):
        requests = [req(i, 0) for i in range(7)]
        parts = partition_by_request_count(requests, 3)
        assert [len(p) for p in parts] == [3, 3, 1]

    def test_preserves_order(self):
        requests = [req(i, i) for i in range(6)]
        parts = partition_by_request_count(requests, 4)
        flattened = [r for part in parts for r in part]
        assert flattened == requests

    def test_empty_input(self):
        assert partition_by_request_count([], 10) == []

    def test_single_large_interval(self):
        requests = [req(i, 0) for i in range(5)]
        assert len(partition_by_request_count(requests, 100)) == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            partition_by_request_count([], 0)


class TestCycleCountPartitioning:
    def test_bins_aligned_to_first_request(self):
        requests = [req(1000, 0), req(1050, 0), req(1100, 0), req(2100, 0)]
        parts = partition_by_cycle_count(requests, 100)
        # Bins: [1000,1100), [1100,1200), ... -> 1000&1050 | 1100 | 2100
        assert [len(p) for p in parts] == [2, 1, 1]

    def test_empty_bins_are_skipped(self):
        requests = [req(0, 0), req(10_000, 0)]
        parts = partition_by_cycle_count(requests, 100)
        assert len(parts) == 2
        assert all(part for part in parts)

    def test_all_in_one_bin(self):
        requests = [req(i, 0) for i in range(50)]
        assert len(partition_by_cycle_count(requests, 1_000)) == 1

    def test_empty_input(self):
        assert partition_by_cycle_count([], 100) == []

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            partition_by_cycle_count([req(10, 0), req(5, 0)], 100)

    def test_rejects_unsorted_past_origin(self):
        # Regression: a timestamp that decreases mid-stream but stays
        # above the first request's timestamp used to be silently
        # misbinned instead of rejected.
        requests = [req(0, 0), req(100, 0), req(50, 0)]
        with pytest.raises(ValueError, match="sorted by timestamp"):
            partition_by_cycle_count(requests, 10)

    def test_accepts_equal_timestamps(self):
        requests = [req(5, 0), req(5, 0), req(5, 0)]
        parts = partition_by_cycle_count(requests, 100)
        assert [len(p) for p in parts] == [3]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            partition_by_cycle_count([], 0)

    def test_boundary_request_starts_new_bin(self):
        requests = [req(0, 0), req(99, 0), req(100, 0)]
        parts = partition_by_cycle_count(requests, 100)
        assert [len(p) for p in parts] == [2, 1]

    def test_bursty_trace_isolates_bursts(self, bursty_trace):
        parts = partition_by_cycle_count(list(bursty_trace), 500_000)
        assert len(parts) == 6  # one per burst; idle gaps have no partitions
        assert all(len(p) == 20 for p in parts)
