"""Scalar/columnar profile equivalence (the tentpole's bit-identity contract).

The vectorized profiler must reproduce the scalar profiler exactly —
down to Markov transition-dict insertion order, because serialization
numbers states by first appearance. These tests compare canonical JSON
of the full profile dict (which encodes that order) and the serialized
on-disk bytes across backends, hierarchy configurations and workloads,
with and without numpy.
"""

import json

import pytest

from repro.core.columnar import ColumnarTrace, numpy_or_none
from repro.core.hierarchy import micro_macro, two_level_rs, two_level_ts
from repro.core.profiler import build_profile
from repro.core.serialization import profile_to_dict, save_profile
from repro.workloads import workload_trace

HAVE_NUMPY = numpy_or_none() is not None

REQUESTS = 3000


def canonical(profile) -> str:
    return json.dumps(profile_to_dict(profile), sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def hevc_trace():
    return workload_trace("hevc1", num_requests=REQUESTS)


CONFIGS = {
    "2l_ts": lambda: two_level_ts(cycles_per_interval=50_000),
    "2l_rs": lambda: two_level_rs(requests_per_interval=500),
    "micro_macro": lambda: micro_macro(macro_cycles=50_000, micro_cycles=5_000),
    "fixed": lambda: two_level_ts(
        cycles_per_interval=50_000, spatial="fixed", block_size=4096
    ),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_columnar_profile_bit_identical(config_name, hevc_trace):
    """Canonical JSON matches between backends for every hierarchy shape."""
    config = CONFIGS[config_name]()
    scalar = build_profile(hevc_trace, config, name="hevc1", backend="scalar")
    columnar = build_profile(hevc_trace, config, name="hevc1", backend="columnar")
    assert canonical(columnar) == canonical(scalar)


@pytest.mark.parametrize("workload", ["mcf", "crypto1", "manhattan"])
def test_columnar_profile_across_workloads(workload):
    trace = workload_trace(workload, num_requests=REQUESTS)
    config = two_level_ts(cycles_per_interval=50_000)
    scalar = build_profile(trace, config, name=workload, backend="scalar")
    columnar = build_profile(trace, config, name=workload, backend="columnar")
    assert canonical(columnar) == canonical(scalar)


def test_columnar_accepts_columnar_input(hevc_trace):
    """A ColumnarTrace input avoids the object conversion and still matches."""
    config = two_level_ts(cycles_per_interval=50_000)
    scalar = build_profile(hevc_trace, config, name="hevc1", backend="scalar")
    columns = ColumnarTrace.from_trace(hevc_trace)
    columnar = build_profile(columns, config, name="hevc1", backend="columnar")
    assert canonical(columnar) == canonical(scalar)


def test_scalar_accepts_columnar_input(hevc_trace):
    """The scalar backend transparently converts columnar input back."""
    config = two_level_ts(cycles_per_interval=50_000)
    from_objects = build_profile(hevc_trace, config, name="hevc1", backend="scalar")
    from_columns = build_profile(
        ColumnarTrace.from_trace(hevc_trace), config, name="hevc1", backend="scalar"
    )
    assert canonical(from_columns) == canonical(from_objects)


def test_serialized_bytes_identical(tmp_path, hevc_trace):
    """The on-disk profile artifact is byte-identical across backends."""
    config = two_level_ts(cycles_per_interval=50_000)
    scalar_path = tmp_path / "scalar.profile"
    columnar_path = tmp_path / "columnar.profile"
    save_profile(
        build_profile(hevc_trace, config, name="hevc1", backend="scalar"), scalar_path
    )
    save_profile(
        build_profile(hevc_trace, config, name="hevc1", backend="columnar"),
        columnar_path,
    )
    assert scalar_path.read_bytes() == columnar_path.read_bytes()


def test_forced_columnar_without_numpy_matches(monkeypatch, hevc_trace):
    """backend="columnar" without numpy falls back to scalar code, same bits."""
    config = two_level_ts(cycles_per_interval=50_000)
    reference = build_profile(hevc_trace, config, name="hevc1", backend="scalar")
    monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
    fallback = build_profile(hevc_trace, config, name="hevc1", backend="columnar")
    assert canonical(fallback) == canonical(reference)


def test_empty_trace_profiles_identically():
    from repro.core.trace import Trace

    config = two_level_ts()
    scalar = build_profile(Trace(), config, name="empty", backend="scalar")
    columnar = build_profile(Trace(), config, name="empty", backend="columnar")
    assert canonical(columnar) == canonical(scalar)


def test_unsorted_trace_rejected_by_both_backends():
    from repro.core.trace import Trace

    from ..conftest import req

    trace = Trace([req(5, 0), req(3, 64)])
    for backend in ("scalar", "columnar"):
        with pytest.raises(ValueError, match="sorted by timestamp"):
            build_profile(trace, two_level_ts(), backend=backend)
