"""Loaders fail loudly and clearly on truncated/corrupt artifacts.

Regression suite for the ``CorruptArtifactError`` contract: a truncated
gzip stream or malformed payload names the offending file instead of
surfacing a raw ``zlib.error`` / ``struct.error`` / ``UnicodeDecodeError``
from deep inside the codec.
"""

import gzip

import pytest

from repro import CorruptArtifactError
from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.core.serialization import load_profile, save_profile
from repro.core.trace import Trace
from repro.workloads.registry import workload_trace


@pytest.fixture(scope="module")
def profile_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("profiles") / "hevc1.mprof.gz"
    profile = build_profile(workload_trace("hevc1", 400), two_level_ts(), name="hevc1")
    save_profile(profile, path)
    return path


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


def test_truncated_gzip_profile(profile_file, tmp_path):
    truncated = tmp_path / "truncated.mprof.gz"
    truncated.write_bytes(profile_file.read_bytes()[:40])
    with pytest.raises(CorruptArtifactError) as excinfo:
        load_profile(truncated)
    assert str(truncated) in str(excinfo.value)
    assert excinfo.value.path == str(truncated)


def test_profile_with_garbage_payload(tmp_path):
    path = tmp_path / "garbage.mprof.gz"
    path.write_bytes(gzip.compress(b"\xff\xfe not json", mtime=0))
    with pytest.raises(CorruptArtifactError, match="corrupt profile payload"):
        load_profile(path)


def test_profile_with_malformed_structure(tmp_path):
    path = tmp_path / "malformed.mprof.gz"
    payload = b'{"format_version":1,"leaves":[{"not":"a leaf"}]}'
    path.write_bytes(gzip.compress(payload, mtime=0))
    with pytest.raises(CorruptArtifactError, match="malformed profile structure"):
        load_profile(path)


def test_corrupt_error_is_still_a_valueerror(tmp_path):
    # Callers written against the old contract keep working.
    path = tmp_path / "bad.mprof.gz"
    path.write_bytes(b"not gzip at all")
    with pytest.raises(ValueError):
        load_profile(path)


# ---------------------------------------------------------------------------
# Traces: binary format
# ---------------------------------------------------------------------------


def test_truncated_binary_trace(tmp_path, mixed_trace):
    path = tmp_path / "trace.mtr"
    mixed_trace.save_binary(path)
    path.write_bytes(path.read_bytes()[:20])  # cuts a record in half
    with pytest.raises(CorruptArtifactError) as excinfo:
        Trace.load_binary(path)
    assert str(path) in str(excinfo.value)


def test_truncated_gzipped_binary_trace(tmp_path, mixed_trace):
    path = tmp_path / "trace.mtr.gz"
    mixed_trace.save_binary(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CorruptArtifactError, match="gzip"):
        Trace.load_binary(path)


def test_binary_trace_with_invalid_operation(tmp_path, mixed_trace):
    path = tmp_path / "trace.mtr"
    mixed_trace.save_binary(path)
    data = bytearray(path.read_bytes())
    data[12 + 16] = 7  # first record's operation byte: not READ/WRITE
    path.write_bytes(bytes(data))
    with pytest.raises(CorruptArtifactError, match="malformed binary trace"):
        Trace.load_binary(path)


def test_wrong_magic_stays_plain_valueerror(tmp_path):
    # A wrong format is *not* corruption — the old error is preserved.
    path = tmp_path / "trace.mtr"
    path.write_bytes(b"PNG\x00 definitely not a trace")
    with pytest.raises(ValueError, match="not a Mocktails binary trace"):
        Trace.load_binary(path)


# ---------------------------------------------------------------------------
# Traces: CSV format
# ---------------------------------------------------------------------------


def test_truncated_gzipped_csv_trace(tmp_path, mixed_trace):
    path = tmp_path / "trace.csv.gz"
    mixed_trace.save_csv(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CorruptArtifactError, match="gzip"):
        Trace.load_csv(path)


def test_csv_with_missing_header(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("1,0x1000,R,64\n")
    with pytest.raises(CorruptArtifactError, match="missing CSV header"):
        Trace.load_csv(path)


def test_csv_with_malformed_record(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("timestamp,address,operation,size\n1,0x1000,R\n")
    with pytest.raises(CorruptArtifactError, match="malformed CSV record"):
        Trace.load_csv(path)


def test_csv_with_non_numeric_fields(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("timestamp,address,operation,size\nabc,0x1000,R,64\n")
    with pytest.raises(CorruptArtifactError, match="malformed CSV record"):
        Trace.load_csv(path)


def test_csv_with_binary_garbage(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_bytes(b"\x93\xffbinary junk\x00")
    with pytest.raises(CorruptArtifactError, match="not an ASCII CSV trace"):
        Trace.load_csv(path)
