"""Unit tests for leaf models, address wrapping and feature plumbing."""

import random
from collections import Counter

import pytest

from repro.core.leaf import (
    LeafModel,
    McCAddressModel,
    McCOperationModel,
    wrap_address,
)
from repro.core.request import AddressRange, Operation

from ..conftest import req


class TestWrapAddress:
    def test_in_range_untouched(self):
        region = AddressRange(0x100, 0x200)
        assert wrap_address(0x150, region) == 0x150

    def test_above_wraps(self):
        region = AddressRange(0x100, 0x200)
        assert wrap_address(0x210, region) == 0x110

    def test_below_wraps(self):
        region = AddressRange(0x100, 0x200)
        # 0x0F0 is 0x10 below the region: wraps to end - 0x10.
        assert wrap_address(0x0F0, region) == 0x1F0

    def test_wrap_is_always_in_range(self):
        region = AddressRange(1000, 1037)
        for address in range(0, 3000, 7):
            assert region.contains(wrap_address(address, region))

    def test_empty_region_returns_start(self):
        region = AddressRange(0x500, 0x500)
        assert wrap_address(0x999, region) == 0x500


class TestMcCAddressModel:
    def test_fit_records_start(self):
        model = McCAddressModel.fit([0x100, 0x140], AddressRange(0x100, 0x180))
        assert model.start_address == 0x100

    def test_constant_stride_replayed_exactly(self):
        addresses = [0x100 + i * 64 for i in range(8)]
        model = McCAddressModel.fit(addresses, AddressRange(0x100, 0x300))
        assert model.generate(random.Random(0)) == addresses

    def test_generated_addresses_stay_in_region(self):
        region = AddressRange(0x100, 0x200)
        addresses = [0x100, 0x180, 0x110, 0x1F0, 0x120]
        model = McCAddressModel.fit(addresses, region)
        for seed in range(5):
            for address in model.generate(random.Random(seed)):
                assert region.contains(address)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            McCAddressModel.fit([], AddressRange(0, 10))

    def test_count_matches(self):
        addresses = [0, 64, 128, 64]
        model = McCAddressModel.fit(addresses, AddressRange(0, 192))
        assert len(model.generate(random.Random(1))) == 4


class TestMcCOperationModel:
    def test_all_reads_constant(self):
        model = McCOperationModel.fit([Operation.READ] * 4)
        assert model.generate(random.Random(0)) == [Operation.READ] * 4

    def test_mixed_ops_exact_counts(self):
        operations = [Operation.READ, Operation.WRITE, Operation.READ, Operation.READ]
        model = McCOperationModel.fit(operations)
        generated = model.generate(random.Random(0))
        assert Counter(generated) == Counter(operations)

    def test_returns_operation_enum(self):
        model = McCOperationModel.fit([Operation.READ, Operation.WRITE])
        assert all(isinstance(op, Operation) for op in model.generate(random.Random(0)))


class TestLeafModel:
    def _leaf(self):
        requests = [
            req(100, 0x1000, "R", 128),
            req(110, 0x1080, "R", 64),
            req(120, 0x10C0, "R", 64),
            req(130, 0x1100, "W", 64),
        ]
        return LeafModel.fit(requests, AddressRange(0x1000, 0x1140)), requests

    def test_metadata(self):
        leaf, requests = self._leaf()
        assert leaf.start_time == 100
        assert leaf.count == 4
        assert leaf.region == AddressRange(0x1000, 0x1140)

    def test_generate_count(self):
        leaf, _ = self._leaf()
        assert len(leaf.generate(random.Random(0))) == 4

    def test_generate_starts_at_start_time(self):
        leaf, _ = self._leaf()
        assert leaf.generate(random.Random(0))[0].timestamp == 100

    def test_generate_time_monotonic(self):
        leaf, _ = self._leaf()
        for seed in range(4):
            times = [r.timestamp for r in leaf.generate(random.Random(seed))]
            assert times == sorted(times)

    def test_strict_preserves_op_and_size_counts(self):
        leaf, requests = self._leaf()
        generated = leaf.generate(random.Random(2))
        assert Counter(r.operation for r in generated) == Counter(
            r.operation for r in requests
        )
        assert Counter(r.size for r in generated) == Counter(r.size for r in requests)

    def test_addresses_confined_to_region(self):
        leaf, _ = self._leaf()
        for seed in range(5):
            for request in leaf.generate(random.Random(seed)):
                assert leaf.region.contains(request.address)

    def test_single_request_leaf(self):
        leaf = LeafModel.fit([req(50, 0x2000, "W", 32)], AddressRange(0x2000, 0x2020))
        generated = leaf.generate(random.Random(0))
        assert len(generated) == 1
        assert generated[0].timestamp == 50
        assert generated[0].address == 0x2000
        assert generated[0].operation is Operation.WRITE
        assert generated[0].size == 32

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            LeafModel.fit([], AddressRange(0, 10))

    def test_constant_leaf_replay_is_exact(self):
        # Perfectly regular leaves regenerate the original requests.
        requests = [req(10 * i, 0x100 + 64 * i, "R", 64) for i in range(6)]
        leaf = LeafModel.fit(requests, AddressRange(0x100, 0x100 + 6 * 64))
        assert leaf.generate(random.Random(0)) == requests

    def test_equality(self):
        leaf_a, _ = self._leaf()
        leaf_b, _ = self._leaf()
        assert leaf_a == leaf_b
