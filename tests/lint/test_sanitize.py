"""Runtime sanitizer tests: invariant checker, global mode, determinism."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.request import MemoryRequest, Operation
from repro.core.trace import Trace
from repro.lint.sanitize import (
    InvariantViolation,
    TraceInvariantChecker,
    active,
    canonical_json,
    check_determinism,
    disable,
    enable,
    first_divergence,
    make_checker,
)
from repro.sim.cache_driver import run_cache_trace
from repro.sim.driver import simulate_trace


def request(timestamp=0, address=0, operation=Operation.READ, size=64):
    return MemoryRequest(timestamp=timestamp, address=address,
                         operation=operation, size=size)


def raw(timestamp=0, address=0, operation=Operation.READ, size=64):
    """A stub that skips MemoryRequest's own __post_init__ validation."""
    return SimpleNamespace(timestamp=timestamp, address=address,
                           operation=operation, size=size,
                           end_address=address + size)


@pytest.fixture(autouse=True)
def _sanitize_mode_off():
    disable()
    yield
    disable()


def test_checker_passes_valid_stream_and_counts():
    checker = TraceInvariantChecker()
    stream = [request(timestamp=t, address=64 * t) for t in range(5)]
    assert list(checker.watch(stream)) == stream
    assert checker.checked == 5


def test_checker_rejects_backwards_timestamp():
    checker = TraceInvariantChecker(label="unit")
    checker.check(request(timestamp=10))
    with pytest.raises(InvariantViolation, match=r"unit\[1\].*goes backwards"):
        checker.check(request(timestamp=9))


def test_checker_allows_equal_timestamps():
    checker = TraceInvariantChecker()
    checker.check(request(timestamp=10))
    checker.check(request(timestamp=10, address=64))
    assert checker.checked == 2


def test_checker_rejects_negative_fields():
    with pytest.raises(InvariantViolation, match="negative timestamp"):
        TraceInvariantChecker().check(raw(timestamp=-1))
    with pytest.raises(InvariantViolation, match="negative address"):
        TraceInvariantChecker().check(raw(address=-8))
    with pytest.raises(InvariantViolation, match="non-positive size"):
        TraceInvariantChecker().check(raw(size=0))


def test_checker_rejects_misaligned_address():
    checker = TraceInvariantChecker(alignment=64)
    checker.check(request(address=128))
    with pytest.raises(InvariantViolation, match="not 64-byte aligned"):
        checker.check(request(timestamp=1, address=100))


def test_checker_rejects_out_of_range_request():
    checker = TraceInvariantChecker(max_address=1 << 12)
    checker.check(request(address=(1 << 12) - 64))
    with pytest.raises(InvariantViolation, match="exceeds address space"):
        checker.check(request(timestamp=1, address=(1 << 12) - 32))


def test_checker_rejects_illegal_operation():
    with pytest.raises(InvariantViolation, match="illegal operation"):
        TraceInvariantChecker().check(raw(operation=7))


def test_checker_can_ignore_timestamps():
    checker = TraceInvariantChecker(require_monotonic=False)
    checker.check(request(timestamp=10))
    checker.check(request(timestamp=3))
    assert checker.checked == 2


def test_enable_disable_round_trip():
    assert not active()
    assert make_checker("x") is None
    enable(alignment=64)
    assert active()
    checker = make_checker("x")
    assert checker is not None and checker.alignment == 64
    disable()
    assert not active()


def test_simulate_trace_sanitize_flags_bad_stream():
    bad = [request(timestamp=10), request(timestamp=5, address=64)]
    with pytest.raises(InvariantViolation, match="goes backwards"):
        simulate_trace(bad, sanitize=True)


def test_simulate_trace_respects_global_mode():
    bad = [request(timestamp=10), request(timestamp=5, address=64)]
    simulate_trace(list(bad))  # off by default: replays fine
    enable()
    with pytest.raises(InvariantViolation):
        simulate_trace(list(bad))
    # per-call override beats the global switch
    simulate_trace(list(bad), sanitize=False)


def test_sanitize_does_not_change_results():
    stream = [request(timestamp=4 * i, address=64 * (i % 32),
                      operation=Operation.WRITE if i % 3 else Operation.READ)
              for i in range(200)]
    plain = simulate_trace(list(stream))
    checked = simulate_trace(list(stream), sanitize=True)
    assert canonical_json(plain) == canonical_json(checked)


def test_run_cache_trace_tolerates_non_monotonic_replay():
    # atomic-mode cache replay ignores timestamps by construction, so the
    # cache driver's checker must not require monotonicity.
    stream = [request(timestamp=10, address=0),
              request(timestamp=3, address=64)]
    result = run_cache_trace(Trace(stream), sanitize=True)
    assert result is not None


def test_check_determinism_is_identical_at_small_scale():
    identical, first, second = check_determinism("fig3", num_requests=200)
    assert identical
    assert first == second
    assert first_divergence(first, second) == "payloads identical"


def test_check_determinism_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        check_determinism("not-a-figure")


def test_first_divergence_locates_the_diff():
    report = first_divergence('{\n  "a": 1\n}', '{\n  "a": 2\n}')
    assert report.startswith("line 2:")
    assert first_divergence("a\nb", "a\nb\nc").startswith("payload lengths")
