# lint-path: repro/eval/fake.py
from os.path import join


def record(value, seen=None):
    if seen is None:
        seen = []
    seen.append(value)
    return seen, join("a", "b")
