# lint-path: repro/eval/fake.py
import datetime
import time
from datetime import datetime as dt
from time import time as now  # EXPECT: det-wall-clock


def stamp():
    a = time.time()  # EXPECT: det-wall-clock
    b = time.time_ns()  # EXPECT: det-wall-clock
    c = datetime.datetime.now()  # EXPECT: det-wall-clock
    d = dt.utcnow()  # EXPECT: det-wall-clock
    return a, b, c, d, now
