# lint-path: src/repro/demo/ordering.py
"""Planted: inconsistent acquisition order plus a re-entrant acquire."""
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:  # EXPECT: conc-lock-order
                pass

    def backward(self):
        with self._b:
            with self._a:  # EXPECT: conc-lock-order
                pass


class Again:
    def __init__(self):
        self._lock = threading.Lock()

    def twice(self):
        with self._lock:
            with self._lock:  # EXPECT: conc-lock-order
                pass
