# lint-path: repro/eval/fake.py
import time

from repro.obs.clock import wall_time


def elapsed():
    start = time.perf_counter()
    deadline = time.monotonic() + 5.0
    return time.perf_counter() - start, deadline, wall_time()
