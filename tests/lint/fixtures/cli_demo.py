# Demo input for the CLI golden test (tests/lint/test_cli.py).
# Not a *_bad.py/_good.py fixture: linted via its real path, so the
# module-scoped rules (perf-slots) do not apply here.
import time

stamp = time.time()
half = 0.5
broken = half == 0.5
