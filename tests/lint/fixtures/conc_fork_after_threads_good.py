# lint-path: src/repro/demo/fanout.py
"""Clean: pools carry explicit spawn-safe start methods."""
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor


def start():
    threading.Thread(target=worker_side).start()


def worker_side():
    return ProcessPoolExecutor(
        2, mp_context=multiprocessing.get_context("spawn")
    )
