# lint-path: repro/core/fake.py
def serialize(items, extra):
    for item in sorted(set(items)):
        print(item)
    dedup = sorted(set(items) | set(extra))
    unique = set(items)  # building a set is fine; iterating it is not
    membership = "a" in unique
    count = len(set(extra))
    return dedup, membership, count
