# lint-path: src/repro/demo/held.py
"""Planted: await while lexically holding a synchronous lock."""
import asyncio
import threading

_lock = threading.Lock()


async def refresh():
    with _lock:
        await asyncio.sleep(0.1)  # EXPECT: conc-await-under-lock
