# lint-path: src/repro/demo/held.py
"""Clean: the lock is released before the coroutine parks."""
import asyncio
import threading

_lock = threading.Lock()


async def refresh():
    with _lock:
        delay = 0.1
    await asyncio.sleep(delay)
