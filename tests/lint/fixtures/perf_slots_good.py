# lint-path: repro/dram/controller.py
from dataclasses import dataclass
from enum import IntEnum


class BankTracker:
    __slots__ = ("open_row",)

    def __init__(self):
        self.open_row = None


@dataclass
class SlottedRecord:
    __slots__ = ("address", "size")

    address: int
    size: int


@dataclass(frozen=True)
class TimingConfig:
    t_rcd: int = 18


@dataclass
class Tally:  # defaults make it unslottable under the 3.9 floor
    hits: int = 0


class SchedulerError(RuntimeError):
    pass


class Kind(IntEnum):
    A = 0
