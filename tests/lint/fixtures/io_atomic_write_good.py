# lint-path: repro/tools/fake.py
import gzip
from pathlib import Path

from repro.store.atomic import atomic_write_bytes, atomic_write_text


def roundtrip(path, payload):
    atomic_write_text(path, payload)
    atomic_write_bytes(path, payload.encode())
    with open(path) as handle:
        text = handle.read()
    with gzip.open(path, "rb") as handle:
        blob = handle.read()
    return text, blob, Path(path).read_text()
