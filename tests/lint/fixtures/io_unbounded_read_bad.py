# lint-path: repro/stream/reader.py
from pathlib import Path


def slurp(path):
    with open(path, "rb") as handle:
        everything = handle.read()  # EXPECT: io-unbounded-read
        again = handle.read(-1)  # EXPECT: io-unbounded-read
        also = handle.read(None)  # EXPECT: io-unbounded-read
    raw = Path(path).read_bytes()  # EXPECT: io-unbounded-read
    text = Path(path).read_text()  # EXPECT: io-unbounded-read
    return everything, again, also, raw, text
