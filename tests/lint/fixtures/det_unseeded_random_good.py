# lint-path: repro/workloads/fake.py
import random
from random import Random

import numpy as np


def draw(seed: int, rng: random.Random):
    local = Random(seed)
    generator = np.random.default_rng(seed)
    return local.random(), rng.randint(0, 7), generator
