# lint-path: repro/core/ioutil.py
CHUNK_BYTES = 1 << 20


def copy_chunked(source, sink):
    while True:
        chunk = source.read(CHUNK_BYTES)
        if not chunk:
            break
        sink.write(chunk)


def read_header(handle):
    return handle.read(12)
