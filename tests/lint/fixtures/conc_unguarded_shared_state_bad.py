# lint-path: src/repro/demo/tally.py
"""Planted: attribute written from loop and worker contexts, lockless."""
import threading


class Tally:
    def __init__(self):
        self.count = 0

    def start(self):
        threading.Thread(target=self.from_worker).start()

    def from_worker(self):
        self.count += 1  # EXPECT: conc-unguarded-shared-state

    async def from_loop(self):
        self.count += 1
