# lint-path: src/repro/demo/loopwork.py
"""Clean: loop code hops blocking work to executors or awaits natively."""
import asyncio
import time


def slow_step():
    time.sleep(0.5)


async def hopped():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, slow_step)


async def native():
    await asyncio.sleep(0.1)
