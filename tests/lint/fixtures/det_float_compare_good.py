# lint-path: repro/eval/fake.py
import math


def classify(miss_rate, count):
    close = math.isclose(miss_rate, 0.5, rel_tol=1e-9)
    integer = count == 0
    ordered = miss_rate > 0.5
    return close, integer, ordered
