# lint-path: src/repro/demo/tally.py
"""Clean: every cross-context mutation holds the owning lock."""
import threading


class Tally:
    def __init__(self):
        self.count = 0
        self._lock = threading.Lock()

    def start(self):
        threading.Thread(target=self.from_worker).start()

    def from_worker(self):
        with self._lock:
            self.count += 1

    async def from_loop(self):
        with self._lock:
            self.count += 1
