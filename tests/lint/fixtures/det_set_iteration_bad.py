# lint-path: repro/core/fake.py
def serialize(items, extra):
    for item in set(items):  # EXPECT: det-set-iteration
        print(item)
    for letter in {"a", "b"}:  # EXPECT: det-set-iteration
        print(letter)
    comp = [x for x in frozenset(items)]  # EXPECT: det-set-iteration
    dedup = list(set(items))  # EXPECT: det-set-iteration
    merged = [x for x in set(items) | set(extra)]  # EXPECT: det-set-iteration
    union = tuple(set(items).union(extra))  # EXPECT: det-set-iteration
    return comp, dedup, merged, union
