# lint-path: repro/workloads/fake.py
import random

import numpy as np
from random import randint  # EXPECT: det-unseeded-random
from numpy.random import rand  # EXPECT: det-unseeded-random


def draw():
    value = random.random()  # EXPECT: det-unseeded-random
    random.seed(1)  # EXPECT: det-unseeded-random
    random.shuffle([1, 2])  # EXPECT: det-unseeded-random
    noise = np.random.rand(4)  # EXPECT: det-unseeded-random
    np.random.seed(0)  # EXPECT: det-unseeded-random
    return value, noise, randint, rand
