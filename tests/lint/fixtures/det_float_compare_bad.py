# lint-path: repro/eval/fake.py
def classify(miss_rate, error):
    exact = miss_rate == 0.5  # EXPECT: det-float-compare
    other = 1.0 != error  # EXPECT: det-float-compare
    coerced = error == float(miss_rate)  # EXPECT: det-float-compare
    negative = miss_rate == -0.25  # EXPECT: det-float-compare
    return exact, other, coerced, negative
