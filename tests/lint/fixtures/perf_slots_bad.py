# lint-path: repro/dram/controller.py
from dataclasses import dataclass


class BankTracker:  # EXPECT: perf-slots
    def __init__(self):
        self.open_row = None


@dataclass
class BurstRecord:  # EXPECT: perf-slots
    address: int
    size: int
