# lint-path: repro/tools/fake.py
import gzip
from pathlib import Path


def save(path, payload):
    with open(path, "w") as handle:  # EXPECT: io-atomic-write
        handle.write(payload)
    with open(path, mode="ab") as handle:  # EXPECT: io-atomic-write
        handle.write(b"x")
    Path(path).write_text(payload)  # EXPECT: io-atomic-write
    Path(path).write_bytes(b"x")  # EXPECT: io-atomic-write
    Path(path).open("x").close()  # EXPECT: io-atomic-write
    gzip.open(path, "wt").close()  # EXPECT: io-atomic-write
