# lint-path: src/repro/demo/loopwork.py
"""Planted: blocking calls reachable from the event loop."""
import asyncio
import time


def slow_step():
    time.sleep(0.5)  # EXPECT: conc-blocking-in-async


def register(loop):
    loop.call_soon(slow_step)


async def direct():
    time.sleep(0.1)  # EXPECT: conc-blocking-in-async


async def transitive():
    slow_step()  # EXPECT: conc-blocking-in-async
