# lint-path: src/repro/demo/fanout.py
"""Planted: fork-preferred pools where worker threads already run."""
import threading
from concurrent.futures import ProcessPoolExecutor


def noop():
    pass


def start():
    threading.Thread(target=worker_side).start()


def worker_side():
    pool = ProcessPoolExecutor(2)  # EXPECT: conc-fork-after-threads
    return pool


def lexical():
    threading.Thread(target=noop).start()
    pool = ProcessPoolExecutor(2)  # EXPECT: conc-fork-after-threads
    return pool
