# lint-path: src/repro/demo/ordering.py
"""Clean: every path acquires the pair in the same order."""
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass
