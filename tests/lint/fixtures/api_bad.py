# lint-path: repro/eval/fake.py
from os.path import *  # EXPECT: api-star-import


def record(value, seen=[]):  # EXPECT: api-mutable-default
    seen.append(value)
    return seen


def tally(value, *, counts={}):  # EXPECT: api-mutable-default
    counts[value] = counts.get(value, 0) + 1
    return counts
