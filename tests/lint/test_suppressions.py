"""Suppression comments: targeted, blanket, and unused detection."""

from __future__ import annotations

from repro.lint import UNUSED_SUPPRESSION, lint_source

PATH = "src/repro/core/fake.py"


def test_targeted_suppression_silences_the_rule():
    source = (
        "import time\n"
        "stamp = time.time()  # lint: ignore[det-wall-clock]\n"
    )
    assert lint_source(source, path=PATH) == []


def test_suppression_for_wrong_rule_keeps_finding_and_flags_itself():
    source = (
        "import time\n"
        "stamp = time.time()  # lint: ignore[io-atomic-write]\n"
    )
    findings = lint_source(source, path=PATH)
    assert sorted(f.rule_id for f in findings) == [
        "det-wall-clock", UNUSED_SUPPRESSION,
    ]


def test_blanket_suppression_silences_everything_on_the_line():
    source = (
        "import time\n"
        "pair = (time.time(), open('x', 'w'))  # lint: ignore\n"
    )
    assert lint_source(source, path=PATH) == []


def test_multi_id_suppression():
    source = (
        "import time\n"
        "pair = (time.time(), open('x', 'w'))"
        "  # lint: ignore[det-wall-clock, io-atomic-write]\n"
    )
    assert lint_source(source, path=PATH) == []


def test_unused_suppression_is_reported_with_line():
    source = "value = 1  # lint: ignore[det-wall-clock]\n"
    findings = lint_source(source, path=PATH)
    assert len(findings) == 1
    assert findings[0].rule_id == UNUSED_SUPPRESSION
    assert findings[0].line == 1
    assert "det-wall-clock" in findings[0].message


def test_unused_blanket_suppression_is_reported():
    source = "value = 1  # lint: ignore\n"
    findings = lint_source(source, path=PATH)
    assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION]


def test_suppression_only_applies_to_its_own_line():
    source = (
        "import time\n"
        "ok = 1  # lint: ignore[det-wall-clock]\n"
        "stamp = time.time()\n"
    )
    findings = lint_source(source, path=PATH)
    assert sorted((f.line, f.rule_id) for f in findings) == [
        (2, UNUSED_SUPPRESSION),
        (3, "det-wall-clock"),
    ]


def test_decorator_line_suppression_covers_the_def_header():
    # The finding anchors at the default expression on the def line; the
    # suppression sits on the decorator line. Both fall in the same
    # statement span, so the suppression applies and is counted used.
    source = (
        "import functools\n"
        "\n"
        "@functools.lru_cache  # lint: ignore[api-mutable-default]\n"
        "def cached(seen=[]):\n"
        "    return seen\n"
    )
    assert lint_source(source, path=PATH) == []


def test_def_line_suppression_covers_multiline_header():
    source = (
        "def wide(\n"
        "    seen=[],  # lint: ignore[api-mutable-default]\n"
        "):\n"
        "    return seen\n"
    )
    assert lint_source(source, path=PATH) == []


def test_span_anchoring_stops_at_the_body():
    # The span ends at the header: a suppression on the decorator line
    # must NOT leak onto findings inside the function body.
    source = (
        "import time\n"
        "import functools\n"
        "\n"
        "@functools.lru_cache  # lint: ignore[det-wall-clock]\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    findings = lint_source(source, path=PATH)
    assert sorted((f.line, f.rule_id) for f in findings) == [
        (4, UNUSED_SUPPRESSION),
        (6, "det-wall-clock"),
    ]


def test_suppression_inside_string_literal_is_not_parsed():
    source = 'text = "# lint: ignore[det-wall-clock]"\n'
    assert lint_source(source, path=PATH) == []


def test_select_skips_unused_suppression_checks():
    source = "value = 1  # lint: ignore[det-wall-clock]\n"
    assert lint_source(source, path=PATH, select=["det-wall-clock"]) == []


def test_ignore_can_disable_unused_suppression_rule():
    source = "value = 1  # lint: ignore[det-wall-clock]\n"
    assert lint_source(source, path=PATH, ignore=[UNUSED_SUPPRESSION]) == []
