"""Call-graph unit tests: resolution, cycles, fallbacks, contexts.

These exercise :mod:`repro.lint.graph` directly — per-file summary
extraction joined by :func:`build_project` — independent of the rules
driven over the resulting graph.
"""

from __future__ import annotations

import ast

from repro.lint.graph import build_project, extract_summary


def summarize(path: str, source: str):
    return extract_summary(ast.parse(source), path)


def graph_for(**files):
    """Build a project graph from ``{"pkg/mod.py": source}`` mappings."""
    return build_project(
        summarize(path, source) for path, source in files.items()
    )


def callee_ids(graph, fid):
    return {target for target, _ in graph.functions[fid].callees}


def test_cross_module_call_resolution():
    graph = graph_for(**{
        "src/repro/alpha.py": (
            "from repro.beta import helper\n"
            "\n"
            "def entry():\n"
            "    helper()\n"
        ),
        "src/repro/beta.py": (
            "def helper():\n"
            "    pass\n"
        ),
    })
    assert "repro.beta.helper" in callee_ids(graph, "repro.alpha.entry")


def test_reexport_chain_resolution():
    graph = graph_for(**{
        "src/repro/pkg/__init__.py": "from .impl import work\n",
        "src/repro/pkg/impl.py": "def work():\n    pass\n",
        "src/repro/user.py": (
            "from repro import pkg\n"
            "\n"
            "def entry():\n"
            "    pkg.work()\n"
        ),
    })
    assert "repro.pkg.impl.work" in callee_ids(graph, "repro.user.entry")


def test_call_cycle_terminates_and_propagates_blocking():
    graph = graph_for(**{
        "src/repro/cyc.py": (
            "import time\n"
            "\n"
            "def ping():\n"
            "    pong()\n"
            "\n"
            "def pong():\n"
            "    time.sleep(1)\n"
            "    ping()\n"
            "\n"
            "async def entry():\n"
            "    ping()\n"
        ),
    })
    # The ping <-> pong cycle must not hang the fixpoint, and blocking
    # must still propagate through it to the coroutine.
    assert "repro.cyc.entry" in graph.may_block
    _, _, chain = graph.may_block["repro.cyc.entry"]
    assert "time.sleep" in chain


def test_dynamic_dispatch_falls_back_to_conservative_edges():
    graph = graph_for(**{
        "src/repro/dyn.py": (
            "class Fast:\n"
            "    def compute(self):\n"
            "        pass\n"
            "\n"
            "class Slow:\n"
            "    def compute(self):\n"
            "        pass\n"
            "\n"
            "def drive(engine):\n"
            "    engine.compute()\n"
        ),
    })
    # An unannotated receiver resolves to every project method of that
    # name — over-approximate rather than miss a real edge.
    assert callee_ids(graph, "repro.dyn.drive") >= {
        "repro.dyn.Fast.compute",
        "repro.dyn.Slow.compute",
    }


def test_known_external_receiver_suppresses_conservative_fallback():
    graph = graph_for(**{
        "src/repro/ext.py": (
            "import asyncio\n"
            "\n"
            "class Handle:\n"
            "    def wait(self):\n"
            "        pass\n"
            "\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._stopping = asyncio.Event()\n"
            "\n"
            "    async def run(self):\n"
            "        await self._stopping.wait()\n"
        ),
    })
    # The receiver types to asyncio.Event — known external — so the
    # name-matched fallback must NOT wire Handle.wait in.
    assert "repro.ext.Handle.wait" not in callee_ids(graph, "repro.ext.Server.run")


def test_symbolic_type_chain_resolves_through_returns():
    source = (
        "class Widget:\n"
        "    def spin(self):\n"
        "        pass\n"
        "\n"
        "class Maker:\n"
        "    def make(self) -> Widget:\n"
        "        return Widget()\n"
        "\n"
        "def use():\n"
        "    Maker().make().spin()\n"
    )
    graph = graph_for(**{"src/repro/chain.py": source})
    assert graph.resolve_type_expr(
        "repro.chain", "repro.chain.Maker().make()"
    ) == "repro.chain.Widget"
    assert "repro.chain.Widget.spin" in callee_ids(graph, "repro.chain.use")


def test_thread_target_marks_worker_context():
    graph = graph_for(**{
        "src/repro/ctx.py": (
            "import threading\n"
            "\n"
            "def work():\n"
            "    step()\n"
            "\n"
            "def step():\n"
            "    pass\n"
            "\n"
            "def start():\n"
            "    threading.Thread(target=work).start()\n"
        ),
    })
    assert graph.function_contexts("repro.ctx.work") == {"worker"}
    # ... and reachability extends transitively to its callees.
    assert graph.function_contexts("repro.ctx.step") == {"worker"}
    assert graph.function_contexts("repro.ctx.start") == set()


def test_executor_submit_is_a_hop_not_a_loop_call():
    graph = graph_for(**{
        "src/repro/hop.py": (
            "import time\n"
            "\n"
            "def blocking():\n"
            "    time.sleep(1)\n"
            "\n"
            "async def entry(executor):\n"
            "    executor.submit(blocking)\n"
        ),
    })
    # The submitted function runs on a worker, not the loop: blocking
    # must not propagate across the hop, but worker context must.
    assert "repro.hop.entry" not in graph.may_block
    assert "worker" in graph.function_contexts("repro.hop.blocking")
