"""Runtime concurrency sanitizers: lock-order checker and stall monitor."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.lint.sanitize import (
    LockOrderChecker,
    LoopStallMonitor,
    TrackedLock,
    disable_lock_order_check,
    enable_lock_order_check,
    lock_order_checker,
    make_lock,
)
from repro.store.locks import FileLock


@pytest.fixture
def checker():
    checker = enable_lock_order_check()
    try:
        yield checker
    finally:
        disable_lock_order_check()


def test_consistent_order_has_no_violations():
    checker = LockOrderChecker()
    for _ in range(3):
        checker.acquired("A")
        checker.acquired("B")
        checker.released("B")
        checker.released("A")
    assert checker.violations == []
    assert checker.acquisitions == 6
    assert checker.edge_count() == 1  # A -> B, recorded once


def test_inverted_order_is_a_cycle_violation():
    checker = LockOrderChecker()
    checker.acquired("A")
    checker.acquired("B")
    checker.released("B")
    checker.released("A")
    checker.acquired("B")
    checker.acquired("A")  # closes B -> A against the earlier A -> B
    assert len(checker.violations) == 1
    assert "cycle" in checker.violations[0]
    assert "A" in checker.violations[0] and "B" in checker.violations[0]


def test_transitive_cycle_is_detected():
    checker = LockOrderChecker()
    checker.acquired("A"); checker.acquired("B")
    checker.released("B"); checker.released("A")
    checker.acquired("B"); checker.acquired("C")
    checker.released("C"); checker.released("B")
    checker.acquired("C"); checker.acquired("A")  # A -> B -> C -> A
    assert len(checker.violations) == 1


def test_reentrant_acquisition_is_flagged():
    checker = LockOrderChecker()
    checker.acquired("A")
    checker.acquired("A")
    assert len(checker.violations) == 1
    assert "re-entrant" in checker.violations[0]


def test_held_stacks_are_per_thread():
    checker = LockOrderChecker()
    barrier = threading.Barrier(2)

    def hold(name):
        checker.acquired(name)
        barrier.wait()
        checker.released(name)

    threads = [threading.Thread(target=hold, args=(name,))
               for name in ("A", "B")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Both locks were held simultaneously, but by different threads:
    # no nesting edge and no violation.
    assert checker.violations == []
    assert checker.edge_count() == 0


def test_tracked_lock_feeds_the_checker():
    checker = LockOrderChecker()
    outer = TrackedLock("outer", checker)
    inner = TrackedLock("inner", checker)
    with outer:
        with inner:
            pass
    with inner:
        with outer:
            pass
    assert len(checker.violations) == 1
    report = checker.report()
    assert report["acquisitions"] == 4
    assert report["edges"] == 2


def test_make_lock_is_plain_when_off_and_tracked_when_on(checker):
    tracked = make_lock("engine.demo")
    assert isinstance(tracked, TrackedLock)
    assert lock_order_checker() is checker
    disable_lock_order_check()
    plain = make_lock("engine.demo")
    assert isinstance(plain, type(threading.Lock()))
    assert lock_order_checker() is None


def test_filelock_joins_the_acquisition_graph(tmp_path, checker):
    lock = FileLock(tmp_path / "key.lock", timeout=5.0)
    in_process = TrackedLock("engine.state", checker)
    # FileLock is the outermost level: taking it under an in-process
    # lock after the legal order was observed closes a cycle.
    with lock:
        with in_process:
            pass
    with in_process:
        lock.acquire()
        lock.release()
    assert len(checker.violations) == 1
    assert "repro.store.locks.FileLock" in checker.violations[0]


def test_filelock_observer_detaches_on_disable(tmp_path):
    checker = enable_lock_order_check()
    disable_lock_order_check()
    with FileLock(tmp_path / "key.lock", timeout=5.0):
        pass
    assert checker.acquisitions == 0


def test_stall_monitor_flags_a_blocking_callback():
    monitor = LoopStallMonitor(threshold=0.05, interval=0.01)

    async def scenario():
        loop = asyncio.get_running_loop()
        monitor.start(loop)
        await asyncio.sleep(0.05)
        time.sleep(0.2)  # the planted stall: blocks the loop directly
        await asyncio.sleep(0.05)
        monitor.stop()

    asyncio.run(scenario())
    report = monitor.report()
    assert report["stalls"], f"no stall recorded: {report}"
    assert report["max_lag_seconds"] >= 0.1
    assert report["ticks"] > 0


def test_stall_monitor_clean_loop_records_nothing():
    monitor = LoopStallMonitor(threshold=0.25, interval=0.01)

    async def scenario():
        monitor.start(asyncio.get_running_loop())
        for _ in range(5):
            await asyncio.sleep(0.01)
        monitor.stop()

    asyncio.run(scenario())
    report = monitor.report()
    assert report["stalls"] == []
    assert report["ticks"] > 0
