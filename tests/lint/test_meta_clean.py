"""Meta-test: the repo's own source tree passes its own linter.

This is the enforcement point for the invariants documented in
DESIGN.md — if a change introduces an unseeded RNG, a wall-clock read
outside ``repro.obs``, a non-atomic write, or strips ``__slots__``
from a hot-path class, this test fails with the exact file:line.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_repo_source_is_lint_clean():
    findings = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repo source has lint findings:\n{rendered}"


def test_scripts_are_lint_clean():
    scripts = Path(__file__).resolve().parents[2] / "scripts"
    findings = [
        finding
        for finding in lint_paths([scripts])
        # scripts/ sits outside the repro package, so module-scoped
        # exemptions don't apply; hold it to the determinism rules.
        if finding.rule_id.startswith("det-")
    ]
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"scripts have determinism findings:\n{rendered}"
