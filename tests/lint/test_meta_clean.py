"""Meta-test: the repo's own source tree passes its own linter.

This is the enforcement point for the invariants documented in
DESIGN.md — if a change introduces an unseeded RNG, a wall-clock read
outside ``repro.obs``, a non-atomic write, or strips ``__slots__``
from a hot-path class, this test fails with the exact file:line.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_repo_source_is_lint_clean():
    findings = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repo source has lint findings:\n{rendered}"


def test_engine_and_service_are_concurrency_clean():
    """Zero ``conc-*`` findings — and zero suppressions — repo-wide.

    The acceptance bar for the concurrency analyzer: every violation it
    found in the engine, service, and store layers was *fixed*, not
    suppressed, so the whole tree (scripts included) holds at zero.
    """
    scripts = Path(__file__).resolve().parents[2] / "scripts"
    findings = lint_paths([SRC, scripts], select=["conc"])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"concurrency findings:\n{rendered}"

    suppressed = [
        path
        for path in SRC.rglob("*.py")
        if "ignore[conc-" in path.read_text(encoding="utf-8")
    ]
    assert suppressed == [], (
        f"conc-* suppressions are not allowed in src/repro: {suppressed}"
    )


def test_scripts_are_lint_clean():
    scripts = Path(__file__).resolve().parents[2] / "scripts"
    findings = [
        finding
        for finding in lint_paths([scripts])
        # scripts/ sits outside the repro package, so module-scoped
        # exemptions don't apply; hold it to the determinism rules.
        if finding.rule_id.startswith("det-")
    ]
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"scripts have determinism findings:\n{rendered}"
