"""CLI tests: exit codes, text/JSON output, and a JSON golden file."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
DEMO = "tests/lint/fixtures/cli_demo.py"
GOLDEN = FIXTURES / "cli_golden.json"
GOLDEN_SARIF = FIXTURES / "cli_golden.sarif"


def run_lint(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def test_json_output_matches_golden():
    result = run_lint(DEMO, "--format", "json")
    assert result.returncode == 1, result.stderr
    assert json.loads(result.stdout) == json.loads(GOLDEN.read_text())


def test_sarif_output_matches_golden_byte_for_byte():
    # The export carries no timestamps, versions, or absolute paths, so
    # it must reproduce exactly — same guarantee the replay output has.
    result = run_lint(DEMO, "--format", "sarif", "--no-cache")
    assert result.returncode == 1, result.stderr
    assert result.stdout == GOLDEN_SARIF.read_text()


def test_sarif_run_declares_its_rules():
    result = run_lint(DEMO, "--format", "sarif", "--no-cache")
    payload = json.loads(result.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    declared = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    fired = {res["ruleId"] for res in run["results"]}
    assert fired == set(declared) == {"det-float-compare", "det-wall-clock"}
    for res in run["results"]:
        assert declared[res["ruleIndex"]] == res["ruleId"]


def test_cache_tally_lands_on_stderr(tmp_path):
    cold = run_lint(DEMO, "--cache-dir", str(tmp_path / "lint-cache"))
    assert "cache: 0 hits, 1 misses" in cold.stderr
    warm = run_lint(DEMO, "--cache-dir", str(tmp_path / "lint-cache"))
    assert "cache: 1 hits, 0 misses" in warm.stderr
    assert warm.stdout == cold.stdout
    nocache = run_lint(DEMO, "--no-cache")
    assert "cache:" not in nocache.stderr


def test_text_output_reports_counts_and_locations():
    result = run_lint(DEMO)
    assert result.returncode == 1
    lines = result.stdout.splitlines()
    assert lines[-1] == "2 findings"
    assert any(
        line.startswith(f"{DEMO}:6:9: det-wall-clock:") for line in lines
    )
    assert any(f"{DEMO}:8:" in line and "det-float-compare" in line
               for line in lines)


def test_clean_file_exits_zero():
    result = run_lint("tests/lint/fixtures/api_good.py")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean: no findings" in result.stdout


def test_select_narrows_and_changes_exit_code():
    result = run_lint(DEMO, "--select", "io-atomic-write")
    assert result.returncode == 0
    result = run_lint(DEMO, "--select", "det-wall-clock", "--format", "json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "det-wall-clock"


def test_unknown_rule_is_a_usage_error():
    result = run_lint(DEMO, "--select", "no-such-rule")
    assert result.returncode == 2
    assert "no-such-rule" in result.stderr


def test_missing_path_is_a_usage_error():
    result = run_lint("does/not/exist.py")
    assert result.returncode == 2


def test_list_rules_names_every_rule():
    from repro.lint import all_rules

    result = run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in all_rules():
        assert rule_id in result.stdout


def test_check_determinism_subcommand_passes():
    result = run_lint("--check-determinism", "--requests", "200")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "determinism check passed" in result.stdout
