"""Engine-level behaviour: parsing, selection, ordering, file discovery."""

from __future__ import annotations

import pytest

from repro.lint import (
    SYNTAX_ERROR,
    Finding,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.lint.engine import _module_parts, iter_python_files

PATH = "src/repro/core/fake.py"


def test_syntax_error_becomes_finding_not_exception():
    findings = lint_source("def broken(:\n", path=PATH)
    assert len(findings) == 1
    assert findings[0].rule_id == SYNTAX_ERROR
    assert findings[0].line == 1


def test_findings_are_sorted_by_line_then_column():
    source = (
        "import time\n"
        "pair = (open('x', 'w'), time.time())\n"
        "later = time.time()\n"
    )
    findings = lint_source(source, path=PATH)
    assert [(f.line, f.rule_id) for f in findings] == [
        (2, "io-atomic-write"),
        (2, "det-wall-clock"),
        (3, "det-wall-clock"),
    ]
    assert findings[0].col < findings[1].col


def test_select_restricts_to_named_rules():
    source = "import time\npair = (open('x', 'w'), time.time())\n"
    findings = lint_source(source, path=PATH, select=["io-atomic-write"])
    assert [f.rule_id for f in findings] == ["io-atomic-write"]


def test_ignore_drops_named_rules():
    source = "import time\npair = (open('x', 'w'), time.time())\n"
    findings = lint_source(source, path=PATH, ignore=["io-atomic-write"])
    assert [f.rule_id for f in findings] == ["det-wall-clock"]


def test_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="no-such-rule"):
        lint_source("x = 1\n", path=PATH, select=["no-such-rule"])
    with pytest.raises(ValueError, match="no-such-rule"):
        lint_source("x = 1\n", path=PATH, ignore=["no-such-rule"])


def test_all_rules_registry_is_stable():
    rules = all_rules()
    assert set(rules) == {
        "api-mutable-default",
        "api-star-import",
        "conc-await-under-lock",
        "conc-blocking-in-async",
        "conc-fork-after-threads",
        "conc-lock-order",
        "conc-unguarded-shared-state",
        "det-float-compare",
        "det-set-iteration",
        "det-unseeded-random",
        "det-wall-clock",
        "io-atomic-write",
        "io-unbounded-read",
        "perf-slots",
    }


def test_finding_render_format():
    finding = Finding(path="a.py", line=3, col=7, rule_id="det-wall-clock",
                      message="boom")
    assert finding.render() == "a.py:3:7: det-wall-clock: boom"
    assert finding.to_dict() == {
        "path": "a.py", "line": 3, "col": 7,
        "rule": "det-wall-clock", "message": "boom",
    }


def test_module_parts_extraction():
    assert _module_parts("src/repro/dram/controller.py") == (
        "dram", "controller.py")
    assert _module_parts("repro/obs/clock.py") == ("obs", "clock.py")
    # outside the repro package the full path is kept, which never
    # matches a (package, module) scope tuple
    assert _module_parts("scripts/bench_diff.py") == (
        "scripts", "bench_diff.py")


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("")
    (tmp_path / "pkg" / "notes.txt").write_text("not python")
    files = iter_python_files([tmp_path])
    assert [path.name for path in files] == ["mod.py"]


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "does-not-exist"])


def test_lint_paths_reports_real_files(tmp_path):
    bad = tmp_path / "repro" / "core" / "fake.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nstamp = time.time()\n")
    findings = lint_paths([tmp_path])
    assert [f.rule_id for f in findings] == ["det-wall-clock"]
    assert findings[0].path.endswith("fake.py")
