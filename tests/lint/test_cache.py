"""Incremental lint cache: keying, invalidation, corruption handling."""

from __future__ import annotations

import json

from repro.lint import lint_project
from repro.lint.cache import LintCache
from repro.lint.engine import ENGINE_VERSION, rule_fingerprint

SOURCE = "import time\nstamp = time.time()\n"


def write_tree(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return root


def test_cold_then_warm_counts(tmp_path):
    tree = write_tree(tmp_path / "proj", {
        "repro/core/a.py": SOURCE,
        "repro/core/b.py": "x = 1\n",
    })
    cache = LintCache(tmp_path / "cache")
    cold = lint_project([tree], cache=cache)
    assert (cold.cache_hits, cold.cache_misses) == (0, 2)
    warm = lint_project([tree], cache=cache)
    assert (warm.cache_hits, warm.cache_misses) == (2, 0)
    assert [f.to_dict() for f in warm.findings] == \
        [f.to_dict() for f in cold.findings]


def test_content_change_invalidates_only_that_file(tmp_path):
    tree = write_tree(tmp_path / "proj", {
        "repro/core/a.py": SOURCE,
        "repro/core/b.py": "x = 1\n",
    })
    cache = LintCache(tmp_path / "cache")
    lint_project([tree], cache=cache)
    (tree / "repro/core/b.py").write_text("y = 2\n", encoding="utf-8")
    warm = lint_project([tree], cache=cache)
    assert (warm.cache_hits, warm.cache_misses) == (1, 1)


def test_fingerprint_partitions_the_cache(tmp_path):
    tree = write_tree(
        tmp_path / "proj", {"repro/core/a.py": SOURCE})
    cache = LintCache(tmp_path / "cache")
    lint_project([tree], cache=cache)
    # A different rule set (or engine version) yields a different
    # fingerprint directory; the old entries must not be visible there.
    other = LintCache(tmp_path / "cache")
    other._fingerprint = "0" * 16
    report = lint_project([tree], cache=other)
    assert (report.cache_hits, report.cache_misses) == (0, 1)


def test_fingerprint_covers_rules_and_engine_version():
    fingerprint = rule_fingerprint()
    assert str(ENGINE_VERSION) in fingerprint
    assert "conc-lock-order" in fingerprint


def test_corrupt_entry_is_a_miss_and_self_heals(tmp_path):
    tree = write_tree(
        tmp_path / "proj", {"repro/core/a.py": SOURCE})
    cache = LintCache(tmp_path / "cache")
    lint_project([tree], cache=cache)
    entries = list((tmp_path / "cache").rglob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("{ not json", encoding="utf-8")
    healed = lint_project([tree], cache=cache)
    assert (healed.cache_hits, healed.cache_misses) == (0, 1)
    assert json.loads(entries[0].read_text(encoding="utf-8"))
    warm = lint_project([tree], cache=cache)
    assert (warm.cache_hits, warm.cache_misses) == (1, 0)


def test_same_bytes_under_new_path_revalidate(tmp_path):
    tree = write_tree(
        tmp_path / "proj", {"repro/core/a.py": SOURCE})
    cache = LintCache(tmp_path / "cache")
    lint_project([tree], cache=cache)
    # Identical bytes, different path: the content hash collides by
    # design, the path revalidation must force a re-derive.
    moved = write_tree(
        tmp_path / "proj2", {"repro/core/renamed.py": SOURCE})
    report = lint_project([moved], cache=cache)
    assert report.cache_misses == 1
    assert report.findings[0].path.endswith("renamed.py")


def test_findings_identical_with_and_without_cache(tmp_path):
    tree = write_tree(tmp_path / "proj", {
        "repro/core/a.py": SOURCE,
        "repro/core/lockmod.py": (
            "import asyncio\n"
            "import threading\n"
            "_lock = threading.Lock()\n"
            "async def run():\n"
            "    with _lock:\n"
            "        await asyncio.sleep(0.1)\n"
        ),
    })
    cache = LintCache(tmp_path / "cache")
    uncached = lint_project([tree])
    lint_project([tree], cache=cache)
    cached_warm = lint_project([tree], cache=cache)
    assert [f.to_dict() for f in cached_warm.findings] == \
        [f.to_dict() for f in uncached.findings]
    rules = {f.rule_id for f in cached_warm.findings}
    assert "conc-await-under-lock" in rules
