"""Per-rule fixture tests: planted violations are found at the right lines.

Each fixture under ``fixtures/`` is self-describing: its first line
names the virtual path it should be linted as (``# lint-path: ...``,
which drives module-scoped rules like ``perf-slots``), and every
violating line carries an ``# EXPECT: <rule-id>`` marker. ``*_bad.py``
fixtures must produce exactly their markers; ``*_good.py`` fixtures
must be clean.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name: str) -> Tuple[str, str, List[Tuple[int, str]]]:
    text = (FIXTURES / name).read_text()
    lines = text.splitlines()
    assert lines[0].startswith("# lint-path:"), f"{name} missing lint-path header"
    virtual_path = lines[0].split(":", 1)[1].strip()
    expected = []
    for lineno, line in enumerate(lines, start=1):
        if "# EXPECT:" in line:
            expected.append((lineno, line.split("# EXPECT:", 1)[1].strip()))
    return text, virtual_path, expected


def fixture_names(suffix: str) -> List[str]:
    names = sorted(path.name for path in FIXTURES.glob(f"*{suffix}"))
    assert names, f"no fixtures matching *{suffix}"
    return names


@pytest.mark.parametrize("name", fixture_names("_bad.py"))
def test_bad_fixture_findings_match_markers(name):
    text, virtual_path, expected = load_fixture(name)
    assert expected, f"{name} has no EXPECT markers"
    findings = lint_source(text, path=virtual_path)
    actual = [(finding.line, finding.rule_id) for finding in findings]
    assert actual == sorted(expected)
    assert all(finding.path == virtual_path for finding in findings)
    assert all(finding.col >= 1 for finding in findings)


@pytest.mark.parametrize("name", fixture_names("_good.py"))
def test_good_fixture_is_clean(name):
    text, virtual_path, expected = load_fixture(name)
    assert not expected, f"{name} is a good fixture but has EXPECT markers"
    assert lint_source(text, path=virtual_path) == []


def test_every_rule_has_fixture_coverage():
    """Each registered rule appears in at least one bad fixture's markers."""
    from repro.lint import all_rules

    covered = set()
    for name in fixture_names("_bad.py"):
        _, _, expected = load_fixture(name)
        covered.update(rule_id for _, rule_id in expected)
    assert covered == set(all_rules())


def test_wall_clock_allowed_inside_obs():
    source = "import time\nstamp = time.time()\n"
    assert lint_source(source, path="src/repro/obs/clock.py") == []
    findings = lint_source(source, path="src/repro/dram/clock.py")
    assert [f.rule_id for f in findings] == ["det-wall-clock"]


def test_atomic_write_allowed_inside_store_atomic():
    source = "handle = open('x', 'w')\n"
    assert lint_source(source, path="src/repro/store/atomic.py") == []
    findings = lint_source(source, path="src/repro/store/cas.py")
    assert [f.rule_id for f in findings] == ["io-atomic-write"]


def test_slots_rule_only_in_designated_modules():
    source = "class Plain:\n    def __init__(self):\n        self.x = 1\n"
    assert lint_source(source, path="src/repro/eval/experiments.py") == []
    findings = lint_source(source, path="src/repro/cache/cache.py")
    assert [(f.rule_id, f.line) for f in findings] == [("perf-slots", 1)]
