"""Unit tests for the SPEC-like CPU trace models."""

import pytest

from repro.workloads.spec import (
    FIG15_BENCHMARKS,
    SPEC_BENCHMARKS,
    SPEC_PARAMS,
    SpecWorkload,
    spec_workloads,
)


class TestCatalog:
    def test_23_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 23

    def test_fig15_subset(self):
        assert set(FIG15_BENCHMARKS) <= set(SPEC_BENCHMARKS)
        assert len(FIG15_BENCHMARKS) == 6

    def test_params_complete(self):
        for name in SPEC_BENCHMARKS:
            params = SPEC_PARAMS[name]
            assert params.footprint > 0
            assert 0 <= params.write_fraction <= 1
            assert params.phase_count >= 1

    def test_spec_workloads_factory(self):
        workloads = spec_workloads()
        assert [w.name for w in workloads] == SPEC_BENCHMARKS

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            SpecWorkload("notabenchmark")


class TestGeneration:
    def test_exact_count(self):
        trace = SpecWorkload("gobmk").generate(3_000)
        assert len(trace) == 3_000

    def test_word_sized_requests(self):
        trace = SpecWorkload("milc").generate(2_000)
        assert {r.size for r in trace} <= {4, 8}

    def test_deterministic(self):
        a = SpecWorkload("soplex", seed=1).generate(1_000)
        b = SpecWorkload("soplex", seed=1).generate(1_000)
        assert a == b

    def test_sorted(self):
        assert SpecWorkload("astar").generate(2_000).is_sorted()


class TestPersonalities:
    @staticmethod
    def _footprint(name, count=20_000):
        trace = SpecWorkload(name).generate(count)
        return len({r.address // 64 for r in trace}) * 64

    def test_libquantum_streams(self):
        # Streaming benchmark: footprint grows with trace length.
        trace = SpecWorkload("libquantum").generate(20_000)
        blocks = {r.address // 64 for r in trace}
        assert len(blocks) > 2_000

    def test_hmmer_small_footprint(self):
        assert self._footprint("hmmer") < self._footprint("libquantum")

    def test_mcf_jumps_more_than_libquantum(self):
        # Pointer-chasing hops between heap nodes far more often than a
        # streaming benchmark leaves its stride.
        def jump_fraction(name):
            trace = SpecWorkload(name).generate(10_000)
            addresses = [r.address for r in trace]
            jumps = sum(1 for a, b in zip(addresses, addresses[1:]) if abs(b - a) > 64)
            return jumps / (len(addresses) - 1)

        assert jump_fraction("mcf") > jump_fraction("libquantum") * 1.2

    def test_libquantum_stride_regular(self):
        trace = SpecWorkload("libquantum").generate(10_000)
        addresses = [r.address for r in trace]
        strides = [b - a for a, b in zip(addresses, addresses[1:])]
        assert strides.count(16) > len(strides) * 0.5

    def test_write_fractions_differ(self):
        lbm = SpecWorkload("lbm").generate(10_000)
        sjeng = SpecWorkload("sjeng").generate(10_000)
        lbm_fraction = lbm.write_count() / len(lbm)
        sjeng_fraction = sjeng.write_count() / len(sjeng)
        assert lbm_fraction > sjeng_fraction

    def test_phase_behaviour(self):
        # gcc has 8 phases over distinct footprint slices: address regions
        # shift over time.
        trace = SpecWorkload("gcc").generate(30_000)
        first = {r.address // 4096 for r in list(trace)[:5_000] if r.address < 0x7000_0000}
        later = {
            r.address // 4096 for r in list(trace)[14_000:19_000] if r.address < 0x7000_0000
        }
        jaccard = len(first & later) / max(1, len(first | later))
        assert jaccard < 0.6
