"""Unit tests for the Table II workload generators."""

import pytest

from repro.core.request import Operation
from repro.workloads.base import TraceBuilder, align
from repro.workloads.cpu import CryptoWorkload, DeviceDriverWorkload
from repro.workloads.dpu import FrameBufferCompression, MultiLayerDisplay
from repro.workloads.gpu import GraphicsRender, OpenCLStress
from repro.workloads.registry import TABLE_II_WORKLOADS, make_generator
from repro.workloads.vpu import HEVCDecode


class TestTraceBuilder:
    def test_emit_advances_clock(self):
        builder = TraceBuilder()
        builder.emit(0x100, Operation.READ, 64, gap=5)
        builder.emit(0x140, Operation.READ, 64, gap=3)
        trace = builder.build()
        assert [r.timestamp for r in trace] == [5, 8]

    def test_idle_advances_without_emitting(self):
        builder = TraceBuilder()
        builder.emit(0, Operation.READ, 64, gap=1)
        builder.idle(100)
        builder.emit(0, Operation.READ, 64, gap=1)
        trace = builder.build()
        assert trace[1].timestamp - trace[0].timestamp == 101

    def test_rejects_negative(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.emit(0, Operation.READ, 64, gap=-1)
        with pytest.raises(ValueError):
            builder.idle(-1)

    def test_align(self):
        assert align(0x1234, 0x1000) == 0x1000
        assert align(0x1000, 0x1000) == 0x1000
        assert align(100, 8) == 96


@pytest.mark.parametrize("name", TABLE_II_WORKLOADS)
class TestAllGenerators:
    def test_generates_exact_count(self, name):
        trace = make_generator(name).generate(2_000)
        assert len(trace) == 2_000

    def test_sorted_and_valid(self, name):
        trace = make_generator(name).generate(1_000)
        assert trace.is_sorted()
        assert all(r.size > 0 for r in trace)
        assert all(r.address >= 0 for r in trace)

    def test_deterministic(self, name):
        a = make_generator(name, seed=5).generate(500)
        b = make_generator(name, seed=5).generate(500)
        assert a == b

    def test_seed_changes_output(self, name):
        a = make_generator(name, seed=5).generate(500)
        b = make_generator(name, seed=6).generate(500)
        assert a != b


class TestDeviceSignatures:
    def test_hevc_has_idle_gaps(self):
        trace = HEVCDecode(variant=1).generate(10_000)
        gaps = [
            b.timestamp - a.timestamp
            for a, b in zip(trace, list(trace)[1:])
        ]
        assert max(gaps) > 50_000  # CTU-row / frame separation

    def test_hevc_mixed_sizes(self):
        trace = HEVCDecode(variant=1).generate(5_000)
        sizes = {r.size for r in trace}
        assert 64 in sizes and 128 in sizes

    def test_hevc_reads_and_writes(self):
        trace = HEVCDecode(variant=1).generate(5_000)
        assert trace.read_count() > 0 and trace.write_count() > 0

    def test_fbc_linear_mostly_sequential_reads(self):
        trace = FrameBufferCompression(tiled=False).generate(5_000)
        reads = [r for r in trace if r.is_read]
        strides = [
            b.address - a.address for a, b in zip(reads, reads[1:])
        ]
        assert strides.count(64) > len(strides) * 0.5

    def test_fbc_tiled_has_tile_jumps(self):
        trace = FrameBufferCompression(tiled=True).generate(5_000)
        reads = [r for r in trace if r.is_read]
        strides = {b.address - a.address for a, b in zip(reads, reads[1:])}
        assert any(s > 256 for s in strides)  # jumps between tiles

    def test_fbc_write_footprint_narrow(self):
        trace = FrameBufferCompression(tiled=False).generate(10_000)
        writes = [r for r in trace if r.is_write]
        footprint = max(w.end_address for w in writes) - min(w.address for w in writes)
        assert footprint <= 32 * 1024

    def test_multilayer_interleaves_streams(self):
        trace = MultiLayerDisplay(num_layers=3).generate(3_000)
        bases = {r.address >> 24 for r in trace if r.is_read}
        assert len(bases) >= 3

    def test_gpu_large_requests(self):
        trace = GraphicsRender(benchmark="trex").generate(5_000)
        assert any(r.size == 128 for r in trace)

    def test_gpu_dense_bursts(self):
        trace = GraphicsRender(benchmark="trex").generate(5_000)
        deltas = [
            b.timestamp - a.timestamp for a, b in zip(trace, list(trace)[1:])
        ]
        assert sum(1 for d in deltas if d <= 2) > len(deltas) * 0.5

    def test_manhattan_heavier_than_trex(self):
        trex = GraphicsRender(benchmark="trex").generate(5_000)
        manhattan = GraphicsRender(benchmark="manhattan").generate(5_000)
        # Manhattan samples more textures per tile -> more distinct texture
        # neighbourhoods touched in the same number of requests.
        def texture_regions(trace):
            return len({r.address >> 11 for r in trace if r.address >> 28 == 0xC})
        assert texture_regions(manhattan) >= texture_regions(trex) * 0.8

    def test_opencl_grid_strides(self):
        trace = OpenCLStress(variant=1).generate(4_000)
        reads = [r for r in trace if r.is_read]
        strides = [b.address - a.address for a, b in zip(reads, reads[1:])]
        assert any(s >= 1024 for s in strides)

    def test_crypto_table_lookups_bounded(self):
        workload = CryptoWorkload(variant=1, table_bytes=16_384)
        trace = workload.generate(5_000)
        table_reads = [r for r in trace if 0x1800_0000 <= r.address < 0x1A00_0000]
        assert table_reads
        span = max(r.address for r in table_reads) - min(r.address for r in table_reads)
        assert span <= 16_384

    def test_device_driver_cadence(self):
        trace = DeviceDriverWorkload(companion="vpu").generate(3_000)
        gaps = [b.timestamp - a.timestamp for a, b in zip(trace, list(trace)[1:])]
        assert max(gaps) >= 1_600_000

    def test_device_driver_rejects_unknown(self):
        with pytest.raises(ValueError):
            DeviceDriverWorkload(companion="npu")
