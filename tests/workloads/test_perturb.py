"""Unit tests for trace perturbation utilities and model robustness."""

import pytest

from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize
from repro.core.trace import Trace
from repro.workloads.perturb import (
    downscale,
    drop_requests,
    interleave,
    scale_time,
    shift_addresses,
    truncate_time,
)

from ..conftest import req


class TestShiftAddresses:
    def test_shift(self, linear_trace):
        shifted = shift_addresses(linear_trace, 0x1000)
        assert shifted[0].address == linear_trace[0].address + 0x1000
        assert len(shifted) == len(linear_trace)

    def test_negative_rejected(self, linear_trace):
        with pytest.raises(ValueError):
            shift_addresses(linear_trace, -0x10000000)

    def test_timestamps_untouched(self, linear_trace):
        shifted = shift_addresses(linear_trace, 64)
        assert [r.timestamp for r in shifted] == [r.timestamp for r in linear_trace]


class TestScaleTime:
    def test_doubling(self, linear_trace):
        scaled = scale_time(linear_trace, 2)
        assert scaled[3].timestamp == linear_trace[3].timestamp * 2

    def test_rational(self, linear_trace):
        scaled = scale_time(linear_trace, 1, 2)
        assert scaled[4].timestamp == linear_trace[4].timestamp // 2
        assert scaled.is_sorted()

    def test_rejects_nonpositive(self, linear_trace):
        with pytest.raises(ValueError):
            scale_time(linear_trace, 0)
        with pytest.raises(ValueError):
            scale_time(linear_trace, 1, 0)


class TestDropAndTruncate:
    def test_drop_fraction(self, bursty_trace):
        dropped = drop_requests(bursty_trace, 0.5, seed=1)
        assert 0.3 * len(bursty_trace) < len(dropped) < 0.7 * len(bursty_trace)

    def test_drop_zero_identity(self, bursty_trace):
        assert drop_requests(bursty_trace, 0.0) == Trace(list(bursty_trace))

    def test_drop_validates(self, bursty_trace):
        with pytest.raises(ValueError):
            drop_requests(bursty_trace, 1.0)

    def test_truncate(self, bursty_trace):
        truncated = truncate_time(bursty_trace, 100)
        assert len(truncated) == 20  # exactly the first burst
        assert truncate_time(Trace(), 10) == Trace()

    def test_downscale(self, bursty_trace):
        assert len(downscale(bursty_trace, 10)) == 10
        assert downscale(bursty_trace, 10_000) == Trace(list(bursty_trace))


class TestInterleave:
    def test_merged_and_sorted(self, linear_trace):
        other = Trace([req(i * 10 + 5, 0x90000 + i * 64) for i in range(10)])
        merged = interleave(linear_trace, other)
        assert len(merged) == len(linear_trace) + 10
        assert merged.is_sorted()

    def test_offset_applied(self, linear_trace):
        other = Trace([req(0, 0x90000)])
        merged = interleave(linear_trace, other, offset_b=1_000_000)
        assert merged[-1].timestamp == 1_000_000


class TestModelRobustness:
    """Mocktails accuracy should be invariant to benign transforms."""

    def test_address_shift_equivariance(self, bursty_trace):
        profile_plain = build_profile(bursty_trace)
        shifted = shift_addresses(bursty_trace, 0x100000)
        profile_shifted = build_profile(shifted)
        synth_plain = synthesize(profile_plain, seed=3)
        synth_shifted = synthesize(profile_shifted, seed=3)
        # Same structure, just translated.
        assert len(synth_plain) == len(synth_shifted)
        deltas = {
            b.address - a.address
            for a, b in zip(synth_plain, synth_shifted)
        }
        assert deltas == {0x100000}

    def test_time_scale_preserves_counts(self, bursty_trace):
        scaled = scale_time(bursty_trace, 3)
        profile = build_profile(scaled)
        synthetic = synthesize(profile, seed=1)
        assert len(synthetic) == len(bursty_trace)
        assert synthetic.read_count() == bursty_trace.read_count()
