"""Tests for workload characterization."""

import pytest

from repro.core.trace import Trace
from repro.workloads.characterize import characterize, format_character
from repro.workloads.registry import workload_trace

from ..conftest import req


class TestCharacterize:
    def test_empty_trace(self):
        character = characterize(Trace())
        assert character.requests == 0
        assert character.footprint_bytes == 0

    def test_basic_counts(self, mixed_trace):
        character = characterize(mixed_trace)
        assert character.requests == len(mixed_trace)
        assert character.read_fraction == pytest.approx(0.5)
        assert character.total_bytes == mixed_trace.total_bytes()

    def test_footprint_block_granular(self):
        trace = Trace([req(0, 0, "R", 4), req(1, 8, "R", 4), req(2, 64, "R", 4)])
        assert characterize(trace).footprint_bytes == 128  # two 64B blocks

    def test_constant_stride_zero_entropy(self, linear_trace):
        character = characterize(linear_trace)
        assert character.stride_entropy_bits == 0.0
        assert character.dominant_stride == 64
        assert character.dominant_stride_fraction == 1.0

    def test_irregular_stride_positive_entropy(self, mixed_trace):
        assert characterize(mixed_trace).stride_entropy_bits > 0.0

    def test_bursty_trace_high_burstiness(self, bursty_trace, linear_trace):
        bursty = characterize(bursty_trace).burstiness
        steady = characterize(linear_trace).burstiness
        assert bursty > steady
        assert bursty > 10  # long idle gaps between dense bursts

    def test_size_histogram(self, mixed_trace):
        histogram = characterize(mixed_trace).size_histogram
        assert histogram == {64: 24, 32: 24}

    def test_request_rate(self):
        trace = Trace([req(i * 100, i * 64) for i in range(11)])
        character = characterize(trace)
        assert character.mean_request_rate == pytest.approx(11.0)

    def test_device_fingerprints_differ(self):
        hevc = characterize(workload_trace("hevc1", 3_000))
        fbc = characterize(workload_trace("fbc-linear1", 3_000))
        # Display scan-out is more stride-regular than video decode.
        assert fbc.dominant_stride_fraction > hevc.dominant_stride_fraction

    def test_format_renders(self, mixed_trace):
        text = format_character(characterize(mixed_trace))
        assert "requests:" in text
        assert "stride entropy:" in text


class TestCLIIntegration:
    def test_characterize_command(self, tmp_path, capsys):
        from repro.tools import trace as trace_tool

        path = tmp_path / "t.mtr.gz"
        trace_tool.main(["generate", "fbc-linear1", str(path), "--requests", "1000"])
        capsys.readouterr()
        assert trace_tool.main(["characterize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "requests:          1,000" in out
        assert "burstiness" in out


class TestBackendParity:
    """characterize() accepts either backend and is bit-identical on both."""

    @pytest.mark.parametrize("name", ["hevc1", "manhattan", "fbc-tiled1", "mcf"])
    def test_columnar_matches_trace(self, name):
        from repro.core.columnar import ColumnarTrace

        trace = workload_trace(name, 2_000)
        from_rows = characterize(trace)
        from_columns = characterize(ColumnarTrace.from_trace(trace))
        # Every float derives from the same exact-integer sufficient
        # statistics, so the equality here is bitwise, not approximate.
        assert from_columns == from_rows

    def test_columnar_slice_accepted(self):
        from repro.core.columnar import ColumnarTrace

        trace = workload_trace("hevc1", 1_000)
        columns = ColumnarTrace.from_trace(trace)
        window = characterize(columns[100:400])
        assert window.requests == 300

    def test_columnar_duration_property(self):
        # Regression: ColumnarTrace.duration mirrors Trace.duration,
        # including the empty-trace 0 convention.
        from repro.core.columnar import ColumnarTrace

        trace = workload_trace("hevc1", 500)
        columns = ColumnarTrace.from_trace(trace)
        assert columns.duration == trace.duration
        assert ColumnarTrace.from_trace(Trace()).duration == 0


class TestZeroDurationConvention:
    def test_rate_zero_when_single_timestamp(self):
        trace = Trace([req(42, 64 * i) for i in range(5)])
        character = characterize(trace)
        assert character.duration_cycles == 0
        assert character.mean_request_rate == 0.0

    def test_format_renders_not_applicable(self):
        trace = Trace([req(42, 64 * i) for i in range(5)])
        text = format_character(characterize(trace))
        assert "n/a (zero-cycle duration)" in text
        assert "duration:          0 cycles" in text

    def test_single_request_trace(self):
        character = characterize(Trace([req(7, 0x1000)]))
        assert character.mean_request_rate == 0.0
        assert character.burstiness == 0.0
