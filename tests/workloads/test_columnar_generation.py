"""Columnar/chunked workload generation (TraceBuilder columns, blocks).

``generate_columnar`` must emit exactly the requests ``generate`` does —
the generators' RNG streams are untouched, only the output container
changes — and ``generate_blocks`` must chunk that stream losslessly.
"""

import pytest

from repro.core.columnar import ColumnarTrace
from repro.core.request import Operation
from repro.core.trace import Trace
from repro.workloads import available_workloads, make_generator
from repro.workloads.base import TraceBuilder

REQUESTS = 1500

SAMPLED = ["hevc1", "crypto1", "manhattan", "cpu-d", "mcf"]


@pytest.mark.parametrize("name", SAMPLED)
def test_generate_columnar_matches_generate(name):
    objects = make_generator(name, seed=7).generate(REQUESTS)
    columns = make_generator(name, seed=7).generate_columnar(REQUESTS)
    assert isinstance(columns, ColumnarTrace)
    assert columns.to_trace() == objects


@pytest.mark.parametrize("name", ["hevc1", "mcf"])
def test_generate_blocks_concat_identity(name):
    columns = make_generator(name, seed=3).generate_columnar(REQUESTS)
    blocks = list(make_generator(name, seed=3).generate_blocks(REQUESTS, block_requests=256))
    assert all(len(block) <= 256 for block in blocks)
    assert ColumnarTrace.concat(blocks) == columns


def test_generate_columnar_without_numpy(monkeypatch):
    objects = make_generator("hevc1", seed=5).generate(REQUESTS)
    monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
    columns = make_generator("hevc1", seed=5).generate_columnar(REQUESTS)
    assert columns.to_trace() == objects


def test_every_registered_workload_supports_columnar():
    for name in available_workloads():
        generator = make_generator(name, seed=1)
        objects = generator.generate(300)
        columns = make_generator(name, seed=1).generate_columnar(300)
        assert columns.to_trace() == objects, name


class TestTraceBuilderColumns:
    def test_build_returns_trace_by_default(self):
        builder = TraceBuilder()
        builder.emit(0x100, Operation.READ, 64)
        result = builder.build()
        assert isinstance(result, Trace)

    def test_build_columnar(self):
        builder = TraceBuilder()
        builder.emit(0x100, Operation.READ, 64)
        builder.emit(0x140, Operation.WRITE, 32, gap=5)
        columns = builder.build_columnar()
        assert isinstance(columns, ColumnarTrace)
        assert columns.to_lists() == {
            "timestamps": [1, 6],
            "addresses": [0x100, 0x140],
            "sizes": [64, 32],
            "ops": [0, 1],
        }

    def test_columnar_output_scope(self):
        builder = TraceBuilder()
        builder.emit(0, Operation.READ, 64)
        with TraceBuilder.columnar_output():
            assert isinstance(builder.build(), ColumnarTrace)
        assert isinstance(builder.build(), Trace)

    def test_emit_validation_matches_request_errors(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError, match="gap must be non-negative"):
            builder.emit(0, Operation.READ, 64, gap=-1)
        with pytest.raises(ValueError, match="size must be positive"):
            builder.emit(0, Operation.READ, 0)
        with pytest.raises(ValueError, match="address must be non-negative"):
            builder.emit(-4, Operation.READ, 64)

    def test_emit_many_matches_emit(self):
        one_by_one = TraceBuilder()
        for i in range(8):
            one_by_one.emit(i * 64, Operation.WRITE if i % 2 else Operation.READ, 16, gap=i)
        bulk = TraceBuilder()
        bulk.emit_many(
            [i * 64 for i in range(8)],
            [Operation.WRITE if i % 2 else Operation.READ for i in range(8)],
            [16] * 8,
            gaps=list(range(8)),
        )
        assert bulk.build_columnar() == one_by_one.build_columnar()

    def test_emit_many_broadcasts_scalars(self):
        builder = TraceBuilder()
        builder.emit_many([0, 64, 128], Operation.READ, [4, 4, 4])
        columns = builder.build_columnar()
        assert columns.to_lists()["ops"] == [0, 0, 0]
        assert columns.to_lists()["timestamps"] == [1, 2, 3]

    def test_emit_many_length_mismatch(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError, match="equal lengths"):
            builder.emit_many([0, 64], Operation.READ, [4])
