"""Unit tests for the workload registry."""

import pytest

from repro.workloads.registry import (
    TABLE_II_DEVICES,
    TABLE_II_WORKLOADS,
    available_workloads,
    device_of,
    make_generator,
    workload_trace,
)
from repro.workloads.spec import SPEC_BENCHMARKS


class TestTableII:
    def test_18_traces(self):
        # Table II: 2 crypto + 3 cpu-x + 5 DPU + 5 GPU + 3 HEVC = 18.
        assert len(TABLE_II_WORKLOADS) == 18

    def test_device_groups(self):
        assert set(TABLE_II_DEVICES) == {"CPU", "DPU", "GPU", "VPU"}
        assert len(TABLE_II_DEVICES["CPU"]) == 5
        assert len(TABLE_II_DEVICES["DPU"]) == 5
        assert len(TABLE_II_DEVICES["GPU"]) == 5
        assert len(TABLE_II_DEVICES["VPU"]) == 3

    def test_device_of(self):
        assert device_of("hevc1") == "VPU"
        assert device_of("trex2") == "GPU"
        assert device_of("fbc-linear1") == "DPU"
        assert device_of("crypto1") == "CPU"
        assert device_of("gobmk") is None

    def test_generator_name_matches_registry(self):
        for name in TABLE_II_WORKLOADS:
            assert make_generator(name).name == name


class TestRegistry:
    def test_available_includes_everything(self):
        names = available_workloads()
        assert set(TABLE_II_WORKLOADS) <= set(names)
        assert set(SPEC_BENCHMARKS) <= set(names)
        assert len(names) == len(TABLE_II_WORKLOADS) + len(SPEC_BENCHMARKS)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            make_generator("quake3")

    def test_workload_trace_shortcut(self):
        trace = workload_trace("crypto1", num_requests=500)
        assert len(trace) == 500

    def test_multi_trace_workloads_distinct(self):
        a = workload_trace("crypto1", 1_000)
        b = workload_trace("crypto2", 1_000)
        assert a != b
        assert workload_trace("trex1", 1_000) != workload_trace("trex2", 1_000)
