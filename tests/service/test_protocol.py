"""Wire protocol framing: encode/decode round trips and rejection."""

import pytest

from repro.service import protocol


def test_encode_decode_round_trip():
    message = {"op": "submit", "id": 3, "kind": "profile", "params": {"name": "x"}}
    line = protocol.encode_message(message)
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1
    assert protocol.decode_line(line) == message


def test_encoding_is_canonical():
    # Key order does not leak into the wire bytes.
    a = protocol.encode_message({"op": "ping", "id": 1})
    b = protocol.encode_message({"id": 1, "op": "ping"})
    assert a == b


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2, 3]\n", b'"just a string"\n', b"42\n"],
)
def test_decode_rejects_non_objects(line):
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(line)


def test_decode_rejects_oversized_lines():
    blob = b'{"op": "submit", "pad": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
    with pytest.raises(protocol.ProtocolError, match="exceeds"):
        protocol.decode_line(blob)


def test_error_response_shape():
    response = protocol.error_response(protocol.QUEUE_FULL, "busy", 9, job_id=4)
    assert response == {
        "type": "error",
        "code": "queue-full",
        "message": "busy",
        "id": 9,
        "job_id": 4,
    }
    minimal = protocol.error_response(protocol.BAD_REQUEST, "nope")
    assert "id" not in minimal and "job_id" not in minimal


def test_error_codes_are_the_whole_vocabulary():
    assert set(protocol.ERROR_CODES) == {
        "bad-request", "job-failed", "protocol-error",
        "queue-full", "quota-exceeded", "shutting-down",
    }


def test_result_and_ack_and_event_builders():
    ack = protocol.ack_response(1, 10, "queued", deduped=True)
    assert ack["type"] == "ack" and ack["deduped"] is True
    event = protocol.event_response(1, 10, "running")
    assert event == {"type": "event", "id": 1, "job_id": 10, "state": "running"}
    result = protocol.result_response(1, 10, "memoized", {"k": 1})
    assert result["state"] == "done"
    assert result["source"] == "memoized"
    assert result["payload"] == {"k": 1}
