"""End-to-end service tests: a real server on a real socket.

The server's event loop runs in a background thread; the tests drive it
with the blocking :class:`ServiceClient` (plus raw sockets for the
protocol-abuse cases) exactly like an external process would.
Timing-sensitive scenarios (quota, queue-full, dedupe) use gated job
kinds that block on an Event the test controls, so "the worker is busy"
is a fact, not a hope.
"""

import asyncio
import contextlib
import threading
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.engine import Scheduler, register_job_type
from repro.service import (
    JobServer,
    ServiceClient,
    ServiceError,
    protocol,
    storm,
)

_GATES: Dict[str, threading.Event] = {}


@dataclass(frozen=True)
class SlowWireJob:
    gate: str
    value: int = 0


@dataclass(frozen=True)
class BoomWireJob:
    reason: str


register_job_type(
    SlowWireJob,
    executor=lambda job: (_GATES[job.gate].wait(10), job.value)[1],
    wire_kind="test-slow",
    wire_summary=lambda job, payload: {"value": payload},
)
register_job_type(
    BoomWireJob,
    executor=lambda job: (_ for _ in ()).throw(ValueError(job.reason)),
    wire_kind="test-boom",
)


def _gate(name: str) -> threading.Event:
    event = _GATES[name] = threading.Event()
    return event


@contextlib.contextmanager
def running_server(
    workers: int = 2, queue_limit: int = 16, client_quota: int = 8, **server_kw
):
    """A live server (own loop thread) over a thread-backend scheduler."""
    scheduler = Scheduler(workers=workers, backend="thread", queue_limit=queue_limit)
    server = JobServer(scheduler, port=0, client_quota=client_quota, **server_kw)
    ready = threading.Event()
    state: Dict[str, object] = {}

    async def main() -> None:
        await server.start()
        state["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.run()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    try:
        yield server
    finally:
        state["loop"].call_soon_threadsafe(server.request_stop)
        thread.join(10)
        assert not thread.is_alive(), "server loop did not shut down"
        scheduler.close(cancel_pending=True)


REQUESTS = 400
SCALE = {"name": "trex1", "num_requests": REQUESTS}


# ---------------------------------------------------------------------------
# Basic request/response
# ---------------------------------------------------------------------------


def test_ping_and_stats():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            assert client.ping()
            stats = client.stats()
            assert stats["server"]["client_quota"] == 8
            assert stats["engine"]["backend"] == "thread"
            assert stats["engine"]["tally"]["submitted"] == 0


def test_submit_profile_returns_result():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            response = client.submit("profile", SCALE)
            assert response["state"] == "done"
            assert response["source"] == "executed"
            payload = response["payload"]
            assert payload["name"] == "trex1"
            assert payload["profiled_requests"] == REQUESTS
            assert len(payload["sha256"]) == 64


def test_submit_streams_progress_events():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            states = []
            response = client.submit(
                "synthesize", SCALE, events=True,
                on_event=lambda event: states.append(event["state"]),
            )
            assert response["state"] == "done"
            assert "running" in states


def test_one_connection_interleaves_submissions():
    gate = _gate("interleave")
    try:
        with running_server() as server:
            with ServiceClient(port=server.port) as client:
                # Submit a slow job, then a fast one, without waiting.
                client.send({"op": "submit", "id": 1, "kind": "test-slow",
                             "params": {"gate": "interleave", "value": 11}})
                client.send({"op": "submit", "id": 2, "kind": "test-slow",
                             "params": {"gate": "interleave", "value": 22}})
                acks = [client.read_response(), client.read_response()]
                assert [ack["type"] for ack in acks] == ["ack", "ack"]
                gate.set()
                results = {}
                while len(results) < 2:
                    response = client.read_response()
                    if response["type"] == "result":
                        results[response["id"]] = response["payload"]["value"]
                assert results == {1: 11, 2: 22}
    finally:
        gate.set()


# ---------------------------------------------------------------------------
# Rejections: every admission failure is a structured error
# ---------------------------------------------------------------------------


def test_bad_requests_are_rejected_not_fatal():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            for kind, params in [
                ("no-such-kind", {}),
                ("profile", {"name": "no-such-workload"}),
                ("profile", {"name": "trex1", "bogus": 1}),
                ("profile", {"name": "trex1", "num_requests": -1}),
            ]:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(kind, params)
                assert excinfo.value.code == protocol.BAD_REQUEST
            # The connection survived all four rejections.
            assert client.ping()
            assert client.stats()["server"]["tally"]["rejected_bad_request"] == 4


def test_client_quota_rejects_excess_outstanding():
    gate = _gate("quota")
    try:
        with running_server(client_quota=1) as server:
            with ServiceClient(port=server.port) as client:
                client.send({"op": "submit", "id": 1, "kind": "test-slow",
                             "params": {"gate": "quota"}})
                assert client.read_response()["type"] == "ack"
                client.send({"op": "submit", "id": 2, "kind": "test-slow",
                             "params": {"gate": "quota", "value": 1}})
                rejection = client.read_response()
                assert rejection["type"] == "error"
                assert rejection["code"] == protocol.QUOTA_EXCEEDED
                assert rejection["id"] == 2
                gate.set()
                result = client.read_response()
                assert result["type"] == "result" and result["id"] == 1
                # Quota freed: the same submission is now admitted.
                assert client.submit(
                    "test-slow", {"gate": "quota", "value": 1}
                )["payload"]["value"] == 1
    finally:
        gate.set()


def test_engine_backpressure_surfaces_as_queue_full():
    gate = _gate("backpressure")
    try:
        with running_server(workers=1, queue_limit=1) as server:
            with ServiceClient(port=server.port) as client:
                client.send({"op": "submit", "id": 1, "kind": "test-slow",
                             "params": {"gate": "backpressure"}, "events": True})
                assert client.read_response()["type"] == "ack"
                # Wait for the single worker to pick job 1 up, so job 2
                # deterministically occupies the one queue slot.
                while True:
                    response = client.read_response()
                    if response["type"] == "event" and response["state"] == "running":
                        break
                client.send({"op": "submit", "id": 2, "kind": "test-slow",
                             "params": {"gate": "backpressure", "value": 2}})
                assert client.read_response()["type"] == "ack"
                client.send({"op": "submit", "id": 3, "kind": "test-slow",
                             "params": {"gate": "backpressure", "value": 3}})
                rejection = client.read_response()
                assert rejection["type"] == "error"
                assert rejection["code"] == protocol.QUEUE_FULL
                gate.set()
                results = set()
                while len(results) < 2:
                    response = client.read_response()
                    if response["type"] == "result":
                        results.add(response["id"])
                assert results == {1, 2}
    finally:
        gate.set()


def test_failing_job_reports_job_failed_never_hangs():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit("test-boom", {"reason": "exploded"})
            assert excinfo.value.code == protocol.JOB_FAILED
            assert "exploded" in str(excinfo.value)
            assert client.ping()  # connection survives the job failure


def test_protocol_junk_gets_structured_error():
    with running_server() as server:
        with ServiceClient(port=server.port) as client:
            client._sock.sendall(b"this is not json\n")
            response = client.read_response()
            assert response["type"] == "error"
            assert response["code"] == protocol.PROTOCOL_ERROR
            client._sock.sendall(b'{"op": "dance"}\n')
            response = client.read_response()
            assert response["code"] == protocol.PROTOCOL_ERROR
            assert "unknown op" in response["message"]
            assert client.ping()  # still in sync


# ---------------------------------------------------------------------------
# Single-flight across connections + storm helper
# ---------------------------------------------------------------------------


def test_duplicate_jobs_across_connections_compute_once():
    gate = _gate("crossconn")
    try:
        with running_server() as server:
            with ServiceClient(port=server.port) as first:
                with ServiceClient(port=server.port) as second:
                    first.send({"op": "submit", "id": 1, "kind": "test-slow",
                                "params": {"gate": "crossconn", "value": 5}})
                    ack_one = first.read_response()
                    assert ack_one["deduped"] is False
                    second.send({"op": "submit", "id": 1, "kind": "test-slow",
                                 "params": {"gate": "crossconn", "value": 5}})
                    ack_two = second.read_response()
                    assert ack_two["deduped"] is True
                    assert ack_two["job_id"] == ack_one["job_id"]
                    gate.set()
                    assert first.read_response()["payload"]["value"] == 5
                    assert second.read_response()["payload"]["value"] == 5
                    tally = first.stats()["engine"]["tally"]
                    assert tally["executed"] == 1
                    assert tally["deduped"] == 1
    finally:
        gate.set()


def test_storm_helper_drives_many_clients(tmp_path):
    from repro import store

    store.configure(str(tmp_path / "cache"))
    try:
        with running_server(queue_limit=64) as server:
            submissions = [[("profile", SCALE)] for _ in range(20)]
            responses = storm("127.0.0.1", server.port, submissions, concurrency=8)
            assert len(responses) == 20
            assert all(r[0]["type"] == "result" for r in responses)
            digests = {r[0]["payload"]["sha256"] for r in responses}
            assert len(digests) == 1
            with ServiceClient(port=server.port) as client:
                tally = client.stats()["engine"]["tally"]
                # 20 identical jobs, one execution: late duplicates join
                # in flight or read the payload back from the store.
                assert tally["executed"] == 1
                assert tally["submitted"] + tally["deduped"] == 20
                assert tally["memoized"] == tally["submitted"] - 1
    finally:
        store.deactivate()


# ---------------------------------------------------------------------------
# Unix socket
# ---------------------------------------------------------------------------


def test_unix_socket_endpoint(tmp_path):
    path = str(tmp_path / "repro.sock")
    scheduler = Scheduler(workers=1, backend="thread")
    server = JobServer(scheduler, port=None, unix_path=path)
    ready = threading.Event()
    state: Dict[str, object] = {}

    async def main() -> None:
        await server.start()
        state["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.run()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    assert ready.wait(10)
    try:
        assert server.endpoints() == [f"unix:{path}"]
        with ServiceClient(unix_path=path) as client:
            assert client.ping()
            response = client.submit("profile", SCALE)
            assert response["payload"]["profiled_requests"] == REQUESTS
    finally:
        state["loop"].call_soon_threadsafe(server.request_stop)
        thread.join(10)
        scheduler.close(cancel_pending=True)
    import os

    assert not os.path.exists(path)  # socket file cleaned up on close
