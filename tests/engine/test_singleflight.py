"""Concurrent single-flight: identical jobs compute exactly once.

Three layers of the guarantee:

* in-process — N threads racing ``submit`` on the same job join one
  handle and one computation (asserted via obs counters);
* cross-run — a second scheduler over the same store serves the payload
  memoized, never recomputing (asserted via the memo hit/miss tally);
* crash containment — a worker SIGKILLed mid-compute breaks the process
  pool; the scheduler rebuilds it, retries once, and the job still
  completes (or lands FAILED when the job is a deterministic killer).
"""

import os
import signal
import threading
from dataclasses import dataclass

import pytest

from repro import obs, store
from repro.engine import (
    DONE,
    FAILED,
    JobFailed,
    ProfileJob,
    Scheduler,
    register_job_type,
)

REQUESTS = 400
THREADS = 12


@dataclass(frozen=True)
class KillOnceJob:
    """SIGKILLs its worker process unless its sentinel file exists."""

    sentinel: str


@dataclass(frozen=True)
class KillAlwaysJob:
    """SIGKILLs its worker process every single time."""

    token: str


def _kill_once(job: KillOnceJob) -> str:
    if not os.path.exists(job.sentinel):
        with open(job.sentinel, "x"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _kill_always(job: KillAlwaysJob) -> str:
    os.kill(os.getpid(), signal.SIGKILL)
    return "unreachable"  # pragma: no cover


register_job_type(KillOnceJob, executor=_kill_once)
register_job_type(KillAlwaysJob, executor=_kill_always)


@pytest.fixture
def memo(tmp_path):
    memo = store.configure(str(tmp_path / "cache"))
    yield memo
    store.deactivate()


# ---------------------------------------------------------------------------
# N concurrent submitters, one computation
# ---------------------------------------------------------------------------


def test_thread_storm_computes_identical_job_exactly_once(memo):
    obs.enable()
    try:
        with Scheduler(workers=4, backend="thread", queue_limit=32) as sched:
            job = ProfileJob("trex1", REQUESTS)
            barrier = threading.Barrier(THREADS)
            handles = [None] * THREADS

            def submitter(slot: int) -> None:
                barrier.wait()  # maximize submit-time contention
                handles[slot] = sched.submit(job)

            threads = [
                threading.Thread(target=submitter, args=(slot,))
                for slot in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            payloads = {id(handle.result(timeout=60)) for handle in handles}
            assert len(payloads) == 1  # every submitter got the same object
            assert len({handle.job_id for handle in handles}) == 1

            counters = obs.active().snapshot()["counters"]
            assert counters["engine.jobs.submitted"] == 1
            assert counters["engine.jobs.deduped"] == THREADS - 1
            assert counters["engine.jobs.executed"] == 1
            assert sched.tally["executed"] == 1
            assert sched.tally["deduped"] == THREADS - 1
        # Exactly one store round trip: the one computation missed, then
        # stored; nothing ever needed a second fetch.
        assert memo.misses == 1
        assert memo.hits == 0
    finally:
        obs.disable()


def test_second_scheduler_serves_from_store_not_recompute(memo):
    job = ProfileJob("hevc1", REQUESTS)
    with Scheduler(workers=2, backend="thread") as first:
        payload = first.submit(job).result(timeout=60)
        assert first.tally["executed"] == 1
    with Scheduler(workers=2, backend="thread") as second:
        handle = second.submit(job)
        assert handle.result(timeout=60) == payload
        assert handle.source == "memoized"
        assert second.tally["executed"] == 0
        assert second.tally["memoized"] == 1
    assert memo.hits == 1
    assert memo.misses == 1


def test_concurrent_schedulers_single_flight_through_lockfiles(memo):
    """Two engines over one store: the per-key lockfile protocol makes
    them compute at most once between them."""
    job = ProfileJob("fbc-linear1", REQUESTS)
    with Scheduler(workers=2, backend="thread") as a:
        with Scheduler(workers=2, backend="thread") as b:
            handle_a = a.submit(job)
            handle_b = b.submit(job)
            payload_a = handle_a.result(timeout=60)
            payload_b = handle_b.result(timeout=60)
    assert payload_a == payload_b
    assert a.tally["executed"] + b.tally["executed"] == 1
    assert a.tally["memoized"] + b.tally["memoized"] == 1
    # No lockfiles left behind either way.
    lock_dir = os.path.join(memo.root, "locks")
    assert not os.path.isdir(lock_dir) or os.listdir(lock_dir) == []


# ---------------------------------------------------------------------------
# Kill-mid-compute: crash containment + retry
# ---------------------------------------------------------------------------


def test_killed_worker_retries_once_and_succeeds(tmp_path):
    obs.enable()
    try:
        with Scheduler(workers=1, backend="process", queue_limit=8) as sched:
            job = KillOnceJob(str(tmp_path / "first-attempt-done"))
            handle = sched.submit(job)
            assert handle.result(timeout=60) == "survived"
            assert handle.state == DONE
            assert handle.attempts == 2
            assert sched.tally["retried"] == 1
            assert sched.stats()["pool_generation"] >= 1
            counters = obs.active().snapshot()["counters"]
            assert counters["engine.jobs.retried"] == 1
            assert counters["engine.jobs.executed"] == 1
    finally:
        obs.disable()


def test_deterministic_killer_lands_failed_not_hung(tmp_path):
    with Scheduler(workers=1, backend="process", queue_limit=8, retries=1) as sched:
        handle = sched.submit(KillAlwaysJob("die"))
        assert handle.wait(timeout=60)  # terminal, never hangs
        assert handle.state == FAILED
        assert handle.attempts == 2  # original + one retry
        with pytest.raises(JobFailed, match="crashed"):
            handle.result()
        assert sched.tally["failed"] == 1


def test_killed_worker_retry_still_single_flights_duplicates(tmp_path):
    with Scheduler(workers=1, backend="process", queue_limit=8) as sched:
        job = KillOnceJob(str(tmp_path / "dup-sentinel"))
        first = sched.submit(job)
        duplicate = sched.submit(job)
        assert duplicate is first
        assert first.result(timeout=60) == "survived"
        assert sched.tally["deduped"] == 1
        assert sched.tally["executed"] == 1
