"""Pool construction: start-method selection and the fork-safety rule."""

from __future__ import annotations

import multiprocessing

from repro.engine.pool import default_processes, make_pool


def _method(pool):
    return pool._mp_context.get_start_method()


def test_default_prefers_fork_where_available():
    methods = multiprocessing.get_all_start_methods()
    pool = make_pool(1)
    try:
        expected = "fork" if "fork" in methods else "spawn"
        assert _method(pool) == expected
    finally:
        pool.shutdown(wait=False)


def test_requested_method_is_honoured():
    for requested in multiprocessing.get_all_start_methods():
        pool = make_pool(1, start_method=requested)
        try:
            assert _method(pool) == requested
        finally:
            pool.shutdown(wait=False)


def test_unavailable_method_falls_back_to_spawn():
    pool = make_pool(1, start_method="no-such-method")
    try:
        assert _method(pool) == "spawn"
    finally:
        pool.shutdown(wait=False)


def test_scheduler_pool_avoids_bare_fork():
    """Regression for conc-fork-after-threads in ``_ensure_pool``.

    The scheduler builds its process pool lazily from a worker thread,
    after other worker threads are already running — forking there can
    copy held lock state into the child. The pool must therefore be
    requested with a thread-safe start method.
    """
    from repro.engine.scheduler import Scheduler

    with Scheduler(workers=1, backend="process") as sched:
        pool = sched._ensure_pool()
        assert _method(pool) in ("forkserver", "spawn")


def test_default_processes_is_positive_and_capped():
    assert 1 <= default_processes() <= 8
