"""Scheduler contracts: backpressure, dedupe, lifecycle, containment.

These tests drive the scheduler with purpose-built tiny job types (an
echo, a gated slow job, an always-raiser) registered on the engine's
own extension point, so every timing-sensitive scenario is
deterministic: a "running" job is one blocked on an Event the test
holds, not one that happens to be slow.
"""

import threading
from dataclasses import dataclass
from typing import Dict

import pytest

from repro import obs
from repro.engine import (
    DONE,
    FAILED,
    QUEUED,
    JobFailed,
    QueueFull,
    Scheduler,
    register_job_type,
)

_GATES: Dict[str, threading.Event] = {}


@dataclass(frozen=True)
class EchoJob:
    value: int


@dataclass(frozen=True)
class GatedJob:
    gate: str
    value: int = 0


@dataclass(frozen=True)
class BoomJob:
    reason: str


register_job_type(EchoJob, executor=lambda job: job.value * 2)
register_job_type(GatedJob, executor=lambda job: (_GATES[job.gate].wait(10), job.value)[1])
register_job_type(BoomJob, executor=lambda job: (_ for _ in ()).throw(ValueError(job.reason)))


@pytest.fixture
def scheduler():
    with Scheduler(workers=2, backend="thread", queue_limit=4) as sched:
        yield sched


def _gate(name: str) -> threading.Event:
    event = _GATES[name] = threading.Event()
    return event


# ---------------------------------------------------------------------------
# Happy path + dedupe
# ---------------------------------------------------------------------------


def test_submit_computes_and_resolves(scheduler):
    handle = scheduler.submit(EchoJob(21))
    assert handle.result(timeout=10) == 42
    assert handle.state == DONE
    assert handle.source == "executed"
    assert scheduler.tally["submitted"] == 1


def test_identical_inflight_jobs_share_one_handle(scheduler):
    gate = _gate("dedupe")
    try:
        first = scheduler.submit(GatedJob("dedupe", 7))
        duplicates = [scheduler.submit(GatedJob("dedupe", 7)) for _ in range(5)]
        assert all(handle is first for handle in duplicates)
        assert first.waiters == 6
    finally:
        gate.set()
    assert first.result(timeout=10) == 7
    assert scheduler.tally["deduped"] == 5
    assert scheduler.tally["executed"] == 1


def test_different_jobs_do_not_dedupe(scheduler):
    first = scheduler.submit(EchoJob(1))
    second = scheduler.submit(EchoJob(2))
    assert first is not second
    assert first.result(timeout=10) == 2
    assert second.result(timeout=10) == 4


def test_unregistered_job_type_fails_fast(scheduler):
    with pytest.raises(TypeError):
        scheduler.submit(object())


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_full_queue_rejects_without_blocking():
    gate = _gate("full")
    try:
        with Scheduler(workers=1, backend="thread", queue_limit=1) as sched:
            running = sched.submit(GatedJob("full", 0))
            # Wait until the single worker has actually picked it up, so
            # the queue slot below is deterministically free.
            deadline = threading.Event()
            running.subscribe(lambda _h, state: deadline.set())
            assert deadline.wait(10)

            queued = sched.submit(GatedJob("full", 1))
            assert queued.state == QUEUED
            with pytest.raises(QueueFull):
                sched.submit(GatedJob("full", 2))
            assert sched.tally["rejected"] == 1

            gate.set()
            assert running.result(timeout=10) == 0
            assert queued.result(timeout=10) == 1
    finally:
        gate.set()


def test_rejected_key_can_be_resubmitted():
    gate = _gate("resubmit")
    try:
        with Scheduler(workers=1, backend="thread", queue_limit=1) as sched:
            running = sched.submit(GatedJob("resubmit", 0))
            started = threading.Event()
            running.subscribe(lambda _h, state: started.set())
            assert started.wait(10)
            queued = sched.submit(GatedJob("resubmit", 1))
            with pytest.raises(QueueFull):
                sched.submit(GatedJob("resubmit", 2))
            gate.set()
            assert queued.result(timeout=10) == 1  # queue drained
            # The rejection removed the key from the in-flight map, so a
            # later submit computes rather than joining a ghost handle.
            retry = sched.submit(GatedJob("resubmit", 2))
            assert retry.result(timeout=10) == 2
    finally:
        gate.set()


# ---------------------------------------------------------------------------
# Failure + shutdown
# ---------------------------------------------------------------------------


def test_raising_executor_lands_failed(scheduler):
    handle = scheduler.submit(BoomJob("kaput"))
    assert handle.wait(10)
    assert handle.state == FAILED
    with pytest.raises(JobFailed, match="kaput"):
        handle.result()
    assert scheduler.tally["failed"] == 1


def test_failed_job_notifies_subscribers(scheduler):
    states = []
    handle = scheduler.submit(BoomJob("observed"))
    handle.wait(10)
    handle.subscribe(lambda _h, state: states.append(state))
    # Late subscription to a terminal handle fires immediately.
    assert states == [FAILED]


def test_close_cancels_pending_jobs():
    gate = _gate("close")
    sched = Scheduler(workers=1, backend="thread", queue_limit=4)
    try:
        running = sched.submit(GatedJob("close", 0))
        started = threading.Event()
        running.subscribe(lambda _h, state: started.set())
        assert started.wait(10)
        pending = sched.submit(GatedJob("close", 1))
    finally:
        gate.set()
    sched.close(cancel_pending=True)
    assert running.state == DONE  # in-flight work finishes
    assert pending.state == FAILED  # queued work is cancelled
    with pytest.raises(JobFailed, match="shut down"):
        pending.result()
    with pytest.raises(RuntimeError):
        sched.submit(EchoJob(1))


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_counters_gauges_and_events_track_lifecycle():
    sink = obs.MemoryEventSink()
    obs.enable(sink)
    try:
        with Scheduler(workers=2, backend="thread", queue_limit=8) as sched:
            handles = [sched.submit(EchoJob(n)) for n in range(3)]
            handles.append(sched.submit(EchoJob(0)))  # may dedupe or re-run
            for handle in handles:
                handle.wait(10)
            snapshot = obs.active().snapshot()
        counters = snapshot["counters"]
        assert counters["engine.jobs.submitted"] >= 3
        assert counters["engine.jobs.submitted"] + counters.get(
            "engine.jobs.deduped", 0
        ) == 4
        assert snapshot["gauges"]["engine.queue_depth"] == 0
        assert snapshot["gauges"]["engine.inflight"] == 0
        assert snapshot["histograms"]["engine.job.EchoJob.seconds"]["count"] >= 3
        types = [record["type"] for record in sink.events]
        assert "engine.job.queued" in types
        assert "engine.job.start" in types
        assert "engine.job.finish" in types
    finally:
        obs.disable()


def test_scheduler_is_zero_cost_without_registry():
    assert obs.active() is None
    with Scheduler(workers=1, backend="thread") as sched:
        assert sched._gauges is None
        handle = sched.submit(EchoJob(5))
        assert handle.result(timeout=10) == 10
    assert sched.tally["executed"] == 1  # plain-int tally is always on


def test_stats_shape(scheduler):
    scheduler.submit(EchoJob(9)).wait(10)
    stats = scheduler.stats()
    assert stats["backend"] == "thread"
    assert stats["workers"] == 2
    assert stats["queue_limit"] == 4
    assert set(stats["tally"]) == {
        "submitted", "deduped", "executed", "memoized", "failed",
        "retried", "rejected",
    }


# ---------------------------------------------------------------------------
# Concurrency-fix regressions (found by repro.lint --select conc)
# ---------------------------------------------------------------------------


def test_result_nowait_requires_a_terminal_handle(scheduler):
    gate = _gate("nowait")
    handle = scheduler.submit(GatedJob("nowait", 7))
    try:
        with pytest.raises(RuntimeError, match="result_nowait"):
            handle.result_nowait()
    finally:
        gate.set()
    handle.wait(10)
    assert handle.result_nowait() == 7


def test_result_nowait_raises_job_failed(scheduler):
    handle = scheduler.submit(BoomJob("nowait-boom"))
    handle.wait(10)
    with pytest.raises(JobFailed, match="nowait-boom"):
        handle.result_nowait()


def test_listeners_fire_with_done_already_set(scheduler):
    """The service's loop callback depends on this ordering.

    ``JobServer`` resolves results inside a subscriber via
    ``result_nowait()`` — legal only because ``_transition`` sets the
    done event (under the handle lock) *before* any listener runs.
    """
    seen = []
    handle = scheduler.submit(EchoJob(13))
    handle.subscribe(
        lambda h, state: seen.append((state, h.result_nowait()))
        if state == DONE else None
    )
    handle.wait(10)
    assert (DONE, 26) in seen


def test_tally_survives_concurrent_counting(scheduler):
    """``Scheduler._count`` holds ``_tally_lock``: no lost updates."""
    per_thread, threads = 2000, 8
    assert scheduler.tally["retried"] == 0

    def hammer():
        for _ in range(per_thread):
            scheduler._count("retried")

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert scheduler.tally["retried"] == per_thread * threads
