"""The job model: registry dispatch, wire adaptation, payload summaries."""

import dataclasses

import pytest

from repro.engine import (
    DramJob,
    JobValidationError,
    ProfileJob,
    SampleJob,
    SpecJob,
    SynthesizeJob,
    execute_job,
    install,
    is_cached,
    job_from_wire,
    validate_job,
    wire_kinds,
    wire_payload,
)
from repro.eval import comparison

REQUESTS = 400


# ---------------------------------------------------------------------------
# Wire construction / validation
# ---------------------------------------------------------------------------


def test_wire_kinds_cover_the_service_vocabulary():
    # Subset, not equality: other test modules may register extra kinds.
    assert {"evaluate", "profile", "sample", "synthesize"} <= set(wire_kinds())


def test_job_from_wire_builds_each_kind():
    assert job_from_wire("evaluate", {"name": "trex1"}) == DramJob("trex1")
    assert job_from_wire("profile", {"name": "trex1", "num_requests": 77}) == (
        ProfileJob("trex1", 77)
    )
    assert job_from_wire("synthesize", {"name": "hevc1"}) == SynthesizeJob("hevc1")
    assert job_from_wire("sample", {"name": "hevc1", "k": 3}) == SampleJob(
        "hevc1", k=3
    )


def test_job_from_wire_defaults_match_dataclass_defaults():
    job = job_from_wire("evaluate", {"name": "trex1"})
    assert job.num_requests == DramJob("x").num_requests
    assert job.interval == DramJob("x").interval
    assert job.include_stm is True


@pytest.mark.parametrize(
    "kind, params",
    [
        ("no-such-kind", {}),
        ("evaluate", {"name": "trex1", "bogus_field": 1}),
        ("evaluate", {"name": "no-such-workload"}),
        ("evaluate", {"name": "trex1", "num_requests": 0}),
        ("evaluate", {"name": "trex1", "num_requests": -5}),
        ("evaluate", {"name": "trex1", "interval": 0}),
        ("evaluate", {"name": "trex1", "num_requests": True}),
        ("evaluate", {"name": "trex1", "num_requests": 10.5}),
        ("evaluate", {}),  # missing required field
        ("sample", {"name": "trex1", "k": 0}),
    ],
)
def test_job_from_wire_rejects_bad_requests(kind, params):
    with pytest.raises(JobValidationError):
        job_from_wire(kind, params)


def test_job_from_wire_coerces_integral_floats():
    # JSON clients in float-only languages send 2000.0; that is an int.
    job = job_from_wire("profile", {"name": "trex1", "num_requests": 2000.0})
    assert job.num_requests == 2000
    assert isinstance(job.num_requests, int)


def test_validate_job_accepts_constructed_jobs():
    validate_job(DramJob("trex1", REQUESTS))
    with pytest.raises(JobValidationError):
        validate_job(DramJob("trex1", -1))


def test_jobs_are_frozen_and_hashable():
    job = ProfileJob("trex1", REQUESTS)
    with pytest.raises(dataclasses.FrozenInstanceError):
        job.name = "other"
    assert len({job, ProfileJob("trex1", REQUESTS)}) == 1


# ---------------------------------------------------------------------------
# Execution + payload summaries
# ---------------------------------------------------------------------------


def test_profile_job_payload_is_deterministic():
    job = ProfileJob("trex1", REQUESTS)
    _, first = execute_job(job)
    _, second = execute_job(job)
    assert first == second
    assert first["leaves"] > 0
    assert first["profiled_requests"] == REQUESTS
    assert len(first["sha256"]) == 64
    assert wire_payload(job, first) == first


def test_synthesize_job_payload_tracks_seed():
    job = SynthesizeJob("trex1", REQUESTS)
    _, payload = execute_job(job)
    assert payload["synthetic_requests"] > 0
    assert payload["reads"] + payload["writes"] == payload["synthetic_requests"]
    _, reseeded = execute_job(SynthesizeJob("trex1", REQUESTS, synthesis_seed=7))
    assert reseeded["sha256"] != payload["sha256"]


def test_dram_job_wire_summary_has_metric_slices():
    job = DramJob("trex1", REQUESTS)
    _, payload = execute_job(job)
    summary = wire_payload(job, payload)
    assert summary["name"] == "trex1"
    assert set(summary) >= {"baseline", "mcc", "stm", "device"}
    assert summary["baseline"]["read_bursts"] > 0
    assert summary["mcc"]["avg_access_latency"] > 0


def test_wire_payload_falls_back_to_repr_without_summary():
    job = SpecJob("gobmk", REQUESTS)
    assert wire_payload(job, object())["repr"].startswith("<object")


def test_install_round_trip_marks_cached():
    comparison.clear_cache()
    job = DramJob("trex1", REQUESTS)
    assert not is_cached(job)
    job, payload = execute_job(job)
    comparison.clear_cache()
    install(job, payload)
    assert is_cached(job)
    # The installed payload is exactly what the runner now reads.
    assert comparison.dram_comparison("trex1", REQUESTS) is payload
    comparison.clear_cache()
