"""Unit tests for the 2D-mesh NoC model."""

import pytest

from repro.interconnect.mesh import (
    MeshConfig,
    MeshNetwork,
    controller_placement,
)

from ..conftest import req


class TestMeshConfig:
    def test_defaults(self):
        config = MeshConfig()
        assert config.contains((0, 0))
        assert config.contains((3, 3))
        assert not config.contains((4, 0))
        assert not config.contains((0, -1))

    @pytest.mark.parametrize("kwargs", [
        {"width": 0}, {"height": 0}, {"hop_latency": 0}, {"flit_bytes": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MeshConfig(**kwargs)


class TestXYRouting:
    def test_same_node(self):
        assert MeshNetwork.xy_route((1, 1), (1, 1)) == []

    def test_x_then_y(self):
        links = MeshNetwork.xy_route((0, 0), (2, 1))
        assert links == [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (2, 1))]

    def test_negative_directions(self):
        links = MeshNetwork.xy_route((2, 2), (0, 0))
        assert len(links) == 4
        assert links[0] == ((2, 2), (1, 2))

    def test_hop_count_is_manhattan(self):
        for src, dst in (((0, 0), (3, 3)), ((1, 2), (2, 0))):
            links = MeshNetwork.xy_route(src, dst)
            manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
            assert len(links) == manhattan


class TestSend:
    def test_latency_scales_with_hops(self):
        mesh = MeshNetwork(MeshConfig(hop_latency=3))
        near = mesh.send(req(0, 0x0, "R", 16), (0, 0), (1, 0))
        far = mesh.send(req(0, 0x0, "R", 16), (0, 0), (3, 3))
        assert near == 3
        assert far - 0 >= 6 * 3

    def test_zero_hop_delivery(self):
        mesh = MeshNetwork()
        assert mesh.send(req(100, 0x0, "R", 16), (1, 1), (1, 1)) == 100

    def test_flit_serialization(self):
        mesh = MeshNetwork(MeshConfig(flit_bytes=16, hop_latency=1))
        # A 64B packet = 4 flits; tail arrives 3 cycles after the head.
        arrival = mesh.send(req(0, 0x0, "R", 64), (0, 0), (1, 0))
        assert arrival == 1 + 3

    def test_link_contention_queues(self):
        mesh = MeshNetwork(MeshConfig(flit_bytes=16, hop_latency=1))
        first = mesh.send(req(0, 0x0, "R", 64), (0, 0), (1, 0))
        second = mesh.send(req(0, 0x40, "R", 64), (0, 0), (1, 0))
        assert second > first  # same link, must wait

    def test_disjoint_paths_no_contention(self):
        mesh = MeshNetwork(MeshConfig(flit_bytes=16, hop_latency=1))
        a = mesh.send(req(0, 0x0, "R", 16), (0, 0), (1, 0))
        b = mesh.send(req(0, 0x0, "R", 16), (0, 1), (1, 1))
        assert a == b == 1

    def test_out_of_mesh_rejected(self):
        mesh = MeshNetwork()
        with pytest.raises(ValueError):
            mesh.send(req(0, 0x0), (0, 0), (9, 9))
        with pytest.raises(ValueError):
            mesh.send(req(0, 0x0), (9, 9), (0, 0))

    def test_stats(self):
        mesh = MeshNetwork()
        mesh.send(req(0, 0x0, "R", 32), (0, 0), (2, 0))
        assert mesh.stats.packets == 1
        assert mesh.stats.total_hops == 2
        assert mesh.stats.avg_latency > 0
        assert mesh.stats.hottest_links(1)


class TestControllerPlacement:
    def test_count_and_bounds(self):
        config = MeshConfig()
        nodes = controller_placement(config, 4)
        assert len(nodes) == 4
        assert all(config.contains(node) for node in nodes)

    def test_distinct_for_reasonable_counts(self):
        nodes = controller_placement(MeshConfig(), 4)
        assert len(set(nodes)) == 4

    def test_validates(self):
        with pytest.raises(ValueError):
            controller_placement(MeshConfig(), 0)


class TestNocDriver:
    def test_end_to_end(self, bursty_trace):
        from repro.sim.noc_driver import simulate_trace_mesh

        result = simulate_trace_mesh(bursty_trace)
        assert result.memory.latency_count == len(bursty_trace)
        assert result.mesh.packets == len(bursty_trace)
        assert len(result.controller_nodes) == 4

    def test_mesh_adds_latency_vs_crossbar(self, bursty_trace):
        from repro.sim.driver import simulate_trace
        from repro.sim.noc_driver import simulate_trace_mesh
        from repro.interconnect.crossbar import CrossbarConfig

        flat = simulate_trace(
            bursty_trace, crossbar_config=CrossbarConfig(latency=0)
        )
        meshed = simulate_trace_mesh(bursty_trace)
        assert meshed.memory.avg_access_latency >= flat.avg_access_latency
