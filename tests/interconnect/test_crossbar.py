"""Unit tests for the crossbar."""

import pytest

from repro.dram.config import MemoryConfig
from repro.dram.memory_system import MemorySystem
from repro.interconnect.crossbar import Crossbar, CrossbarConfig

from ..conftest import req


class TestCrossbarConfig:
    def test_defaults(self):
        config = CrossbarConfig()
        assert config.latency >= 0
        assert config.min_gap > 0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CrossbarConfig(latency=-1)

    def test_rejects_zero_gap(self):
        with pytest.raises(ValueError):
            CrossbarConfig(min_gap=0)


class TestCrossbar:
    def test_adds_latency(self):
        memory = MemorySystem()
        crossbar = Crossbar(memory, CrossbarConfig(latency=8))
        delay = crossbar.send(req(100, 0x0))
        assert delay == 0  # accepted exactly at t + latency
        memory.drain()
        # Latency is measured from submission, which was at t=108.
        assert memory.stats.latency_count == 1

    def test_serializes_back_to_back(self):
        memory = MemorySystem()
        crossbar = Crossbar(memory, CrossbarConfig(latency=0, min_gap=4))
        assert crossbar.send(req(0, 0x0)) == 0
        delay = crossbar.send(req(0, 0x100))
        assert delay == 4  # had to wait for the port

    def test_delay_propagates_memory_backpressure(self):
        config = MemoryConfig(num_channels=1, read_queue_size=2)
        memory = MemorySystem(config)
        crossbar = Crossbar(memory, CrossbarConfig(latency=0))
        delays = [crossbar.send(req(0, i * 32, "R", 32)) for i in range(40)]
        assert any(d > 0 for d in delays)
        assert crossbar.total_delay == sum(delays)

    def test_sparse_traffic_no_delay(self):
        memory = MemorySystem()
        crossbar = Crossbar(memory)
        for i in range(10):
            assert crossbar.send(req(i * 100_000, i * 64)) == 0
