"""Unit tests for the DRAM simulation drivers."""

import pytest

from repro.core.profiler import build_profile
from repro.core.hierarchy import two_level_ts
from repro.dram.config import MemoryConfig
from repro.interconnect.crossbar import CrossbarConfig
from repro.sim.driver import simulate_profile, simulate_synthetic, simulate_trace


class TestSimulateTrace:
    def test_burst_conservation(self, mixed_trace):
        stats = simulate_trace(mixed_trace)
        # 24 reads x 64B (2 bursts) + 24 writes x 32B (1-2 bursts).
        assert stats.read_bursts == 48
        assert stats.write_bursts >= 24
        assert stats.latency_count == len(mixed_trace)

    def test_config_respected(self, mixed_trace):
        config = MemoryConfig(num_channels=2)
        stats = simulate_trace(mixed_trace, config)
        assert len(stats.channels) == 2

    def test_crossbar_config_respected(self, bursty_trace):
        fast = simulate_trace(bursty_trace, crossbar_config=CrossbarConfig(latency=0))
        slow = simulate_trace(bursty_trace, crossbar_config=CrossbarConfig(latency=100))
        assert slow.avg_access_latency > fast.avg_access_latency

    def test_row_hits_for_sequential(self, linear_trace):
        stats = simulate_trace(linear_trace)
        assert stats.read_row_hits > 0


class TestSimulateProfileAndSynthetic:
    def test_synthetic_burst_counts_match_baseline(self, bursty_trace):
        baseline = simulate_trace(bursty_trace)
        profile = build_profile(bursty_trace, two_level_ts(100_000))
        synthetic = simulate_synthetic(profile, seed=1)
        assert synthetic.read_bursts == baseline.read_bursts
        assert synthetic.write_bursts == baseline.write_bursts

    def test_feedback_mode_processes_everything(self, bursty_trace):
        profile = build_profile(bursty_trace, two_level_ts(100_000))
        stats = simulate_profile(profile, seed=1)
        assert stats.latency_count == len(bursty_trace)

    def test_feedback_applies_under_pressure(self, bursty_trace):
        config = MemoryConfig(num_channels=1, read_queue_size=4)
        profile = build_profile(bursty_trace, two_level_ts(100_000))
        stats = simulate_profile(profile, config, seed=1)
        assert stats.latency_count == len(bursty_trace)
        assert stats.backpressure_delay > 0
