"""Unit tests for the cache simulation driver."""

from repro.cache.cache import CacheConfig
from repro.core.trace import Trace
from repro.sim.cache_driver import run_cache_trace

from ..conftest import req


class TestRunCacheTrace:
    def test_returns_both_levels(self, linear_trace):
        result = run_cache_trace(linear_trace)
        assert result.l1.accesses == len(linear_trace)
        assert result.l2.accesses == result.l1.misses

    def test_miss_rate_properties(self, linear_trace):
        result = run_cache_trace(linear_trace)
        assert 0 <= result.l1_miss_rate <= 1
        assert 0 <= result.l2_miss_rate <= 1

    def test_order_only(self):
        # Timestamps must not matter in atomic mode.
        a = Trace([req(0, i * 64) for i in range(64)])
        b = Trace([req(i * 1_000_000, i * 64) for i in range(64)])
        assert run_cache_trace(a).l1.misses == run_cache_trace(b).l1.misses

    def test_l1_config_changes_results(self):
        trace = Trace([req(i, (i % 1024) * 64) for i in range(4096)])
        small = run_cache_trace(trace, CacheConfig(16 * 1024, 2))
        large = run_cache_trace(trace, CacheConfig(64 * 1024, 8))
        assert large.l1.misses <= small.l1.misses

    def test_repeat_pass_hits(self):
        blocks = 64
        requests = [req(i, (i % blocks) * 64) for i in range(blocks * 4)]
        result = run_cache_trace(Trace(requests))
        # 4KB working set fits in L1: only cold misses.
        assert result.l1.misses == blocks
