"""Unit tests for the multi-device SoC simulator."""

import pytest

from repro.core.profiler import build_profile
from repro.core.trace import Trace
from repro.dram.config import MemoryConfig
from repro.sim.multi_device import SoCSimulator, merge_traces, run_soc

from ..conftest import req


def small_trace(base, count=50, gap=100, op="R"):
    return Trace([req(i * gap, base + i * 64, op) for i in range(count)])


class TestSoCSimulator:
    def test_rejects_duplicate_names(self):
        simulator = SoCSimulator()
        simulator.add_device("cpu", small_trace(0x1000))
        with pytest.raises(ValueError):
            simulator.add_device("cpu", small_trace(0x2000))

    def test_rejects_empty_run(self):
        with pytest.raises(ValueError):
            SoCSimulator().run()

    def test_single_device_matches_request_count(self):
        simulator = SoCSimulator()
        simulator.add_device("gpu", small_trace(0x1000, count=40))
        result = simulator.run()
        assert result.devices["gpu"].requests == 40
        assert result.memory.latency_count == 40

    def test_two_devices_all_serviced(self):
        result = run_soc(
            {"a": small_trace(0x10000), "b": small_trace(0x90000, op="W")}
        )
        assert result.devices["a"].requests == 50
        assert result.devices["b"].requests == 50
        assert result.memory.latency_count == 100

    def test_per_device_read_write_split(self):
        result = run_soc(
            {"reader": small_trace(0x10000, op="R"), "writer": small_trace(0x90000, op="W")}
        )
        assert result.devices["reader"].reads == 50
        assert result.devices["reader"].writes == 0
        assert result.devices["writer"].writes == 50

    def test_latency_attributed_per_device(self):
        result = run_soc(
            {"a": small_trace(0x10000), "b": small_trace(0x90000)}
        )
        for stats in result.devices.values():
            assert stats.latency_count == stats.requests
            assert stats.avg_access_latency > 0

    def test_bandwidth_share_sums_to_one(self):
        result = run_soc(
            {"a": small_trace(0x10000, count=30), "b": small_trace(0x90000, count=70)}
        )
        shares = result.bandwidth_share()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["b"] > shares["a"]

    def test_profile_sources_accepted(self, bursty_trace):
        profile = build_profile(bursty_trace)
        result = run_soc({"ip": profile, "cpu": small_trace(0x900000)})
        assert result.devices["ip"].requests == len(bursty_trace)

    def test_contention_raises_latency(self):
        alone = run_soc({"a": small_trace(0x10000, gap=10)})
        contended = run_soc(
            {
                "a": small_trace(0x10000, gap=10),
                "b": small_trace(0x90000, gap=10),
                "c": small_trace(0x110000, gap=10),
                "d": small_trace(0x190000, gap=10),
            },
            config=MemoryConfig(num_channels=1),
        )
        assert (
            contended.devices["a"].avg_access_latency
            >= alone.devices["a"].avg_access_latency
        )

    def test_interleaving_is_time_ordered(self):
        # Device b starts much later: a's requests must be accepted first.
        early = small_trace(0x10000, count=10, gap=10)
        late = Trace([req(1_000_000 + i * 10, 0x90000 + i * 64) for i in range(10)])
        result = run_soc({"early": early, "late": late})
        assert result.memory.latency_count == 20


class TestMergeTraces:
    def test_merge_sorted(self):
        a = small_trace(0x1000, count=5, gap=100)
        b = Trace([req(i * 100 + 50, 0x9000 + i * 64) for i in range(5)])
        merged = merge_traces([a, b])
        assert len(merged) == 10
        assert merged.is_sorted()

    def test_merge_empty(self):
        assert len(merge_traces([])) == 0
