"""Unit tests for event sinks and run manifests."""

import json

import pytest

from repro.obs import (
    JsonlEventSink,
    MemoryEventSink,
    MetricsRegistry,
    build_manifest,
    host_info,
    write_manifest,
)


class TestJsonlEventSink:
    def test_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit({"type": "a", "n": 1})
            sink.emit({"type": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["a", "b"]

    def test_counts_emitted(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        assert sink.emitted == 0
        sink.emit({"type": "x"})
        assert sink.emitted == 1
        sink.close()

    def test_flushed_per_event(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlEventSink(path)
        sink.emit({"type": "x"})
        # Readable before close: a crashed run keeps its events.
        assert json.loads(path.read_text())["type"] == "x"
        sink.close()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"type": "x"})

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()

    def test_non_json_values_are_stringified(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit({"type": "x", "path": path})
        assert json.loads(path.read_text())["path"] == str(path)


class TestMemoryEventSink:
    def test_of_type_filters(self):
        sink = MemoryEventSink()
        sink.emit({"type": "a", "n": 1})
        sink.emit({"type": "b", "n": 2})
        sink.emit({"type": "a", "n": 3})
        assert [e["n"] for e in sink.of_type("a")] == [1, 3]


class TestManifest:
    def test_host_info_fields(self):
        info = host_info()
        assert info["cpus"] >= 1
        assert info["python"]

    def test_build_manifest_contents(self):
        registry = MetricsRegistry()
        registry.counter("dram.enqueued").inc(10)
        registry.add_phase_time("fig6", 1.25)
        manifest = build_manifest(
            registry,
            command="python -m repro.eval quick fig6",
            scale={"requests": 2000},
            seeds={"base": 0},
            extra={"experiments": ["fig6"]},
        )
        assert manifest["kind"] == "mocktails-run-manifest"
        assert manifest["scale"] == {"requests": 2000}
        assert manifest["seeds"] == {"base": 0}
        assert manifest["phases_seconds"] == {"fig6": 1.25}
        assert manifest["metrics"]["counters"]["dram.enqueued"] == 10
        assert manifest["experiments"] == ["fig6"]

    def test_write_manifest_roundtrips(self, tmp_path):
        registry = MetricsRegistry()
        path = write_manifest(tmp_path / "run.json", build_manifest(registry))
        data = json.loads(path.read_text())
        assert data["kind"] == "mocktails-run-manifest"
        assert "host" in data and "metrics" in data
