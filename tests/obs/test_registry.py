"""Unit tests for the metrics registry and its process-wide lifecycle."""

import pytest

from repro import obs
from repro.obs import MemoryEventSink, MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Never leak an active registry into (or out of) a test."""
    obs.disable()
    yield
    obs.disable()


class TestHandles:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 2.0
        assert histogram.max == 8.0
        assert histogram.mean == pytest.approx(5.0)

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestQueueGauges:
    def test_lifecycle_tracks_depth_and_inflight(self):
        obs.enable()
        gauges = obs.queue_gauges("engine")
        gauges.enqueued()
        gauges.enqueued()
        assert obs.active().snapshot()["gauges"]["engine.queue_depth"] == 2
        gauges.started()  # one item moves queue -> worker
        snapshot = obs.active().snapshot()["gauges"]
        assert snapshot["engine.queue_depth"] == 1
        assert snapshot["engine.inflight"] == 1
        gauges.finished()  # ...and completes
        gauges.dequeued()  # the other is cancelled while still queued
        snapshot = obs.active().snapshot()["gauges"]
        assert snapshot["engine.queue_depth"] == 0
        assert snapshot["engine.inflight"] == 0

    def test_none_when_observability_off(self):
        assert obs.queue_gauges("engine") is None


class TestJobTimer:
    def test_records_histogram_and_phase(self):
        obs.enable()
        with obs.job_timer("engine.job.EchoJob"):
            pass
        snapshot = obs.active().snapshot()
        histogram = snapshot["histograms"]["engine.job.EchoJob.seconds"]
        assert histogram["count"] == 1
        assert "engine.job.EchoJob" in snapshot["phases_seconds"]

    def test_elapsed_accumulates_into_phase_total(self):
        obs.enable()
        registry = obs.active()
        with obs.job_timer("engine.job.X"):
            pass
        with obs.job_timer("engine.job.X"):
            pass
        assert registry.phases["engine.job.X"] >= 0.0
        assert obs.active().snapshot()["histograms"]["engine.job.X.seconds"]["count"] == 2

    def test_none_when_observability_off(self):
        assert obs.job_timer("engine.job.X") is None


class TestPhases:
    def test_phase_scope_accumulates(self):
        registry = MetricsRegistry()
        with registry.phase("build"):
            pass
        with registry.phase("build"):
            pass
        assert registry.phases["build"] >= 0.0
        assert set(registry.phases) == {"build"}

    def test_phase_events_emitted(self):
        sink = MemoryEventSink()
        registry = MetricsRegistry(sink)
        with registry.phase("fig6"):
            pass
        assert [e["type"] for e in sink.events] == ["phase.start", "phase.end"]
        assert sink.events[1]["phase"] == "fig6"
        assert "seconds" in sink.events[1]

    def test_add_phase_time(self):
        registry = MetricsRegistry()
        registry.add_phase_time("replay", 1.5)
        registry.add_phase_time("replay", 0.5)
        assert registry.phases["replay"] == pytest.approx(2.0)


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(4.0)
        registry.add_phase_time("p", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 7}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["phases_seconds"] == {"p": 0.25}

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("h")  # empty: min/max are None
        json.dumps(registry.snapshot())


class TestLifecycle:
    def test_disabled_by_default(self):
        assert obs.active() is None

    def test_enable_installs_registry(self):
        registry = obs.enable()
        assert obs.active() is registry
        obs.disable()
        assert obs.active() is None

    def test_enable_replaces_registry(self):
        first = obs.enable()
        second = obs.enable()
        assert obs.active() is second
        assert first is not second

    def test_disable_closes_sink(self):
        sink = MemoryEventSink()
        registry = obs.enable(sink)
        obs.disable()
        assert registry.sink is None

    def test_event_is_noop_without_sink(self):
        registry = MetricsRegistry()
        registry.event("anything", detail=1)  # must not raise

    def test_event_adds_type_and_time(self):
        sink = MemoryEventSink()
        registry = MetricsRegistry(sink)
        registry.event("job.start", kind="dram", name="hevc1")
        (event,) = sink.events
        assert event["type"] == "job.start"
        assert event["kind"] == "dram"
        assert event["t"] > 0
