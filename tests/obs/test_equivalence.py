"""Observability must never change results — only observe them.

Runs the same experiments with the registry disabled and enabled (with
an in-memory event sink) and asserts the figure statistics are
bit-identical, while the enabled run actually accumulated non-trivial
counters and events.
"""

import pytest

from repro import obs
from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize
from repro.eval import experiments
from repro.eval.comparison import baseline_trace, clear_cache
from repro.sim.driver import simulate_trace

SMALL = 1_200


def _clear_caches():
    clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    experiments._SPEC_SIZE_CACHE.clear()


@pytest.fixture(autouse=True)
def _isolated_registry():
    obs.disable()
    yield
    obs.disable()


class TestFigureEquivalence:
    def test_figure_6_bit_identical(self):
        _clear_caches()
        disabled = experiments.figure_6(SMALL)

        _clear_caches()
        sink = obs.MemoryEventSink()
        obs.enable(sink)
        try:
            enabled = experiments.figure_6(SMALL)
            counters = obs.active().snapshot()["counters"]
        finally:
            obs.disable()

        assert enabled == disabled
        # The run must actually have been observed, not skipped.
        assert counters["dram.enqueued"] > 0
        assert counters["dram.issued"] > 0
        assert counters["synthesis.requests_emitted"] > 0
        assert counters["eval.runs.computed"] > 0
        assert sink.of_type("job.start") and sink.of_type("job.finish")

    def test_figure_10_bit_identical(self):
        _clear_caches()
        disabled = experiments.figure_10(SMALL)

        _clear_caches()
        obs.enable()
        try:
            enabled = experiments.figure_10(SMALL)
        finally:
            obs.disable()

        assert enabled == disabled


class TestReplayEquivalence:
    def test_synthesis_and_replay_bit_identical(self):
        trace = baseline_trace("hevc1", SMALL)
        profile = build_profile(trace, two_level_ts(), name="hevc1")
        disabled_synthetic = synthesize(profile, seed=1)
        disabled_stats = simulate_trace(disabled_synthetic)

        obs.enable()
        try:
            enabled_synthetic = synthesize(profile, seed=1)
            enabled_stats = simulate_trace(enabled_synthetic)
            counters = obs.active().snapshot()["counters"]
        finally:
            obs.disable()

        assert enabled_synthetic == disabled_synthetic
        assert enabled_stats == disabled_stats
        assert counters["synthesis.requests_emitted"] == len(trace)
        assert counters["dram.enqueued"] > 0

    def test_cache_counters_accumulate(self):
        from repro.cache.cache import Cache, CacheConfig

        obs.enable()
        try:
            cache = Cache(CacheConfig(size=4096, associativity=2))
            for _ in range(2):  # second pass hits: 32 blocks fit in 64
                for block in range(32):
                    cache.access_block(block, is_write=False)
            counters = obs.active().snapshot()["counters"]
        finally:
            obs.disable()

        assert counters["cache.cache.misses"] == 32
        assert counters["cache.cache.hits"] == 32
