"""Peak-memory gauge: measured bounds, nesting, registry publication."""

from __future__ import annotations

import tracemalloc

import pytest

from repro import obs
from repro.obs import PeakMemoryTracker, measure_peak_memory


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    yield
    obs.disable()


def test_tracker_measures_allocation():
    with PeakMemoryTracker() as tracker:
        blob = bytearray(4 << 20)
    assert tracker.peak_bytes >= len(blob)
    assert not tracemalloc.is_tracing()


def test_tracker_stops_only_what_it_started():
    tracemalloc.start()
    try:
        with PeakMemoryTracker() as tracker:
            bytearray(1 << 20)
        assert tracemalloc.is_tracing()
        assert tracker.peak_bytes >= 1 << 20
    finally:
        tracemalloc.stop()


def test_nested_trackers_reset_peak():
    with PeakMemoryTracker() as outer:
        bytearray(8 << 20)
        with PeakMemoryTracker() as inner:
            bytearray(1 << 20)
    # The inner tracker's peak must reflect only its own region, not
    # the 8 MiB high-water mark the outer region already set.
    assert inner.peak_bytes < 4 << 20
    assert outer.peak_bytes >= 1 << 20


def test_tracker_publishes_gauge():
    registry = obs.enable()
    with PeakMemoryTracker(name="test.peak"):
        bytearray(1 << 20)
    assert registry.gauge("test.peak").value >= 1 << 20


def test_measure_peak_memory_returns_result_and_peak():
    result, peak = measure_peak_memory(lambda n: bytes(n), 2 << 20)
    assert len(result) == 2 << 20
    assert peak >= 2 << 20
