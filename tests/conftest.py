"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random
import tempfile

import pytest

# Hermetic cross-run cache: the eval CLI memoizes to ~/.cache/repro by
# default, which tests must never touch. Point it at a throwaway
# directory before anything imports repro.store's default.
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

from repro.core.request import MemoryRequest, Operation
from repro.core.trace import Trace


def req(t: int, addr: int, op: str = "R", size: int = 64) -> MemoryRequest:
    """Terse request constructor used throughout the tests."""
    return MemoryRequest(t, addr, Operation.parse(op), size)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def linear_trace() -> Trace:
    """A pure linear read stream: constant stride 64, constant size."""
    return Trace([req(i * 10, 0x1000 + i * 64) for i in range(32)])


@pytest.fixture
def mixed_trace() -> Trace:
    """Two interleaved streams: linear reads and strided writes."""
    requests = []
    clock = 0
    for i in range(24):
        clock += 5
        requests.append(req(clock, 0x1000 + i * 64, "R", 64))
        clock += 5
        requests.append(req(clock, 0x9000 + i * 128, "W", 32))
    return Trace(requests)


@pytest.fixture
def bursty_trace() -> Trace:
    """Bursts of requests separated by long idle gaps."""
    requests = []
    clock = 0
    for burst in range(6):
        for i in range(20):
            clock += 2
            requests.append(req(clock, 0x4000 + burst * 0x2000 + i * 64))
        clock += 1_000_000
    return Trace(requests)
