"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.touch(0, way)
        policy.touch(0, 0)
        assert policy.victim(0) == 1

    def test_untouched_way_preferred(self):
        policy = LRUPolicy(1, 2)
        policy.touch(0, 1)
        assert policy.victim(0) == 0

    def test_sets_independent(self):
        policy = LRUPolicy(2, 2)
        policy.touch(0, 0)
        policy.touch(0, 1)
        policy.touch(1, 1)
        assert policy.victim(0) == 0
        assert policy.victim(1) == 0


class TestFIFO:
    def test_round_robin(self):
        policy = FIFOPolicy(1, 3)
        assert [policy.victim(0) for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_touch_ignored(self):
        policy = FIFOPolicy(1, 2)
        policy.touch(0, 1)
        assert policy.victim(0) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=3)
        b = RandomPolicy(1, 8, seed=3)
        assert [a.victim(0) for _ in range(10)] == [b.victim(0) for _ in range(10)]

    def test_in_range(self):
        policy = RandomPolicy(1, 4, seed=0)
        assert all(0 <= policy.victim(0) < 4 for _ in range(50))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRUPolicy), ("fifo", FIFOPolicy),
                                          ("random", RandomPolicy)])
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name, 4, 2), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4, 2)
