"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.cache import Cache, CacheConfig

from ..conftest import req


def make_cache(size=1024, assoc=2, block=64, replacement="lru"):
    return Cache(CacheConfig(size=size, associativity=assoc, block_size=block,
                             replacement=replacement))


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(32 * 1024, 4, 64).num_sets == 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)  # not a multiple
        with pytest.raises(ValueError):
            CacheConfig(0, 1, 64)
        with pytest.raises(ValueError):
            CacheConfig(1024, 2, 48)  # block not power of two


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access_block(0, False).hit
        assert cache.access_block(0, False).hit

    def test_distinct_blocks_miss(self):
        cache = make_cache()
        cache.access_block(0, False)
        assert not cache.access_block(1, False).hit

    def test_contains(self):
        cache = make_cache()
        cache.access_block(5, False)
        assert cache.contains(5)
        assert not cache.contains(6)

    def test_stats_accumulate(self):
        cache = make_cache()
        cache.access_block(0, False)
        cache.access_block(0, True)
        cache.access_block(1, True)
        stats = cache.stats
        assert stats.accesses == 3
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.read_accesses == 1
        assert stats.write_accesses == 2
        assert stats.write_misses == 1
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_footprint(self):
        cache = make_cache()
        for block in (0, 1, 0, 2):
            cache.access_block(block, False)
        assert cache.stats.footprint_bytes == 3


class TestEvictionAndWriteback:
    def test_lru_eviction(self):
        cache = make_cache(size=2 * 64, assoc=2, block=64)  # 1 set, 2 ways
        cache.access_block(0, False)
        cache.access_block(1, False)
        cache.access_block(0, False)  # 0 is now MRU
        result = cache.access_block(2, False)  # evicts 1 (LRU)
        assert result.victim_address == 1
        assert cache.contains(0) and not cache.contains(1)

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=2 * 64, assoc=2)
        cache.access_block(0, False)
        cache.access_block(1, False)
        result = cache.access_block(2, False)
        assert result.writeback_address is None
        assert cache.stats.write_backs == 0
        assert cache.stats.replacements == 1

    def test_dirty_eviction_writes_back(self):
        cache = make_cache(size=2 * 64, assoc=2)
        cache.access_block(0, True)  # dirty
        cache.access_block(1, False)
        result = cache.access_block(2, False)
        assert result.writeback_address == 0
        assert cache.stats.write_backs == 1

    def test_read_after_write_keeps_dirty(self):
        cache = make_cache(size=2 * 64, assoc=2)
        cache.access_block(0, True)
        cache.access_block(0, False)  # read hit must not clean the line
        cache.access_block(1, False)
        result = cache.access_block(2, False)
        assert result.writeback_address == 0

    def test_replacements_counted_only_when_full(self):
        cache = make_cache(size=4 * 64, assoc=4)
        for block in range(4):
            cache.access_block(block, False)
        assert cache.stats.replacements == 0
        cache.access_block(99, False)
        assert cache.stats.replacements == 1


class TestSetMapping:
    def test_blocks_map_to_distinct_sets(self):
        cache = make_cache(size=4 * 64, assoc=1)  # 4 sets, direct mapped
        for block in range(4):
            cache.access_block(block, False)
        # All four coexist: no conflict.
        assert all(cache.contains(block) for block in range(4))

    def test_conflict_in_direct_mapped(self):
        cache = make_cache(size=4 * 64, assoc=1)
        cache.access_block(0, False)
        cache.access_block(4, False)  # same set (4 sets)
        assert not cache.contains(0)
        assert cache.contains(4)


class TestRequestInterface:
    def test_request_spanning_blocks(self):
        cache = make_cache()
        results = cache.access(req(0, 0x3C, "R", 16))  # crosses 0x40
        assert len(results) == 2

    def test_request_within_block(self):
        cache = make_cache()
        results = cache.access(req(0, 0x10, "W", 8))
        assert len(results) == 1
        assert cache.stats.write_accesses == 1


class TestHigherAssociativityHelps:
    def test_associativity_fixes_conflicts(self):
        # Ping-pong between two conflicting blocks.
        direct = make_cache(size=4 * 64, assoc=1)
        for _ in range(10):
            direct.access_block(0, False)
            direct.access_block(4, False)
        set_assoc = make_cache(size=4 * 64, assoc=2)
        for _ in range(10):
            set_assoc.access_block(0, False)
            set_assoc.access_block(2, False)  # same set with 2 sets
        assert set_assoc.stats.misses < direct.stats.misses
