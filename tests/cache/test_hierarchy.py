"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, paper_l1_config, paper_l2_config
from repro.core.trace import Trace

from ..conftest import req


class TestConfigs:
    def test_paper_l2(self):
        config = paper_l2_config()
        assert config.size == 256 * 1024
        assert config.associativity == 8
        assert config.block_size == 64

    def test_paper_l1_defaults(self):
        config = paper_l1_config()
        assert config.size == 32 * 1024
        assert config.associativity == 4

    def test_block_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                CacheConfig(1024, 2, 32), CacheConfig(4096, 2, 64)
            )


class TestAccessFlow:
    def test_l1_hit_does_not_touch_l2(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(req(0, 0x100))
        l2_before = hierarchy.l2_stats.accesses
        hierarchy.access(req(1, 0x100))
        assert hierarchy.l2_stats.accesses == l2_before

    def test_l1_miss_reads_l2(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(req(0, 0x100))
        assert hierarchy.l2_stats.accesses == 1
        assert hierarchy.l2_stats.read_accesses == 1

    def test_dirty_l1_eviction_writes_l2(self):
        # Tiny L1 so evictions happen fast.
        hierarchy = CacheHierarchy(CacheConfig(2 * 64, 2, 64))
        hierarchy.access(req(0, 0x000, "W"))
        hierarchy.access(req(1, 0x1000))
        hierarchy.access(req(2, 0x2000))  # evicts dirty 0x000
        assert hierarchy.l1_stats.write_backs == 1
        assert hierarchy.l2_stats.write_accesses == 1

    def test_run_processes_whole_trace(self):
        hierarchy = CacheHierarchy()
        trace = Trace([req(i, i * 64) for i in range(100)])
        hierarchy.run(trace)
        assert hierarchy.l1_stats.accesses == 100

    def test_l2_filters_repeat_misses(self):
        # Working set bigger than L1, smaller than L2: second pass still
        # misses L1 but hits L2.
        hierarchy = CacheHierarchy(CacheConfig(1024, 2, 64))
        blocks = 64  # 4KB working set
        for _ in range(2):
            for i in range(blocks):
                hierarchy.access(req(0, i * 64))
        assert hierarchy.l1_stats.misses >= blocks
        assert hierarchy.l2_stats.hits > 0

    def test_small_requests_one_block(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(req(0, 0x104, "R", 4))
        assert hierarchy.l1_stats.accesses == 1

    def test_straddling_request_two_blocks(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(req(0, 0x3C, "R", 16))
        assert hierarchy.l1_stats.accesses == 2
