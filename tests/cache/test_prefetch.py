"""Unit tests for the prefetcher models."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.prefetch import (
    NextLinePrefetcher,
    PrefetchingCache,
    StridePrefetcher,
)
from repro.core.trace import Trace

from ..conftest import req


def make(prefetcher, size=8 * 1024, assoc=4):
    return PrefetchingCache(CacheConfig(size, assoc), prefetcher)


class TestPredictors:
    def test_next_line_on_miss(self):
        prefetcher = NextLinePrefetcher(degree=2)
        assert prefetcher.predict(10, was_miss=True) == [11, 12]
        assert prefetcher.predict(10, was_miss=False) == []

    def test_next_line_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_stride_needs_confirmation(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        assert prefetcher.predict(0, True) == []
        assert prefetcher.predict(4, True) == []   # first stride seen
        assert prefetcher.predict(8, True) == []   # 1 confirmation
        assert prefetcher.predict(12, True) == [16]  # confirmed

    def test_stride_resets_on_change(self):
        prefetcher = StridePrefetcher(degree=1, threshold=1)
        prefetcher.predict(0, True)
        prefetcher.predict(4, True)
        assert prefetcher.predict(8, True) == [12]
        assert prefetcher.predict(9, True) == []  # stride broke

    def test_stride_regions_independent(self):
        prefetcher = StridePrefetcher(degree=1, threshold=1, region_blocks=64)
        prefetcher.predict(0, True)
        prefetcher.predict(1, True)
        assert prefetcher.predict(2, True) == [3]
        # A different region has no history.
        assert prefetcher.predict(1000, True) == []

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestPrefetchingCache:
    def test_sequential_stream_benefits(self):
        plain = Cache(CacheConfig(8 * 1024, 4))
        for block in range(256):
            plain.access_block(block, False)

        prefetching = make(NextLinePrefetcher(degree=2))
        for block in range(256):
            prefetching.access_block(block, False)

        assert prefetching.demand_stats.misses < plain.stats.misses
        assert prefetching.stats.useful > 0
        assert prefetching.stats.accuracy > 0.8

    def test_random_stream_no_gain(self):
        import random as rnd

        rng = rnd.Random(0)
        blocks = [rng.randrange(10_000) for _ in range(400)]
        prefetching = make(NextLinePrefetcher(degree=1))
        for block in blocks:
            prefetching.access_block(block, False)
        # Almost no prefetch becomes useful on random traffic.
        assert prefetching.stats.accuracy < 0.3

    def test_stride_prefetcher_on_strided_stream(self):
        prefetching = make(StridePrefetcher(degree=2, threshold=2))
        for i in range(200):
            prefetching.access_block(i * 4, False)
        assert prefetching.stats.useful > 100

    def test_prefetch_fills_do_not_count_as_accesses(self):
        prefetching = make(NextLinePrefetcher(degree=4))
        for block in range(64):
            prefetching.access_block(block, False)
        assert prefetching.demand_stats.accesses == 64

    def test_run_over_trace(self):
        prefetching = make(NextLinePrefetcher())
        trace = Trace([req(i, i * 64) for i in range(100)])
        prefetching.run(trace)
        assert prefetching.demand_stats.accesses == 100


class TestFillBlock:
    def test_fill_is_silent(self):
        cache = Cache(CacheConfig(1024, 2))
        cache.fill_block(5)
        assert cache.contains(5)
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0

    def test_fill_resident_noop(self):
        cache = Cache(CacheConfig(1024, 2))
        cache.access_block(5, True)  # dirty
        result = cache.fill_block(5)
        assert result.hit
        # Dirtiness must survive a redundant fill.
        cache.access_block(6, False)
        evictions = 0
        block = 100
        while cache.contains(5):
            cache.access_block(5 % 16 + 16 * block, False)
            block += 1
            evictions += 1
            assert evictions < 100

    def test_fill_counts_replacements(self):
        cache = Cache(CacheConfig(2 * 64, 2))
        cache.access_block(0, True)
        cache.access_block(1, False)
        result = cache.fill_block(2)
        assert cache.stats.replacements == 1
        assert cache.stats.write_backs == 1
        assert result.writeback_address == 0
