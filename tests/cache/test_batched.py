"""Batched (columnar) cache simulation vs the scalar hierarchy.

The contract is statistical equality: a batched run's CacheStats equal
the scalar run's field for field, including the footprint block sets,
for every cache geometry the Sec. V sweep uses. Victim choice among
invalid ways may differ physically but is unobservable in stats.
"""

import pytest

from repro import obs
from repro.cache.batched import BatchedCacheHierarchy
from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, paper_l2_config
from repro.core.columnar import ColumnarTrace
from repro.core.trace import Trace
from repro.sim.cache_driver import run_cache_trace
from repro.workloads import workload_trace

from ..conftest import req

REQUESTS = 4000

GEOMETRIES = {
    "default": lambda: CacheConfig(32 * 1024, 4),
    "small": lambda: CacheConfig(8 * 1024, 2),
    "large": lambda: CacheConfig(64 * 1024, 8),
    "direct_mapped": lambda: CacheConfig(1024, 1),
}


def stats_fields(stats):
    return {
        "accesses": stats.accesses,
        "misses": stats.misses,
        "read_accesses": stats.read_accesses,
        "read_misses": stats.read_misses,
        "write_accesses": stats.write_accesses,
        "write_misses": stats.write_misses,
        "replacements": stats.replacements,
        "write_backs": stats.write_backs,
        "footprint_blocks": stats.footprint_blocks,
    }


def assert_runs_equal(scalar, batched):
    assert stats_fields(batched.l1) == stats_fields(scalar.l1)
    assert stats_fields(batched.l2) == stats_fields(scalar.l2)


@pytest.fixture(scope="module")
def mcf_trace():
    return workload_trace("mcf", num_requests=REQUESTS)


@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
def test_batched_matches_scalar_across_geometries(geometry, mcf_trace):
    l1 = GEOMETRIES[geometry]()
    scalar = run_cache_trace(mcf_trace, l1_config=l1, backend="scalar")
    batched = run_cache_trace(mcf_trace, l1_config=l1, backend="columnar")
    assert_runs_equal(scalar, batched)


@pytest.mark.parametrize("workload", ["gcc", "lbm", "hevc1"])
def test_batched_matches_scalar_across_workloads(workload):
    trace = workload_trace(workload, num_requests=REQUESTS)
    scalar = run_cache_trace(trace, backend="scalar")
    batched = run_cache_trace(trace, backend="columnar")
    assert_runs_equal(scalar, batched)


def test_batched_accepts_columnar_input(mcf_trace):
    scalar = run_cache_trace(mcf_trace, backend="scalar")
    columns = ColumnarTrace.from_trace(mcf_trace)
    batched = run_cache_trace(columns, backend="columnar")
    assert_runs_equal(scalar, batched)


def test_batched_without_numpy_matches(monkeypatch, mcf_trace):
    """The pure-Python expansion path produces the same statistics."""
    scalar = run_cache_trace(mcf_trace, backend="scalar")
    monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
    batched = run_cache_trace(mcf_trace, backend="columnar")
    assert_runs_equal(scalar, batched)


def test_straddling_requests_touch_every_block():
    """A request crossing block boundaries accesses each covered block."""
    trace = Trace([req(0, 60, "R", 136)])  # 64B blocks: covers blocks 0..3
    scalar = run_cache_trace(trace, backend="scalar")
    batched = run_cache_trace(trace, backend="columnar")
    assert_runs_equal(scalar, batched)
    assert batched.l1.accesses == 4


def test_write_back_path_matches():
    """Dirty evictions from L1 write back into L2 identically."""
    l1 = CacheConfig(1024, 1)  # direct-mapped: easy conflict misses
    builder = []
    # Write two conflicting blocks alternately so dirty victims bounce.
    for i in range(64):
        builder.append(req(i, (i % 2) * 1024 * 16, "W", 64))
    trace = Trace(builder)
    scalar = run_cache_trace(trace, l1_config=l1, backend="scalar")
    batched = run_cache_trace(trace, l1_config=l1, backend="columnar")
    assert_runs_equal(scalar, batched)
    assert batched.l1.write_backs > 0


def test_chunked_replay_is_chunk_size_invariant(mcf_trace):
    columns = ColumnarTrace.from_trace(mcf_trace)
    reference = BatchedCacheHierarchy()
    reference.run(columns)
    for chunk in (1, 7, 1024):
        hierarchy = BatchedCacheHierarchy()
        hierarchy.run(columns, chunk_requests=chunk)
        assert stats_fields(hierarchy.l1_stats) == stats_fields(reference.l1_stats)
        assert stats_fields(hierarchy.l2_stats) == stats_fields(reference.l2_stats)


def test_repeated_run_accumulates_like_scalar(mcf_trace):
    scalar = CacheHierarchy(CacheConfig(32 * 1024, 4), paper_l2_config())
    scalar.run(mcf_trace)
    scalar.run(mcf_trace)
    batched = BatchedCacheHierarchy(CacheConfig(32 * 1024, 4), paper_l2_config())
    batched.run(mcf_trace)
    batched.run(mcf_trace)
    assert stats_fields(batched.l1_stats) == stats_fields(scalar.l1_stats)
    assert stats_fields(batched.l2_stats) == stats_fields(scalar.l2_stats)


def test_obs_counters_match_scalar(mcf_trace):
    def counters(backend):
        registry = obs.enable()
        try:
            run_cache_trace(mcf_trace, backend=backend)
            return {
                name: value
                for name, value in registry.counters()
                if name.startswith("cache.")
            }
        finally:
            obs.disable()

    assert counters("columnar") == counters("scalar")


def test_non_lru_falls_back_to_scalar(mcf_trace):
    """FIFO sweeps run the scalar engine under either backend."""
    l1 = CacheConfig(8 * 1024, 2, replacement="fifo")
    fifo_scalar = run_cache_trace(mcf_trace, l1_config=l1, backend="scalar")
    fifo_columnar = run_cache_trace(mcf_trace, l1_config=l1, backend="columnar")
    assert_runs_equal(fifo_scalar, fifo_columnar)


def test_batched_hierarchy_rejects_non_lru():
    with pytest.raises(ValueError, match="only LRU replacement"):
        BatchedCacheHierarchy(CacheConfig(8 * 1024, 2, replacement="fifo"))


def test_batched_hierarchy_rejects_mismatched_block_size():
    with pytest.raises(ValueError, match="share a block size"):
        BatchedCacheHierarchy(
            CacheConfig(8 * 1024, 2, block_size=32),
            paper_l2_config(),
        )


def test_sanitized_run_takes_scalar_path(mcf_trace):
    """sanitize=True keeps the invariant checker in the loop (scalar)."""
    sanitized = run_cache_trace(mcf_trace, sanitize=True, backend="columnar")
    plain = run_cache_trace(mcf_trace, backend="scalar")
    assert_runs_equal(plain, sanitized)


def test_empty_trace(mcf_trace):
    scalar = run_cache_trace(Trace(), backend="scalar")
    batched = run_cache_trace(Trace(), backend="columnar")
    assert_runs_equal(scalar, batched)
    assert batched.l1.accesses == 0
