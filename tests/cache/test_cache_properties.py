"""Property-based tests for cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.request import MemoryRequest, Operation
from repro.core.trace import Trace


@st.composite
def cache_configs(draw):
    associativity = draw(st.sampled_from([1, 2, 4, 8]))
    sets = draw(st.sampled_from([4, 16, 64]))
    return CacheConfig(size=sets * associativity * 64, associativity=associativity)


@st.composite
def block_streams(draw):
    count = draw(st.integers(1, 300))
    footprint = draw(st.integers(1, 256))
    return [
        (draw(st.integers(0, footprint)), draw(st.booleans())) for _ in range(count)
    ]


class TestCacheInvariants:
    @given(cache_configs(), block_streams())
    @settings(max_examples=50, deadline=None)
    def test_accounting_identities(self, config, stream):
        cache = Cache(config)
        for block, is_write in stream:
            cache.access_block(block, is_write)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.read_accesses + stats.write_accesses == stats.accesses
        assert stats.read_misses + stats.write_misses == stats.misses
        assert stats.write_backs <= stats.replacements
        assert stats.replacements <= stats.misses

    @given(cache_configs(), block_streams())
    @settings(max_examples=50, deadline=None)
    def test_capacity_bound(self, config, stream):
        cache = Cache(config)
        for block, is_write in stream:
            cache.access_block(block, is_write)
        # Resident blocks never exceed capacity.
        resident = sum(
            1 for block in {b for b, _ in stream} if cache.contains(block)
        )
        assert resident <= config.num_sets * config.associativity

    @given(cache_configs(), block_streams())
    @settings(max_examples=50, deadline=None)
    def test_misses_at_least_cold(self, config, stream):
        cache = Cache(config)
        for block, is_write in stream:
            cache.access_block(block, is_write)
        unique = len({block for block, _ in stream})
        assert cache.stats.misses >= unique or config.num_sets * config.associativity >= unique

    @given(block_streams())
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_worse_fully_assoc(self, stream):
        """With full associativity and LRU, inclusion property holds:
        a larger cache never misses more."""
        unique = max(256, len({b for b, _ in stream}))
        small = Cache(CacheConfig(4 * 64, 4))
        large = Cache(CacheConfig(16 * 64, 16))
        for block, is_write in stream:
            small.access_block(block % 4096, is_write)
            large.access_block(block % 4096, is_write)
        # LRU stack property applies per set only when set counts match;
        # here both have one... small=1 set of 4, large=1 set of 16.
        assert large.stats.misses <= small.stats.misses


class TestHierarchyInvariants:
    @given(block_streams())
    @settings(max_examples=30, deadline=None)
    def test_l2_accesses_bounded_by_l1_misses(self, stream):
        hierarchy = CacheHierarchy(CacheConfig(1024, 2), CacheConfig(8192, 4))
        trace = Trace(
            [
                MemoryRequest(
                    i,
                    block * 64,
                    Operation.WRITE if is_write else Operation.READ,
                    8,
                )
                for i, (block, is_write) in enumerate(stream)
            ]
        )
        hierarchy.run(trace)
        l1 = hierarchy.l1_stats
        l2 = hierarchy.l2_stats
        # Each L1 miss causes one fill read, plus at most one write-back.
        assert l2.accesses <= l1.misses + l1.write_backs
        assert l2.read_accesses == l1.misses
        assert l2.write_accesses == l1.write_backs
