"""Unit tests for N-level cache hierarchies."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.multilevel import MultiLevelCache
from repro.core.trace import Trace

from ..conftest import req


def configs(*sizes, assoc=4, block=64):
    return [CacheConfig(size, assoc, block) for size in sizes]


class TestConstruction:
    def test_needs_levels(self):
        with pytest.raises(ValueError):
            MultiLevelCache([])

    def test_block_size_consistency(self):
        with pytest.raises(ValueError):
            MultiLevelCache(
                [CacheConfig(1024, 2, 32), CacheConfig(4096, 2, 64)]
            )

    def test_depth(self):
        assert MultiLevelCache(configs(1024, 4096, 16384)).depth == 3


class TestAccessSemantics:
    def test_hit_at_l1_stops(self):
        cache = MultiLevelCache(configs(1024, 4096))
        cache.access(req(0, 0x100))
        cache.access(req(1, 0x100))
        assert cache.level_stats(0).hits == 1
        assert cache.level_stats(1).accesses == 1  # only the first fill

    def test_cold_miss_reaches_memory(self):
        cache = MultiLevelCache(configs(1024, 4096))
        cache.access(req(0, 0x100))
        assert cache.memory_reads == 1
        assert cache.memory_writes == 0

    def test_dirty_eviction_cascades(self):
        cache = MultiLevelCache(configs(2 * 64, 2 * 64, 4096, assoc=2))
        cache.access(req(0, 0x0000, "W"))
        cache.access(req(1, 0x1000))
        cache.access(req(2, 0x2000))  # evicts dirty 0x0 from L1 into L2
        assert cache.level_stats(0).write_backs == 1
        assert cache.level_stats(1).write_accesses == 1

    def test_three_levels_filter_progressively(self):
        cache = MultiLevelCache(configs(1024, 8192, 65536))
        trace = Trace([req(i, (i % 512) * 64) for i in range(2048)])
        cache.run(trace)
        misses = [cache.level_stats(i).misses for i in range(3)]
        assert misses[0] >= misses[1] >= misses[2]

    def test_matches_two_level_hierarchy(self):
        """The N-level generalization reproduces the Sec. V two-level sim."""
        requests = [req(i, (i * 97) % 8192 * 8) for i in range(4000)]
        reference = CacheHierarchy(CacheConfig(1024, 2), CacheConfig(16384, 8))
        reference.run(requests)
        generalized = MultiLevelCache(
            [CacheConfig(1024, 2), CacheConfig(16384, 8)]
        )
        generalized.run(requests)
        assert generalized.level_stats(0).misses == reference.l1_stats.misses
        assert generalized.level_stats(0).write_backs == reference.l1_stats.write_backs
        assert generalized.level_stats(1).misses == reference.l2_stats.misses

    def test_extra_level_reduces_memory_traffic(self):
        two = MultiLevelCache(configs(1024, 8192))
        three = MultiLevelCache(configs(1024, 8192, 131072))
        trace = Trace([req(i, (i % 1500) * 64) for i in range(6000)])
        two.run(trace)
        three.run(trace)
        assert (
            three.memory_reads + three.memory_writes
            <= two.memory_reads + two.memory_writes
        )

    def test_miss_rates_list(self):
        cache = MultiLevelCache(configs(1024, 4096))
        cache.access(req(0, 0))
        rates = cache.miss_rates()
        assert len(rates) == 2
        assert rates[0] == 1.0
