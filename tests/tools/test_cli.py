"""Tests for the trace/profile command-line tools."""

import pytest

from repro.core.trace import Trace
from repro.tools import profile as profile_tool
from repro.tools import trace as trace_tool


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.mtr.gz"
    assert trace_tool.main(
        ["generate", "crypto1", str(path), "--requests", "2000"]
    ) == 0
    return path


class TestTraceTool:
    def test_list(self, capsys):
        assert trace_tool.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hevc1" in out and "gobmk" in out

    def test_generate_writes_file(self, trace_file):
        assert trace_file.exists()
        assert len(Trace.load_binary(trace_file)) == 2000

    def test_generate_unknown_workload(self, tmp_path, capsys):
        code = trace_tool.main(["generate", "doom", str(tmp_path / "x.mtr.gz")])
        assert code == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_info(self, trace_file, capsys):
        assert trace_tool.main(["info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "requests:    2,000" in out
        assert "sorted:      True" in out

    def test_convert_roundtrip(self, trace_file, tmp_path, capsys):
        csv_path = tmp_path / "t.csv.gz"
        assert trace_tool.main(["convert", str(trace_file), str(csv_path)]) == 0
        back_path = tmp_path / "t2.mtr.gz"
        assert trace_tool.main(["convert", str(csv_path), str(back_path)]) == 0
        assert Trace.load_binary(back_path) == Trace.load_binary(trace_file)

    def test_seed_changes_trace(self, tmp_path):
        a, b = tmp_path / "a.mtr.gz", tmp_path / "b.mtr.gz"
        trace_tool.main(["generate", "crypto1", str(a), "--requests", "500",
                         "--seed", "1"])
        trace_tool.main(["generate", "crypto1", str(b), "--requests", "500",
                         "--seed", "2"])
        assert Trace.load_binary(a) != Trace.load_binary(b)


class TestProfileTool:
    def test_create_info_synthesize(self, trace_file, tmp_path, capsys):
        profile_path = tmp_path / "p.mprof.gz"
        assert profile_tool.main(
            ["create", str(trace_file), str(profile_path)]
        ) == 0
        assert profile_path.exists()

        assert profile_tool.main(["info", str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "leaves:" in out
        assert "requests:    2,000" in out

        clone_path = tmp_path / "clone.mtr.gz"
        assert profile_tool.main(
            ["synthesize", str(profile_path), str(clone_path), "--seed", "3"]
        ) == 0
        clone = Trace.load_binary(clone_path)
        original = Trace.load_binary(trace_file)
        assert len(clone) == len(original)
        assert clone.read_count() == original.read_count()

    def test_anonymous_profile_hides_name(self, trace_file, tmp_path, capsys):
        profile_path = tmp_path / "p.mprof.gz"
        profile_tool.main(
            ["create", str(trace_file), str(profile_path), "--anonymous"]
        )
        profile_tool.main(["info", str(profile_path)])
        out = capsys.readouterr().out
        assert "(withheld)" in out

    def test_stm_leaf_model(self, trace_file, tmp_path):
        profile_path = tmp_path / "stm.mprof.gz"
        assert profile_tool.main(
            ["create", str(trace_file), str(profile_path), "--leaf-model", "stm"]
        ) == 0
        clone_path = tmp_path / "clone.mtr.gz"
        assert profile_tool.main(
            ["synthesize", str(profile_path), str(clone_path)]
        ) == 0
        assert len(Trace.load_binary(clone_path)) == 2000

    def test_request_count_hierarchy(self, trace_file, tmp_path):
        profile_path = tmp_path / "rc.mprof.gz"
        assert profile_tool.main(
            ["create", str(trace_file), str(profile_path),
             "--temporal", "request_count", "--interval", "500"]
        ) == 0

    def test_fixed_spatial(self, trace_file, tmp_path):
        profile_path = tmp_path / "fx.mprof.gz"
        assert profile_tool.main(
            ["create", str(trace_file), str(profile_path),
             "--spatial", "fixed", "--block-size", "8192"]
        ) == 0

    def test_non_strict_synthesis(self, trace_file, tmp_path):
        profile_path = tmp_path / "p.mprof.gz"
        profile_tool.main(["create", str(trace_file), str(profile_path)])
        clone_path = tmp_path / "loose.mtr.gz"
        assert profile_tool.main(
            ["synthesize", str(profile_path), str(clone_path), "--no-strict"]
        ) == 0
        assert len(Trace.load_binary(clone_path)) > 0
