"""Tests for the SoC command-line tool."""

import pytest

from repro.tools import soc as soc_tool


class TestSocRun:
    def test_single_device(self, capsys):
        code = soc_tool.main(
            ["run", "--device", "cpu=crypto1", "--requests", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cpu" in out
        assert "memory:" in out

    def test_multiple_devices(self, capsys):
        code = soc_tool.main(
            [
                "run",
                "--device", "cpu=crypto1",
                "--device", "dpu=fbc-linear1",
                "--requests", "800",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cpu" in out and "dpu" in out

    def test_profile_file_source(self, tmp_path, capsys):
        from repro.core.profiler import build_profile
        from repro.core.serialization import save_profile
        from repro.workloads.registry import workload_trace

        profile_path = tmp_path / "ip.mprof.gz"
        save_profile(build_profile(workload_trace("hevc1", 1_000)), profile_path)
        code = soc_tool.main(["run", "--device", f"ip={profile_path}"])
        assert code == 0
        assert "ip" in capsys.readouterr().out

    def test_no_devices_errors(self, capsys):
        assert soc_tool.main(["run"]) == 1
        assert "at least one" in capsys.readouterr().err

    def test_unknown_source_errors(self, capsys):
        assert soc_tool.main(["run", "--device", "x=doom"]) == 1
        assert "neither" in capsys.readouterr().err

    def test_bad_device_spec_rejected(self):
        with pytest.raises(SystemExit):
            soc_tool.main(["run", "--device", "nodash"])

    def test_chargecache_and_channels_flags(self, capsys):
        code = soc_tool.main(
            [
                "run",
                "--device", "dpu=fbc-linear1",
                "--requests", "600",
                "--chargecache",
                "--channels", "2",
            ]
        )
        assert code == 0
