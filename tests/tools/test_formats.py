"""Suffix dispatch in the trace tool's ``load_any``/``save_any``."""

from pathlib import Path

import pytest

from repro.core.trace import Trace
from repro.tools.trace import load_any, save_any


@pytest.mark.parametrize("suffix", ["csv", "csv.gz", "mtr", "mtr.gz"])
def test_roundtrip_every_suffix(tmp_path, mixed_trace, suffix):
    path = tmp_path / f"trace.{suffix}"
    size = save_any(mixed_trace, path)
    assert size == path.stat().st_size
    assert load_any(path) == mixed_trace


def test_plain_csv_is_human_readable(tmp_path, mixed_trace):
    # Regression: everything without a .csv.gz suffix used to be
    # treated as the binary format, so "trace.csv" silently came out
    # as struct-packed bytes.
    path = tmp_path / "trace.csv"
    save_any(mixed_trace, path)
    assert path.read_text().startswith("timestamp,address,operation,size")


def test_unknown_suffix_rejected_on_save(tmp_path, mixed_trace):
    with pytest.raises(ValueError, match="unrecognized trace suffix"):
        save_any(mixed_trace, tmp_path / "trace.json")


def test_unknown_suffix_rejected_on_load(tmp_path):
    # Regression: an unknown suffix used to fall through to the binary
    # loader and fail with a confusing "not a Mocktails binary trace".
    path = tmp_path / "trace.txt"
    path.write_text("whatever")
    with pytest.raises(ValueError, match="unrecognized trace suffix"):
        load_any(path)


def test_error_names_the_known_suffixes(tmp_path):
    with pytest.raises(ValueError) as excinfo:
        load_any(Path(tmp_path / "trace.dat"))
    message = str(excinfo.value)
    for suffix in (".csv", ".csv.gz", ".mtr", ".mtr.gz"):
        assert suffix in message
