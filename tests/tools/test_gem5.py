"""Tests for gem5 TrafficGen trace interop."""

import pytest

from repro.tools.gem5 import load_gem5_trace, save_gem5_trace

from ..conftest import req
from repro.core.trace import Trace


class TestGem5Roundtrip:
    def test_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "trace.txt"
        count = save_gem5_trace(mixed_trace, path)
        assert count == len(mixed_trace)
        assert load_gem5_trace(path) == mixed_trace

    def test_gzip_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "trace.txt.gz"
        save_gem5_trace(mixed_trace, path)
        assert load_gem5_trace(path) == mixed_trace

    def test_tick_conversion(self, tmp_path):
        trace = Trace([req(7, 0x100, "R", 64)])
        path = tmp_path / "t.txt"
        save_gem5_trace(trace, path, ticks_per_cycle=500)
        first_line = path.read_text().splitlines()[0]
        assert first_line.split()[0] == "3500"
        assert load_gem5_trace(path, ticks_per_cycle=500) == trace

    def test_command_letters(self, tmp_path):
        trace = Trace([req(0, 0x0, "R"), req(1, 0x40, "W")])
        path = tmp_path / "t.txt"
        save_gem5_trace(trace, path)
        lines = path.read_text().splitlines()
        assert lines[0].split()[1] == "r"
        assert lines[1].split()[1] == "w"

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n\n1000 r 256 64\n")
        trace = load_gem5_trace(path)
        assert len(trace) == 1
        assert trace[0].timestamp == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1000 r 256\n")
        with pytest.raises(ValueError):
            load_gem5_trace(path)

    def test_unknown_command_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1000 x 256 64\n")
        with pytest.raises(ValueError):
            load_gem5_trace(path)

    def test_bad_ticks_rejected(self, tmp_path, mixed_trace):
        with pytest.raises(ValueError):
            save_gem5_trace(mixed_trace, tmp_path / "t.txt", ticks_per_cycle=0)
        with pytest.raises(ValueError):
            load_gem5_trace(tmp_path / "t.txt", ticks_per_cycle=-1)
