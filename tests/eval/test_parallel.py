"""Serial-vs-parallel equivalence for the process-pool experiment runner.

The contract of :mod:`repro.eval.parallel` is that prewarming the caches
from worker processes changes nothing but wall-clock time: the figure
runners must return bit-identical results. These tests run at a tiny
request count so the parallel path (real worker processes) stays fast.
"""

import pytest

from repro.eval import comparison, experiments
from repro.eval.comparison import clear_cache
from repro.eval.parallel import (
    DramJob,
    SizeJob,
    SpecJob,
    default_processes,
    jobs_for,
    prewarm,
    run_experiment,
)
from repro.workloads.registry import TABLE_II_WORKLOADS
from repro.workloads.spec import FIG15_BENCHMARKS, SPEC_BENCHMARKS

REQUESTS = 1200
SPEC_REQUESTS = 1500
FIG14_SUBSET = ("gobmk", "mcf")


def _clear_all_caches():
    clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    experiments._SPEC_SIZE_CACHE.clear()


@pytest.fixture(autouse=True)
def fresh_caches():
    _clear_all_caches()
    yield
    _clear_all_caches()


# ---------------------------------------------------------------------------
# Job-list construction
# ---------------------------------------------------------------------------


def test_fig6_jobs_cover_all_workloads():
    jobs = jobs_for("fig6", REQUESTS)
    assert [job.name for job in jobs] == list(TABLE_II_WORKLOADS)
    assert all(isinstance(job, DramJob) for job in jobs)
    assert all(job.num_requests == REQUESTS for job in jobs)


def test_fig13_jobs_cross_workloads_with_intervals():
    intervals = (100_000, 500_000)
    jobs = jobs_for("fig13", REQUESTS, intervals=intervals)
    assert len(jobs) == len(intervals) * len(TABLE_II_WORKLOADS)
    assert {job.interval for job in jobs} == set(intervals)
    assert all(not job.include_stm for job in jobs)


def test_fig13_jobs_default_to_runner_intervals():
    jobs = jobs_for("fig13", REQUESTS)
    assert {job.interval for job in jobs} == set(experiments.FIG13_INTERVALS)


def test_spec_jobs_honour_benchmark_subset():
    assert [job.benchmark for job in jobs_for("fig14", REQUESTS)] == list(
        SPEC_BENCHMARKS
    )
    subset = jobs_for("fig14", REQUESTS, benchmarks=FIG14_SUBSET)
    assert [job.benchmark for job in subset] == list(FIG14_SUBSET)
    assert all(isinstance(job, SpecJob) for job in subset)
    fig15 = jobs_for("fig15", REQUESTS)
    assert [job.benchmark for job in fig15] == list(FIG15_BENCHMARKS)
    fig17 = jobs_for("fig17", REQUESTS)
    assert all(isinstance(job, SizeJob) for job in fig17)


def test_unknown_experiment_has_no_jobs():
    assert jobs_for("fig2", REQUESTS) == []
    assert jobs_for("nonsense", REQUESTS) == []


def test_default_processes_positive():
    assert default_processes() >= 1


# ---------------------------------------------------------------------------
# Prewarm semantics
# ---------------------------------------------------------------------------


def test_prewarm_serial_fills_cache_and_skips_cached():
    jobs = [DramJob("hevc1", REQUESTS), DramJob("trex1", REQUESTS)]
    assert prewarm(jobs, processes=1) == 2
    assert prewarm(jobs, processes=1) == 0  # second call: everything cached
    # duplicates are executed once
    _clear_all_caches()
    assert prewarm(jobs + jobs, processes=1) == 2


def test_prewarm_serial_matches_direct_call():
    direct = comparison.dram_comparison("hevc1", REQUESTS)
    clear_cache()
    prewarm([DramJob("hevc1", REQUESTS)], processes=1)
    warmed = comparison.dram_comparison("hevc1", REQUESTS)
    assert warmed.baseline == direct.baseline
    assert warmed.mcc == direct.mcc
    assert warmed.stm == direct.stm


# ---------------------------------------------------------------------------
# Bit-identical figures: serial vs worker processes
# ---------------------------------------------------------------------------


def test_fig6_parallel_bit_identical():
    serial = experiments.figure_6(REQUESTS)

    _clear_all_caches()
    executed = prewarm(jobs_for("fig6", REQUESTS), processes=2)
    assert executed == len(TABLE_II_WORKLOADS)
    parallel = experiments.figure_6(REQUESTS)

    assert parallel == serial


def test_fig14_parallel_bit_identical():
    serial = experiments.figure_14(SPEC_REQUESTS, benchmarks=FIG14_SUBSET)

    _clear_all_caches()
    executed = prewarm(
        jobs_for("fig14", SPEC_REQUESTS, benchmarks=FIG14_SUBSET), processes=2
    )
    assert executed == len(FIG14_SUBSET)
    parallel = experiments.figure_14(SPEC_REQUESTS, benchmarks=FIG14_SUBSET)

    assert parallel == serial


def test_run_experiment_matches_serial_runner():
    serial = experiments.figure_17(SPEC_REQUESTS, benchmarks=FIG14_SUBSET)
    _clear_all_caches()
    combined = run_experiment(
        "fig17", SPEC_REQUESTS, processes=2, benchmarks=FIG14_SUBSET
    )
    assert combined == serial


# ---------------------------------------------------------------------------
# Cache-merge path: a partial prewarm leaves only the gap to compute
# ---------------------------------------------------------------------------


def test_figure_computes_only_jobs_missing_from_prewarm():
    from repro import obs

    jobs = jobs_for("fig10", REQUESTS)
    assert len(jobs) == 2  # fbc-linear1 + fbc-tiled1
    prewarm(jobs[:1], processes=1)  # warm exactly one of the two trios

    obs.enable()
    try:
        experiments.figure_10(REQUESTS)
        counters = obs.active().snapshot()["counters"]
    finally:
        obs.disable()

    # The runner computed only the missing trio and served the
    # prewarmed one from the merged cache.
    assert counters["eval.runs.computed"] == 1
    assert counters["eval.runs.cached"] == 1


def test_prewarm_merges_worker_results_into_runner_caches():
    from repro import obs

    jobs = jobs_for("fig6", REQUESTS)
    subset = jobs[:3]
    prewarm(subset, processes=2)  # via real worker processes
    for job in subset:
        key = (job.name, job.num_requests, job.seed, job.interval, job.include_stm, None)
        assert key in comparison._run_cache

    obs.enable()
    try:
        executed = prewarm(jobs, processes=1)
        counters = obs.active().snapshot()["counters"]
    finally:
        obs.disable()

    # Completing the sweep only executes the jobs the subset lacked.
    assert executed == len(jobs) - len(subset)
    assert counters["eval.jobs.cached"] == len(subset)
    assert counters["eval.jobs.executed"] == len(jobs) - len(subset)
