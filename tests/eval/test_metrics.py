"""Unit tests for evaluation metrics."""

import pytest

from repro.eval.metrics import (
    GEOMEAN_FLOOR,
    absolute_error,
    arithmetic_mean,
    geomean_percent_error,
    geometric_mean,
    percent_error,
    summary_errors,
)


class TestPercentError:
    def test_exact_match(self):
        assert percent_error(10, 10) == 0.0

    def test_overshoot(self):
        assert percent_error(11, 10) == pytest.approx(10.0)

    def test_undershoot(self):
        assert percent_error(9, 10) == pytest.approx(10.0)

    def test_zero_reference_zero_measured(self):
        assert percent_error(0, 0) == 0.0

    def test_zero_reference_nonzero_measured(self):
        assert percent_error(5, 0) == 100.0

    def test_negative_reference(self):
        assert percent_error(-9, -10) == pytest.approx(10.0)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_zero_floored(self):
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_zero_floored_at_documented_floor(self):
        # Regression: the old 1e-9 floor let a single zero collapse the
        # mean to ~0 (sqrt(1e-9 * 50) ~= 2e-4), burying every other
        # value. The documented 0.01 floor keeps zeros from dominating.
        assert GEOMEAN_FLOOR == pytest.approx(0.01)
        assert geometric_mean([0.0, 50.0]) == pytest.approx((0.01 * 50.0) ** 0.5)
        assert geometric_mean([0.0, 50.0]) > 0.5

    def test_explicit_floor_overrides_default(self):
        assert geometric_mean([0.0, 50.0], floor=1e-6) == pytest.approx(
            (1e-6 * 50.0) ** 0.5
        )

    def test_floor_must_be_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0], floor=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_geomean_leq_mean(self):
        values = [1.0, 2.0, 3.0, 10.0]
        assert geometric_mean(values) <= arithmetic_mean(values)


class TestAggregates:
    def test_geomean_percent_error(self):
        pairs = [(11, 10), (9, 10)]  # both 10% error
        assert geomean_percent_error(pairs) == pytest.approx(10.0)

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_absolute_error(self):
        assert absolute_error(3, 5) == 2

    def test_summary_errors(self):
        reference = {"a": 10.0, "b": 20.0}
        measured = {"a": 11.0, "b": 20.0, "c": 5.0}
        errors = summary_errors(measured, reference)
        assert errors == {"a": pytest.approx(10.0), "b": 0.0}
