"""Tests for the markdown report generator (tiny scale)."""

from repro.eval.comparison import clear_cache
from repro.eval.report import build_report, write_report


class TestReport:
    def test_build_report_structure(self):
        clear_cache()
        report = build_report(num_requests=1_200, spec_benchmarks=["hmmer"])
        assert report.startswith("# Mocktails reproduction report")
        for heading in ("Fig. 6", "Fig. 9", "Fig. 10", "Fig. 13", "Fig. 14", "Fig. 17"):
            assert heading in report
        # Markdown tables present.
        assert "| device |" in report
        assert "Overall profile/trace size ratio" in report

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", num_requests=1_200,
                            spec_benchmarks=["hmmer"])
        assert path.exists()
        assert path.read_text().startswith("# Mocktails reproduction report")
