"""Unit tests for the cached comparison runner (small scale)."""

from repro.eval.comparison import (
    WorkloadRun,
    baseline_trace,
    clear_cache,
    dram_comparison,
)


SMALL = 1_500


class TestBaselineTrace:
    def test_cached_identity(self):
        clear_cache()
        a = baseline_trace("crypto1", SMALL)
        b = baseline_trace("crypto1", SMALL)
        assert a is b

    def test_distinct_keys(self):
        a = baseline_trace("crypto1", SMALL)
        b = baseline_trace("crypto1", SMALL + 1)
        assert a is not b


class TestDramComparison:
    def test_run_structure(self):
        clear_cache()
        run = dram_comparison("fbc-linear1", SMALL)
        assert isinstance(run, WorkloadRun)
        assert run.device == "DPU"
        assert run.baseline.read_bursts > 0
        assert run.mcc.read_bursts > 0
        assert run.stm is not None

    def test_cached_identity(self):
        a = dram_comparison("fbc-linear1", SMALL)
        b = dram_comparison("fbc-linear1", SMALL)
        assert a is b

    def test_without_stm(self):
        run = dram_comparison("fbc-linear1", SMALL, include_stm=False)
        assert run.stm is None

    def test_strict_convergence_means_equal_bursts(self):
        run = dram_comparison("fbc-linear1", SMALL)
        # Sizes and op counts are preserved exactly, so burst totals of
        # synthesis match the baseline whenever leaves are op-pure.
        total_baseline = run.baseline.read_bursts + run.baseline.write_bursts
        total_mcc = run.mcc.read_bursts + run.mcc.write_bursts
        assert abs(total_mcc - total_baseline) <= total_baseline * 0.02

    def test_interval_changes_profile(self):
        small = dram_comparison("hevc1", SMALL, interval=100_000, include_stm=False)
        large = dram_comparison("hevc1", SMALL, interval=1_000_000, include_stm=False)
        assert small.interval != large.interval
