"""Unit tests for text table rendering."""

from repro.eval.reporting import format_cell, format_table, print_table


class TestFormatCell:
    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_int_thousands(self):
        assert format_cell(1234567) == "1,234,567"

    def test_string_passthrough(self):
        assert format_cell("hello") == "hello"


class TestFormatTable:
    def test_header_and_rows(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_alignment(self):
        table = format_table(["x"], [["longvalue"], ["s"]])
        lines = table.splitlines()
        assert len(lines[2]) >= len("longvalue")

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert len(table.splitlines()) == 2

    def test_print_table(self, capsys):
        print_table("Title", ["h"], [["v"]])
        out = capsys.readouterr().out
        assert "== Title ==" in out
        assert "v" in out
