"""Smoke tests for the per-figure experiment runners (tiny scale)."""

import pytest

from repro.eval import experiments
from repro.eval.comparison import clear_cache

SMALL = 1_200


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    yield


class TestMotivationExperiments:
    def test_figure_2_structure(self):
        records = experiments.figure_2(SMALL)
        assert records
        for record in records[:5]:
            assert 0 <= record["offset"] < 4096
            assert record["size"] > 0
            assert record["operation"] in ("R", "W")

    def test_figure_3_bins(self):
        bins = experiments.figure_3(SMALL)
        assert bins
        assert all(count > 0 for _, count in bins)

    def test_table_1(self):
        data = experiments.table_1(SMALL)
        assert data["partition_size"] >= 2
        assert len(data["one_partition"]) == data["partition_size"]
        assert data["one_partition"][0][0] is None  # first stride undefined


class TestDramExperiments:
    def test_figure_6_structure(self):
        result = experiments.figure_6(SMALL)
        assert set(result) == {"CPU", "DPU", "GPU", "VPU"}
        for device in result.values():
            assert set(device) == {"read_bursts", "write_bursts"}
            for metric in device.values():
                assert metric["mcc"] >= 0 and metric["stm"] >= 0

    def test_figure_7_structure(self):
        result = experiments.figure_7(SMALL)
        for device in result.values():
            for queue in ("read_queue", "write_queue"):
                assert set(device[queue]) == {"baseline", "mcc", "stm"}

    def test_figure_8_channels(self):
        result = experiments.figure_8(SMALL)
        assert set(result) == {0, 1, 2, 3}
        for channel in result.values():
            assert set(channel) == {"baseline", "mcc", "stm"}

    def test_figure_9_errors_bounded(self):
        result = experiments.figure_9(SMALL)
        for device in result.values():
            for metric in device.values():
                assert 0 <= metric["mcc"] <= 200

    def test_figure_10_counts(self):
        result = experiments.figure_10(SMALL)
        assert set(result) == {"fbc-linear1", "fbc-tiled1"}
        for workload in result.values():
            assert workload["read_row_hits"]["baseline"] > 0

    def test_figure_11_channels(self):
        result = experiments.figure_11(SMALL)
        for workload in result.values():
            assert set(workload) == {0, 1, 2, 3}

    def test_figure_12_banks(self):
        result = experiments.figure_12(SMALL)
        assert set(result) == {"read", "write"}
        reads = result["read"][0]["baseline"]
        assert sum(reads.values()) > 0

    def test_figure_13_sweep(self):
        result = experiments.figure_13(SMALL, intervals=(100_000, 500_000))
        for device, series in result.items():
            assert [interval for interval, _ in series] == [100_000, 500_000]
            assert all(error >= 0 for _, error in series)


class TestCacheExperiments:
    BENCHMARKS = ("hmmer", "libquantum")

    def test_spec_synthetics(self):
        traces = experiments.spec_synthetics("hmmer", SMALL)
        assert set(traces) == {"baseline", "dynamic", "fixed4k", "hrd"}
        assert all(len(t) == SMALL for t in traces.values())

    def test_figure_14(self):
        result = experiments.figure_14(SMALL, benchmarks=self.BENCHMARKS)
        assert set(result) == {"16KB 2-way", "32KB 4-way"}
        for config in result.values():
            for series in experiments.SEC5_SERIES:
                assert config[series]["l1_miss_rate"] >= 0

    def test_figure_15(self):
        result = experiments.figure_15(
            SMALL, benchmarks=("hmmer",), associativities=(2, 4)
        )
        assert set(result) == {"hmmer"}
        assert set(result["hmmer"]) == {2, 4}
        assert set(result["hmmer"][2]) == {"baseline", "dynamic", "hrd"}

    def test_figure_16(self):
        result = experiments.figure_16(
            SMALL, benchmarks=("hmmer",), associativities=(2,)
        )
        assert result["hmmer"][2]["baseline"] >= 0

    def test_figure_17(self):
        result = experiments.figure_17(SMALL, benchmarks=self.BENCHMARKS)
        for sizes in result.values():
            assert sizes["trace"] > 0
            assert sizes["dynamic"] > 0
            assert sizes["fixed4k"] > 0
