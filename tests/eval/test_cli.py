"""Tests for the ``python -m repro.eval`` command-line interface."""

import json

import pytest

from repro.eval import experiments
from repro.eval.__main__ import EXPERIMENTS, main
from repro.eval.comparison import clear_cache


def _clear_all_caches():
    clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    experiments._SPEC_SIZE_CACHE.clear()


class TestEvalCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig9", "fig17", "table1", "ext-soc"):
            assert name in out

    def test_experiment_registry_complete(self):
        # Every paper exhibit plus the extension studies.
        expected = {f"fig{i}" for i in list(range(2, 4)) + list(range(6, 18))}
        expected |= {"table1", "ext-chargecache", "ext-soc", "sampling"}
        assert set(EXPERIMENTS) == expected

    def test_run_cheap_experiment(self, capsys):
        clear_cache()
        assert main(["run", "fig3", "--requests", "1500"]) == 0
        out = capsys.readouterr().out
        assert "=== fig3" in out
        assert "requests" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--requests", "1500"]) == 0
        assert "stride" in capsys.readouterr().out

    def test_run_ext_soc(self, capsys):
        assert main(["run", "ext-soc", "--requests", "600"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth_share" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_quick_with_metrics_and_events(self, tmp_path, capsys):
        import json

        from repro import obs

        clear_cache()
        manifest_path = tmp_path / "run.json"
        events_path = tmp_path / "events.jsonl"
        assert main([
            "quick", "fig3", "--requests", "1500",
            "--metrics-out", str(manifest_path),
            "--trace-events", str(events_path),
        ]) == 0
        assert obs.active() is None  # CLI tears the registry down

        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "mocktails-run-manifest"
        assert manifest["scale"] == {"requests": 1500, "jobs": 1}
        assert "fig3" in manifest["phases_seconds"]
        assert manifest["experiments"] == ["fig3"]

        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        types = {event["type"] for event in events}
        assert {"phase.start", "phase.end"} <= types

        out = capsys.readouterr().out
        assert "wrote run manifest" in out


class TestResultCache:
    def test_warm_run_hits_and_json_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"

        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200",
            "--cache-dir", cache_dir, "--json-out", str(cold_json),
        ]) == 0
        cold_out = capsys.readouterr().out
        assert "cache: 0 hits, 2 misses" in cold_out

        _clear_all_caches()  # simulate a fresh process
        assert main([
            "run", "fig10", "--requests", "1200",
            "--cache-dir", cache_dir, "--json-out", str(warm_json),
        ]) == 0
        warm_out = capsys.readouterr().out
        assert "cache: 2 hits, 0 misses" in warm_out

        assert cold_json.read_bytes() == warm_json.read_bytes()

    def test_no_cache_flag_disables_store(self, tmp_path, capsys):
        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200",
            "--cache-dir", str(tmp_path / "cache"), "--no-cache",
        ]) == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_cache_stats_on_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path / "c"), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out
        assert "blobs:      0" in out

    def test_cache_verify_detects_and_evicts_corruption(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()

        blobs = [p for p in (cache_dir / "objects").rglob("*") if p.is_file()]
        blobs[0].write_bytes(b"deliberately corrupted")

        # --keep-corrupt reports without evicting and exits non-zero.
        assert main([
            "cache", "--cache-dir", str(cache_dir), "verify", "--keep-corrupt",
        ]) == 1
        assert "corrupt blob" in capsys.readouterr().out
        assert blobs[0].exists()

        # Default verify evicts so the next run recomputes.
        assert main(["cache", "--cache-dir", str(cache_dir), "verify"]) == 0
        out = capsys.readouterr().out
        assert "evicted (will recompute)" in out
        assert not blobs[0].exists()

        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200", "--cache-dir", str(cache_dir),
        ]) == 0
        assert "1 hits, 1 misses" in capsys.readouterr().out

    def test_cache_gc_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()

        assert main([
            "cache", "--cache-dir", str(cache_dir), "gc", "--max-bytes", "0",
        ]) == 0
        assert "evicted 2 blobs" in capsys.readouterr().out

        _clear_all_caches()
        assert main([
            "run", "fig10", "--requests", "1200", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(cache_dir), "clear"]) == 0
        assert "removed 2 blobs" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(cache_dir), "stats"]) == 0
        assert "blobs:      0" in capsys.readouterr().out

    def test_json_out_is_valid_json(self, tmp_path, capsys):
        _clear_all_caches()
        out_path = tmp_path / "results.json"
        assert main([
            "run", "fig3", "--requests", "1500",
            "--no-cache", "--json-out", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert set(data) == {"fig3"}
        assert data["fig3"]  # non-empty bins
