"""Tests for the ``python -m repro.eval`` command-line interface."""

import pytest

from repro.eval.__main__ import EXPERIMENTS, main
from repro.eval.comparison import clear_cache


class TestEvalCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig9", "fig17", "table1", "ext-soc"):
            assert name in out

    def test_experiment_registry_complete(self):
        # Every paper exhibit plus the extension studies.
        expected = {f"fig{i}" for i in list(range(2, 4)) + list(range(6, 18))}
        expected |= {"table1", "ext-chargecache", "ext-soc"}
        assert set(EXPERIMENTS) == expected

    def test_run_cheap_experiment(self, capsys):
        clear_cache()
        assert main(["run", "fig3", "--requests", "1500"]) == 0
        out = capsys.readouterr().out
        assert "=== fig3" in out
        assert "requests" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--requests", "1500"]) == 0
        assert "stride" in capsys.readouterr().out

    def test_run_ext_soc(self, capsys):
        assert main(["run", "ext-soc", "--requests", "600"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth_share" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_quick_with_metrics_and_events(self, tmp_path, capsys):
        import json

        from repro import obs

        clear_cache()
        manifest_path = tmp_path / "run.json"
        events_path = tmp_path / "events.jsonl"
        assert main([
            "quick", "fig3", "--requests", "1500",
            "--metrics-out", str(manifest_path),
            "--trace-events", str(events_path),
        ]) == 0
        assert obs.active() is None  # CLI tears the registry down

        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "mocktails-run-manifest"
        assert manifest["scale"] == {"requests": 1500, "jobs": 1}
        assert "fig3" in manifest["phases_seconds"]
        assert manifest["experiments"] == ["fig3"]

        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        types = {event["type"] for event in events}
        assert {"phase.start", "phase.end"} <= types

        out = capsys.readouterr().out
        assert "wrote run manifest" in out
