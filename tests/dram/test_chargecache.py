"""Unit tests for the ChargeCache extension."""

import pytest

from repro.dram.chargecache import ChargeCache, ChargeCacheConfig
from repro.dram.config import MemoryConfig
from repro.sim.driver import simulate_trace
from repro.core.trace import Trace

from ..conftest import req


class TestChargeCacheConfig:
    def test_defaults(self):
        config = ChargeCacheConfig()
        assert config.capacity > 0
        assert config.expiry_cycles > 0

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0},
        {"expiry_cycles": 0},
        {"t_rcd_saving": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChargeCacheConfig(**kwargs)


class TestChargeCacheTable:
    def test_miss_on_empty(self):
        cache = ChargeCache(ChargeCacheConfig())
        assert not cache.lookup(0, 5, now=100)
        assert cache.stats.lookups == 1
        assert cache.stats.hits == 0

    def test_hit_after_insert(self):
        cache = ChargeCache(ChargeCacheConfig())
        cache.insert(0, 5, now=100)
        assert cache.lookup(0, 5, now=200)
        assert cache.stats.hit_rate == 1.0

    def test_expiry(self):
        cache = ChargeCache(ChargeCacheConfig(expiry_cycles=1000))
        cache.insert(0, 5, now=100)
        assert not cache.lookup(0, 5, now=2000)
        assert cache.stats.expired == 1
        # The expired entry is evicted.
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ChargeCache(ChargeCacheConfig(capacity=2))
        cache.insert(0, 1, now=0)
        cache.insert(0, 2, now=1)
        cache.insert(0, 3, now=2)  # evicts (0,1)
        assert not cache.lookup(0, 1, now=3)
        assert cache.lookup(0, 2, now=3)
        assert cache.lookup(0, 3, now=3)

    def test_reinsert_refreshes_timestamp(self):
        cache = ChargeCache(ChargeCacheConfig(expiry_cycles=1000))
        cache.insert(0, 5, now=0)
        cache.insert(0, 5, now=900)
        assert cache.lookup(0, 5, now=1500)  # alive thanks to refresh

    def test_banks_independent(self):
        cache = ChargeCache(ChargeCacheConfig())
        cache.insert(0, 5, now=0)
        assert not cache.lookup(1, 5, now=1)


class TestChargeCacheInController:
    def _locality_trace(self, count=600):
        # Revisit a handful of rows with gaps long enough that the
        # open-adaptive policy has closed them (row reuse, not row hits).
        requests = []
        clock = 0
        for i in range(count):
            row_base = (i % 4) * 0x40000
            requests.append(req(clock, row_base + (i % 8) * 64))
            clock += 2_000
        return Trace(requests)

    def test_reduces_latency_for_row_reuse(self):
        trace = self._locality_trace()
        base = simulate_trace(trace, MemoryConfig())
        boosted = simulate_trace(
            trace, MemoryConfig(charge_cache=ChargeCacheConfig(t_rcd_saving=10))
        )
        assert boosted.avg_access_latency < base.avg_access_latency

    def test_no_effect_with_zero_saving(self):
        trace = self._locality_trace(200)
        base = simulate_trace(trace, MemoryConfig())
        zero = simulate_trace(
            trace, MemoryConfig(charge_cache=ChargeCacheConfig(t_rcd_saving=0))
        )
        assert zero.avg_access_latency == base.avg_access_latency

    def test_controller_exposes_stats(self):
        from repro.dram.memory_system import MemorySystem

        memory = MemorySystem(MemoryConfig(charge_cache=ChargeCacheConfig()))
        for i in range(50):
            memory.submit(req(i * 2_000, (i % 4) * 0x40000))
        memory.drain()
        total_lookups = sum(
            c.charge_cache.stats.lookups for c in memory.controllers
        )
        assert total_lookups > 0

    def test_row_hits_unchanged(self):
        # ChargeCache accelerates activations; it must not alter which
        # accesses are row hits.
        trace = self._locality_trace(300)
        base = simulate_trace(trace, MemoryConfig())
        boosted = simulate_trace(
            trace, MemoryConfig(charge_cache=ChargeCacheConfig())
        )
        assert boosted.read_row_hits == base.read_row_hits
