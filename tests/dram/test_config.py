"""Unit tests for memory configuration validation."""

import pytest

from repro.dram.config import DRAMTiming, MemoryConfig


class TestDRAMTiming:
    def test_defaults_valid(self):
        timing = DRAMTiming()
        assert timing.t_burst > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DRAMTiming(t_rp=-1)

    def test_rejects_zero_burst(self):
        with pytest.raises(ValueError):
            DRAMTiming(t_burst=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DRAMTiming().t_rp = 5


class TestMemoryConfig:
    def test_table_iii_defaults(self):
        config = MemoryConfig()
        assert config.num_channels == 4
        assert config.ranks_per_channel == 1
        assert config.banks_per_rank == 8
        assert config.burst_size == 32
        assert config.read_queue_size == 32
        assert config.write_queue_size == 64
        assert config.write_high_threshold == 0.85
        assert config.write_low_threshold == 0.50

    def test_watermarks(self):
        config = MemoryConfig()
        assert config.write_high_watermark == int(64 * 0.85)
        assert config.write_low_watermark == 32

    def test_columns_per_row(self):
        config = MemoryConfig(row_size=2048, burst_size=32)
        assert config.columns_per_row == 64

    def test_banks_per_channel(self):
        config = MemoryConfig(ranks_per_channel=2, banks_per_rank=8)
        assert config.banks_per_channel == 16

    @pytest.mark.parametrize("field,value", [
        ("num_channels", 0),
        ("ranks_per_channel", 0),
        ("banks_per_rank", -1),
        ("burst_size", 0),
        ("burst_size", 33),
        ("read_queue_size", 0),
        ("write_queue_size", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            MemoryConfig(**{field: value})

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            MemoryConfig(write_low_threshold=0.9, write_high_threshold=0.5)
        with pytest.raises(ValueError):
            MemoryConfig(write_high_threshold=1.5)

    def test_rejects_misaligned_row(self):
        with pytest.raises(ValueError):
            MemoryConfig(row_size=100, burst_size=32)

    def test_rejects_unknown_page_policy(self):
        with pytest.raises(ValueError):
            MemoryConfig(page_policy="closed")
