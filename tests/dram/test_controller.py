"""Unit tests for the memory controller: FR-FCFS, page policy, write drain."""

import pytest

from repro.core.request import Operation
from repro.dram.address_map import AddressMap, Burst
from repro.dram.config import DRAMTiming, MemoryConfig
from repro.dram.controller import MemoryController


def make_config(**overrides):
    defaults = dict(num_channels=1)
    defaults.update(overrides)
    return MemoryConfig(**defaults)


def make_burst(address_map, address, op=Operation.READ, arrival=0, request_id=0):
    return Burst(
        address=address,
        operation=op,
        coordinates=address_map.decode(address),
        arrival_time=arrival,
        request_id=request_id,
    )


@pytest.fixture
def setup():
    config = make_config()
    return config, AddressMap(config), MemoryController(config, channel=0)


class TestQueueing:
    def test_enqueue_records_queue_length_seen(self, setup):
        config, amap, controller = setup
        for i in range(3):
            controller.enqueue(make_burst(amap, i * 32, arrival=i))
        assert controller.stats.read_queue_len_seen == {0: 1, 1: 1, 2: 1}

    def test_queue_full_detection(self, setup):
        config, amap, controller = setup
        for i in range(config.read_queue_size):
            controller.enqueue(make_burst(amap, i * 32, arrival=0))
        assert controller.queue_full(True)
        assert not controller.queue_full(False)

    def test_enqueue_full_raises(self, setup):
        config, amap, controller = setup
        for i in range(config.read_queue_size):
            controller.enqueue(make_burst(amap, i * 32, arrival=0))
        with pytest.raises(RuntimeError):
            controller.enqueue(make_burst(amap, 0x9000, arrival=0))

    def test_drain_empties_queues(self, setup):
        config, amap, controller = setup
        for i in range(10):
            controller.enqueue(make_burst(amap, i * 32, arrival=i))
        controller.drain()
        assert controller.pending == 0
        assert controller.stats.read_bursts == 10


class TestRowHits:
    def test_sequential_same_row_hits(self, setup):
        config, amap, controller = setup
        # Same row, consecutive columns -> first access opens, rest hit.
        for i in range(8):
            controller.enqueue(make_burst(amap, i * 32, arrival=0))
        controller.drain()
        assert controller.stats.read_bursts == 8
        assert controller.stats.read_row_hits == 7

    def test_alternating_rows_reordered_by_frfcfs(self, setup):
        config, amap, controller = setup
        # Same bank, row 0 vs row 1 (one channel: bank stride is row_size,
        # row stride is row_size * banks_per_channel).
        row_stride = config.row_size * config.banks_per_channel
        for i in range(6):
            controller.enqueue(make_burst(amap, (i % 2) * row_stride + (i // 2) * 32, arrival=0))
        controller.drain()
        # FR-FCFS groups the row-0 bursts then the row-1 bursts: 2+2 hits.
        assert controller.stats.read_row_hits == 4

    def test_alternating_rows_no_hits_when_serialized(self, setup):
        config, amap, controller = setup
        row_stride = config.row_size * config.banks_per_channel
        clock = 0
        for i in range(6):
            controller.service_until(clock)
            controller.drain()  # bank conflict resolved before next arrival
            controller.enqueue(make_burst(amap, (i % 2) * row_stride, arrival=clock))
            clock += 10_000
        controller.drain()
        assert controller.stats.read_row_hits == 0

    def test_write_row_hits_counted_separately(self, setup):
        config, amap, controller = setup
        for i in range(4):
            controller.enqueue(make_burst(amap, i * 32, Operation.WRITE, arrival=0))
        controller.drain()
        assert controller.stats.write_bursts == 4
        assert controller.stats.write_row_hits == 3
        assert controller.stats.read_row_hits == 0


class TestFRFCFS:
    def test_row_hit_scheduled_before_older_miss(self, setup):
        config, amap, controller = setup
        bank_sweep = config.row_size * config.banks_per_channel
        # Three bursts: row0, row1, row0. FR-FCFS services row0 pair
        # back-to-back: the second row0 burst bypasses the row1 burst.
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.enqueue(make_burst(amap, bank_sweep, arrival=0))
        controller.enqueue(make_burst(amap, 32, arrival=0))
        controller.drain()
        assert controller.stats.read_row_hits == 1

    def test_fcfs_among_misses(self, setup):
        config, amap, controller = setup
        issued = []
        controller.on_completion = lambda rid, t, is_read: issued.append(rid)
        bank_sweep = config.row_size * config.banks_per_channel
        controller.enqueue(make_burst(amap, 0 * bank_sweep, arrival=0, request_id=1))
        controller.enqueue(make_burst(amap, 2 * bank_sweep, arrival=0, request_id=2))
        controller.enqueue(make_burst(amap, 4 * bank_sweep, arrival=0, request_id=3))
        controller.drain()
        assert issued == [1, 2, 3]


class TestWriteDrain:
    def test_reads_prioritized_below_watermark(self, setup):
        config, amap, controller = setup
        issued = []
        controller.on_completion = lambda rid, t, is_read: issued.append(is_read)
        below = config.write_high_watermark - 1
        for i in range(below):
            controller.enqueue(make_burst(amap, i * 32, Operation.WRITE, arrival=0))
        controller.enqueue(make_burst(amap, 0x100000, arrival=0))
        controller.drain()
        # Below the watermark the pending read is serviced before any
        # write (writes drain opportunistically only once reads are done).
        assert issued[0] is True
        assert controller.stats.read_bursts == 1

    def test_high_watermark_triggers_drain(self, setup):
        config, amap, controller = setup
        for i in range(config.write_high_watermark):
            controller.enqueue(make_burst(amap, i * 32, Operation.WRITE, arrival=0))
        controller.service_until(10_000)
        assert controller.stats.write_bursts > 0

    def test_drain_stops_at_low_watermark_when_reads_pending(self, setup):
        config, amap, controller = setup
        issued = []
        controller.on_completion = lambda rid, t, is_read: issued.append(is_read)
        for i in range(config.write_high_watermark):
            controller.enqueue(make_burst(amap, i * 32, Operation.WRITE, arrival=0))
        for i in range(4):
            controller.enqueue(make_burst(amap, 0x200000 + i * 32, arrival=0))
        controller.drain()
        # The high watermark triggers a drain down to the low watermark,
        # then the pending reads preempt the remaining writes.
        writes_before_first_read = issued.index(True)
        expected = config.write_high_watermark - config.write_low_watermark
        assert writes_before_first_read == expected
        assert controller.stats.read_bursts == 4

    def test_reads_per_turnaround_recorded(self, setup):
        config, amap, controller = setup
        for i in range(8):
            controller.enqueue(make_burst(amap, i * 32, arrival=0))
        for i in range(config.write_high_watermark):
            controller.enqueue(make_burst(amap, 0x100000 + i * 32, Operation.WRITE, arrival=0))
        controller.drain()
        assert controller.stats.reads_per_turnaround
        assert sum(controller.stats.reads_per_turnaround) <= 8

    def test_idle_writes_drained_opportunistically(self, setup):
        config, amap, controller = setup
        controller.enqueue(make_burst(amap, 0, Operation.WRITE, arrival=0))
        controller.service_until(10_000)
        assert controller.stats.write_bursts == 1


class TestPagePolicy:
    def test_open_adaptive_precharges_without_pending_hit(self):
        config = make_config(page_policy="open_adaptive")
        amap = AddressMap(config)
        controller = MemoryController(config, channel=0)
        # Two bursts to the same row arriving far apart: with no pending
        # same-row burst at issue time, the row is closed in between.
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.service_until(1_000)
        controller.enqueue(make_burst(amap, 32, arrival=1_000))
        controller.drain()
        assert controller.stats.read_row_hits == 0

    def test_plain_open_keeps_row(self):
        config = make_config(page_policy="open")
        amap = AddressMap(config)
        controller = MemoryController(config, channel=0)
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.service_until(1_000)
        controller.enqueue(make_burst(amap, 32, arrival=1_000))
        controller.drain()
        assert controller.stats.read_row_hits == 1

    def test_open_adaptive_keeps_row_for_pending_hit(self):
        config = make_config(page_policy="open_adaptive")
        amap = AddressMap(config)
        controller = MemoryController(config, channel=0)
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.enqueue(make_burst(amap, 32, arrival=0))
        controller.drain()
        assert controller.stats.read_row_hits == 1


class TestTiming:
    def test_completion_callback_ordering(self, setup):
        config, amap, controller = setup
        completions = []
        controller.on_completion = lambda rid, t, is_read: completions.append((rid, t))
        controller.enqueue(make_burst(amap, 0, arrival=0, request_id=0))
        controller.enqueue(make_burst(amap, 32, arrival=0, request_id=1))
        controller.drain()
        assert len(completions) == 2
        assert completions[0][1] < completions[1][1]

    def test_row_miss_slower_than_hit(self, setup):
        config, amap, controller = setup
        completions = []
        controller.on_completion = lambda rid, t, is_read: completions.append(t)
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.enqueue(make_burst(amap, 32, arrival=0))  # hit
        controller.drain()
        first_gap = completions[0]
        second_gap = completions[1] - completions[0]
        # The opening access pays tRCD; the hit only pays tBURST.
        assert second_gap < first_gap

    def test_service_until_respects_time_limit(self, setup):
        config, amap, controller = setup
        controller.enqueue(make_burst(amap, 0, arrival=500))
        controller.service_until(100)
        assert controller.stats.read_bursts == 0
        controller.service_until(10_000)
        assert controller.stats.read_bursts == 1

    def test_service_one_on_empty_raises(self, setup):
        _, _, controller = setup
        with pytest.raises(RuntimeError):
            controller.service_one()

    def test_per_bank_counts(self, setup):
        config, amap, controller = setup
        bank_stride = config.row_size * config.num_channels
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.enqueue(make_burst(amap, bank_stride, arrival=0))
        controller.drain()
        assert len(controller.stats.per_bank_reads) == 2


class TestRefresh:
    def test_disabled_by_default(self, setup):
        config, amap, controller = setup
        for i in range(10):
            controller.enqueue(make_burst(amap, i * 32, arrival=i))
        controller.drain()
        assert controller.stats.refreshes == 0

    def test_refresh_windows_taken(self):
        config = make_config(timing=DRAMTiming(t_refi=1_000, t_rfc=100))
        amap = AddressMap(config)
        controller = MemoryController(config, channel=0)
        clock = 0
        for i in range(20):
            controller.service_until(clock)
            controller.enqueue(make_burst(amap, i * 32, arrival=clock))
            clock += 500
        controller.drain()
        # ~20 * 500 cycles of activity -> about 10 refresh intervals.
        assert controller.stats.refreshes >= 5

    def test_refresh_closes_rows(self):
        config = make_config(
            timing=DRAMTiming(t_refi=1_000, t_rfc=100), page_policy="open"
        )
        amap = AddressMap(config)
        controller = MemoryController(config, channel=0)
        controller.enqueue(make_burst(amap, 0, arrival=0))
        controller.service_until(10)
        # Next access to the same row lands after a refresh: row closed.
        controller.enqueue(make_burst(amap, 32, arrival=5_000))
        controller.drain()
        assert controller.stats.read_row_hits == 0

    def test_refresh_adds_latency(self):
        from repro.core.trace import Trace
        from repro.sim.driver import simulate_trace
        from ..conftest import req

        trace = Trace([req(i * 800, (i % 64) * 32, "R", 32) for i in range(400)])
        plain = simulate_trace(trace, MemoryConfig())
        refreshed = simulate_trace(
            trace,
            MemoryConfig(timing=DRAMTiming(t_refi=2_000, t_rfc=200)),
        )
        assert refreshed.avg_access_latency > plain.avg_access_latency
