"""Unit tests for DRAM statistics, including utilization accounting."""

import pytest

from repro.dram.config import MemoryConfig
from repro.dram.memory_system import MemorySystem
from repro.dram.stats import ControllerStats, MemorySystemStats

from ..conftest import req


class TestControllerStats:
    def test_hit_rates(self):
        stats = ControllerStats(read_bursts=10, read_row_hits=5,
                                write_bursts=4, write_row_hits=1)
        assert stats.read_row_hit_rate == 0.5
        assert stats.write_row_hit_rate == 0.25

    def test_hit_rates_empty(self):
        stats = ControllerStats()
        assert stats.read_row_hit_rate == 0.0
        assert stats.write_row_hit_rate == 0.0

    def test_queue_length_means(self):
        stats = ControllerStats()
        stats.read_queue_len_seen.update({0: 2, 4: 2})
        assert stats.avg_read_queue_length == 2.0

    def test_turnaround_mean(self):
        stats = ControllerStats(reads_per_turnaround=[4, 8])
        assert stats.avg_reads_per_turnaround == 6.0
        assert ControllerStats().avg_reads_per_turnaround == 0.0

    def test_bus_utilization_idle(self):
        assert ControllerStats().bus_utilization == 0.0


class TestUtilizationAccounting:
    def test_saturated_stream_high_utilization(self):
        memory = MemorySystem(MemoryConfig(num_channels=1))
        for i in range(200):
            memory.submit(req(0, i * 32, "R", 32), at_time=0)
        memory.drain()
        stats = memory.channel_stats(0)
        assert stats.bus_utilization > 0.5

    def test_sparse_stream_low_utilization(self):
        memory = MemorySystem(MemoryConfig(num_channels=1))
        for i in range(50):
            memory.submit(req(i * 10_000, i * 32, "R", 32))
        memory.drain()
        assert memory.channel_stats(0).bus_utilization < 0.1

    def test_busy_cycles_match_burst_count(self):
        config = MemoryConfig(num_channels=1)
        memory = MemorySystem(config)
        for i in range(20):
            memory.submit(req(i * 1000, i * 32, "R", 32))
        memory.drain()
        stats = memory.channel_stats(0)
        assert stats.data_bus_busy_cycles == 20 * config.timing.t_burst

    def test_system_level_aggregates(self):
        memory = MemorySystem()
        memory.submit(req(0, 0, "R", 256))
        memory.drain()
        assert memory.stats.total_bytes(32) == 256
        assert 0 <= memory.stats.avg_bus_utilization <= 1.0
