"""Invariant tests for the controller's per-(bank, row) burst index.

``_BurstQueue`` replaces the old O(queue) scans in FR-FCFS row-hit
search and the open-adaptive page policy. These tests pin the index to
a brute-force reference model through random enqueue/pop workloads, and
check the controller end to end against the same request stream.
"""

import random

import pytest

from repro.core.request import MemoryRequest, Operation
from repro.dram.address_map import Burst, DramCoordinates
from repro.dram.config import MemoryConfig
from repro.dram.controller import _BurstQueue
from repro.dram.memory_system import MemorySystem


def _burst(arrival, bank=0, row=0, op=Operation.READ, rank=0):
    coords = DramCoordinates(channel=0, rank=rank, bank=bank, row=row, column=0)
    return Burst(
        address=arrival,
        operation=op,
        coordinates=coords,
        arrival_time=arrival,
        request_id=arrival,
    )


def _reference_first_for_row(bursts, bank_id, row):
    """Brute-force oldest queued burst hitting (bank, row)."""
    for seq, burst in bursts:
        if burst.bank_id == bank_id and burst.coordinates.row == row:
            return seq
    return None


def test_append_pop_keeps_fifo_and_row_index():
    queue = _BurstQueue()
    first = _burst(10, bank=0, row=5)
    second = _burst(11, bank=0, row=5)
    third = _burst(12, bank=1, row=5)
    for burst in (first, second, third):
        queue.append(burst)

    assert len(queue) == 3
    assert queue.earliest_arrival() == 10
    assert queue.oldest_seq() == 0
    assert queue.first_for_row(first.bank_id, 5) == 0
    assert queue.first_for_row(third.bank_id, 5) == 2
    assert queue.first_for_row(first.bank_id, 99) is None

    assert queue.pop(0) is first
    assert queue.first_for_row(first.bank_id, 5) == 1
    assert queue.earliest_arrival() == 11
    assert queue.pop(1) is second
    assert not queue.has_row(first.bank_id, 5)
    assert queue.has_row(third.bank_id, 5)
    assert queue.pop(2) is third
    assert len(queue) == 0
    assert queue.oldest_seq() is None


def test_out_of_order_arrival_rejected():
    queue = _BurstQueue()
    queue.append(_burst(100))
    with pytest.raises(ValueError):
        queue.append(_burst(99))
    # equal arrivals are fine (many bursts of one request share a timestamp)
    queue.append(_burst(100))


def test_index_matches_brute_force_under_random_workload():
    rng = random.Random(7)
    queue = _BurstQueue()
    reference = []  # list of (seq, burst) in FIFO order
    seq_counter = 0
    arrival = 0
    for _ in range(2000):
        if reference and rng.random() < 0.45:
            # Pop the way FR-FCFS does: a row-index head or the FIFO head.
            if rng.random() < 0.5:
                seq = reference[0][0]
            else:
                victim = rng.choice(reference)
                seq = _reference_first_for_row(
                    reference, victim[1].bank_id, victim[1].coordinates.row
                )
            queue.pop(seq)
            reference = [entry for entry in reference if entry[0] != seq]
        else:
            arrival += rng.randrange(3)
            burst = _burst(arrival, bank=rng.randrange(4), row=rng.randrange(6))
            queue.append(burst)
            reference.append((seq_counter, burst))
            seq_counter += 1

        assert len(queue) == len(reference)
        assert list(queue) == [burst for _, burst in reference]
        if reference:
            assert queue.oldest_seq() == reference[0][0]
            assert queue.earliest_arrival() == reference[0][1].arrival_time
        for bank in range(4):
            for row in range(6):
                bank_id = _burst(0, bank=bank).bank_id
                assert queue.first_for_row(bank_id, row) == _reference_first_for_row(
                    reference, bank_id, row
                ), f"bank={bank} row={row}"


def _random_requests(seed, total=400):
    rng = random.Random(seed)
    timestamp = 0
    requests = []
    for _ in range(total):
        timestamp += rng.randrange(0, 200)
        requests.append(
            MemoryRequest(
                timestamp=timestamp,
                address=rng.randrange(0, 1 << 24) & ~0x3F,
                operation=Operation.READ if rng.random() < 0.7 else Operation.WRITE,
                size=64 * rng.randrange(1, 4),
            )
        )
    return requests


def test_controller_services_every_burst_consistently():
    """End to end on a random stream: every burst is serviced, and the
    per-bank/row-hit counters stay internally consistent with the burst
    totals derived from the address map."""
    requests = _random_requests(21)
    memory = MemorySystem(MemoryConfig())
    for request in requests:
        memory.submit(request)
    memory.drain()

    expected = {"read": 0, "write": 0}
    for index, request in enumerate(requests):
        for burst in memory.address_map.split_request(request, index):
            expected["read" if burst.is_read else "write"] += 1

    totals_read = sum(c.stats.read_bursts for c in memory.controllers)
    totals_write = sum(c.stats.write_bursts for c in memory.controllers)
    assert totals_read == expected["read"]
    assert totals_write == expected["write"]
    for controller in memory.controllers:
        assert controller.pending == 0
        cstats = controller.stats
        assert cstats.read_row_hits <= cstats.read_bursts
        assert cstats.write_row_hits <= cstats.write_bursts
        assert sum(cstats.per_bank_reads.values()) == cstats.read_bursts
        assert sum(cstats.per_bank_writes.values()) == cstats.write_bursts


def test_controller_stats_deterministic_across_runs():
    """Same stream twice -> bit-identical stats (the index must not
    introduce any ordering nondeterminism)."""
    snapshots = []
    for _ in range(2):
        memory = MemorySystem(MemoryConfig())
        for request in _random_requests(5, total=250):
            memory.submit(request)
        memory.drain()
        snapshots.append(
            [
                (
                    c.stats.read_bursts,
                    c.stats.write_bursts,
                    c.stats.read_row_hits,
                    c.stats.write_row_hits,
                    dict(c.stats.per_bank_reads),
                    dict(c.stats.per_bank_writes),
                    dict(c.stats.read_queue_len_seen),
                    dict(c.stats.write_queue_len_seen),
                )
                for c in memory.controllers
            ]
        )
    assert snapshots[0] == snapshots[1]
