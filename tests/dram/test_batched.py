"""Batched memory-system replay must be bit-identical to the scalar loop.

The contract under test (see ``repro/dram/batched.py``): for every
workload and configuration where the fast path engages, the batched
engine produces a :class:`~repro.dram.stats.MemorySystemStats` equal
*field for field* — including every per-channel
:class:`~repro.dram.stats.ControllerStats` — to the scalar
crossbar + FR-FCFS event loop; where the fast path cannot engage, it
falls back to scalar code and equality is trivial but still asserted.
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.core.columnar import ColumnarTrace
from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.dram.batched import BatchedReplay, batched_replay_supported
from repro.dram.config import ChargeCacheConfig, DRAMTiming, MemoryConfig
from repro.interconnect.crossbar import CrossbarConfig
from repro.sim.driver import simulate_blocks, simulate_synthetic, simulate_trace
from repro.workloads import TABLE_II_WORKLOADS, make_generator

REQUESTS = 2_500


def _assert_stats_equal(scalar, batched, label):
    """Field-for-field equality with a per-field diagnostic on failure."""
    for field in dataclasses.fields(scalar):
        if field.name == "channels":
            continue
        assert getattr(batched, field.name) == getattr(scalar, field.name), (
            f"{label}: top-level {field.name} differs"
        )
    assert len(batched.channels) == len(scalar.channels)
    for index, (expected, actual) in enumerate(zip(scalar.channels, batched.channels)):
        for field in dataclasses.fields(expected):
            assert getattr(actual, field.name) == getattr(expected, field.name), (
                f"{label}: channel {index} {field.name} differs"
            )
    assert batched == scalar, f"{label}: stats differ"


def _trace(name, num_requests=REQUESTS, seed=7):
    return make_generator(name, seed=seed).generate(num_requests)


class TestWorkloadSweep:
    """Every Table II workload, default config: batched == scalar."""

    @pytest.mark.parametrize("name", TABLE_II_WORKLOADS)
    def test_bit_identical(self, name):
        trace = _trace(name)
        scalar = simulate_trace(trace, backend="scalar")
        batched = simulate_trace(
            ColumnarTrace.from_trace(trace), backend="columnar"
        )
        _assert_stats_equal(scalar, batched, name)


#: Configurations chosen to stress every regime: the default (mixed
#: quiescent/contended), tiny queues (constant queue-full backpressure
#: relief), watermark extremes, channel-count extremes, the plain
#: ``open`` page policy (tier-1 scan ineligible) and a non-default
#: crossbar. Refresh and ChargeCache configs gate the fast path off
#: entirely and are covered separately below.
CONFIG_VARIANTS = {
    "default": MemoryConfig(),
    "tiny-queues": MemoryConfig(read_queue_size=3, write_queue_size=4),
    "tight-watermarks": MemoryConfig(
        write_queue_size=8, write_high_threshold=0.5, write_low_threshold=0.25
    ),
    "one-channel": MemoryConfig(num_channels=1),
    "eight-channels": MemoryConfig(num_channels=8),
    "open-policy": MemoryConfig(page_policy="open"),
    "slow-timing": MemoryConfig(
        timing=DRAMTiming(t_rp=40, t_rcd=30, t_cl=25, t_burst=8)
    ),
}

#: A contended and an uncontended workload exercise both tiers.
SWEEP_WORKLOADS = ("hevc1", "opencl1", "crypto1", "fbc-tiled1")


class TestConfigSweep:
    @pytest.mark.parametrize("label", sorted(CONFIG_VARIANTS))
    @pytest.mark.parametrize("name", SWEEP_WORKLOADS)
    def test_bit_identical(self, name, label):
        config = CONFIG_VARIANTS[label]
        trace = _trace(name)
        scalar = simulate_trace(trace, config, backend="scalar")
        batched = simulate_trace(
            ColumnarTrace.from_trace(trace), config, backend="columnar"
        )
        _assert_stats_equal(scalar, batched, f"{name}/{label}")

    def test_crossbar_variant(self):
        crossbar = CrossbarConfig(latency=20, min_gap=4)
        trace = _trace("trex1")
        scalar = simulate_trace(trace, crossbar_config=crossbar, backend="scalar")
        batched = simulate_trace(
            ColumnarTrace.from_trace(trace), crossbar_config=crossbar,
            backend="columnar",
        )
        _assert_stats_equal(scalar, batched, "trex1/crossbar")


class TestGatedConfigs:
    """Configs the fast path must refuse — results still identical."""

    @pytest.mark.parametrize(
        "label,config",
        [
            ("refresh", MemoryConfig(timing=DRAMTiming(t_refi=7_800, t_rfc=160))),
            ("chargecache", MemoryConfig(charge_cache=ChargeCacheConfig())),
        ],
    )
    def test_gate_and_equality(self, label, config):
        assert not batched_replay_supported(config)
        trace = _trace("hevc2")
        scalar = simulate_trace(trace, config, backend="scalar")
        batched = simulate_trace(
            ColumnarTrace.from_trace(trace), config, backend="columnar"
        )
        _assert_stats_equal(scalar, batched, label)

    def test_default_config_supported(self):
        from repro.core.columnar import numpy_or_none

        if numpy_or_none() is None:
            pytest.skip("fast path requires numpy")
        assert batched_replay_supported(MemoryConfig())
        assert batched_replay_supported(None)

    def test_event_sink_gates_off(self, tmp_path):
        obs.enable(obs.JsonlEventSink(str(tmp_path / "events.jsonl")))
        try:
            assert not batched_replay_supported(MemoryConfig())
        finally:
            obs.disable()

    def test_no_numpy_gates_off(self, monkeypatch):
        monkeypatch.setenv("MOCKTAILS_NO_NUMPY", "1")
        assert not batched_replay_supported(MemoryConfig())
        # Forcing columnar without numpy must still match scalar.
        trace = _trace("cpu-d", 800)
        scalar = simulate_trace(trace, backend="scalar")
        fallback = simulate_trace(trace, backend="columnar")
        _assert_stats_equal(scalar, fallback, "no-numpy")

    def test_completion_hook_forces_scalar_sends(self):
        trace = _trace("trex2", 1_200)
        seen_scalar = []
        seen_batched = []

        def scalar_run():
            from repro.dram.memory_system import MemorySystem
            from repro.interconnect.crossbar import Crossbar

            memory = MemorySystem()
            memory.on_request_complete = lambda rid, lat: seen_scalar.append((rid, lat))
            crossbar = Crossbar(memory)
            for request in trace:
                crossbar.send(request)
            memory.drain()
            return memory.stats

        engine = BatchedReplay()
        engine.memory.on_request_complete = (
            lambda rid, lat: seen_batched.append((rid, lat))
        )
        engine.feed(ColumnarTrace.from_trace(trace), final=True)
        batched = engine.finish()
        _assert_stats_equal(scalar_run(), batched, "completion-hook")
        assert seen_batched == seen_scalar


class TestEntryPoints:
    def test_blocks_route_into_engine(self):
        trace = _trace("manhattan")
        columns = ColumnarTrace.from_trace(trace)
        scalar = simulate_trace(trace, backend="scalar")
        batched = simulate_blocks(
            columns.iter_blocks(block_requests=700), backend="columnar"
        )
        fallback = simulate_blocks(
            columns.iter_blocks(block_requests=700), backend="scalar"
        )
        _assert_stats_equal(scalar, batched, "blocks/columnar")
        _assert_stats_equal(scalar, fallback, "blocks/scalar")

    def test_lazy_stream_feed(self):
        trace = _trace("opencl2")
        scalar = simulate_trace(trace, backend="scalar")
        batched = simulate_trace(iter(list(trace)), backend="columnar")
        _assert_stats_equal(scalar, batched, "lazy-stream")

    def test_synthetic_replay(self):
        profile = build_profile(_trace("hevc3", 2_000), two_level_ts())
        scalar = simulate_synthetic(profile, seed=11, backend="scalar")
        batched = simulate_synthetic(profile, seed=11, backend="columnar")
        _assert_stats_equal(scalar, batched, "synthetic")

    def test_incremental_feeds_match_one_shot(self):
        trace = _trace("hevc1")
        columns = ColumnarTrace.from_trace(trace)
        one_shot = simulate_trace(columns, backend="columnar")
        engine = BatchedReplay()
        blocks = list(columns.iter_blocks(block_requests=300))
        for index, block in enumerate(blocks):
            engine.feed(block, final=index == len(blocks) - 1)
        _assert_stats_equal(one_shot, engine.finish(), "incremental")

    def test_empty_block_is_noop(self):
        engine = BatchedReplay()
        engine.feed(ColumnarTrace.from_trace([]), final=True)
        stats = engine.finish()
        assert stats.latency_count == 0


class TestObservability:
    def test_registry_values_match_scalar(self):
        """Counters and histograms, not just stats, must be identical."""
        trace = _trace("hevc1")
        columns = ColumnarTrace.from_trace(trace)
        snapshots = {}
        for backend, source in (("scalar", trace), ("columnar", columns)):
            obs.enable()
            try:
                simulate_trace(source, backend=backend)
                snapshots[backend] = obs.active().snapshot()
            finally:
                obs.disable()
            # Wall time legitimately differs; everything else must not.
            snapshots[backend].pop("phases_seconds")
        assert snapshots["columnar"] == snapshots["scalar"]

    def test_phase_timers_recorded(self):
        obs.enable()
        try:
            simulate_trace(
                ColumnarTrace.from_trace(_trace("cpu-g", 600)), backend="columnar"
            )
            phases = obs.active().phases
        finally:
            obs.disable()
        assert "replay.crossbar" in phases
        assert "replay.dram" in phases


class TestFigureJson:
    def test_fig6_quick_byte_identical(self, tmp_path, monkeypatch):
        """The CLI figure JSON must not depend on the backend at all."""
        from repro.eval.__main__ import main
        from repro.eval.comparison import clear_cache

        outputs = {}
        for backend in ("scalar", "columnar"):
            clear_cache()
            path = tmp_path / f"fig6-{backend}.json"
            assert main([
                "quick", "fig6", "--requests", "1200",
                "--backend", backend, "--json-out", str(path),
            ]) == 0
            outputs[backend] = path.read_bytes()
        monkeypatch.delenv("MOCKTAILS_BACKEND", raising=False)
        assert outputs["columnar"] == outputs["scalar"]
        json.loads(outputs["scalar"])  # sanity: well-formed experiment JSON
