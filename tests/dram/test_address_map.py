"""Unit tests for DRAM address decoding and burst splitting."""

import pytest

from repro.core.request import MemoryRequest, Operation
from repro.dram.address_map import AddressMap
from repro.dram.config import MemoryConfig


@pytest.fixture
def address_map():
    return AddressMap(MemoryConfig())


class TestDecode:
    def test_channel_interleaved_at_burst_granularity(self, address_map):
        config = address_map.config
        coords = [address_map.decode(i * config.burst_size) for i in range(8)]
        channels = [c.channel for c in coords]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_burst_same_coordinates(self, address_map):
        a = address_map.decode(0x1000)
        b = address_map.decode(0x1010)  # same 32B burst
        assert a == b

    def test_sequential_stream_walks_columns_first(self, address_map):
        # Within one channel, consecutive channel-local bursts advance the
        # column within one row (row-hit-friendly mapping).
        config = address_map.config
        stride = config.burst_size * config.num_channels
        coords = [address_map.decode(i * stride) for i in range(config.columns_per_row)]
        assert all(c.channel == 0 for c in coords)
        assert all(c.row == coords[0].row and c.bank == coords[0].bank for c in coords)
        assert [c.column for c in coords] == list(range(config.columns_per_row))

    def test_next_row_size_chunk_changes_bank(self, address_map):
        config = address_map.config
        bytes_per_row_per_channel = config.row_size * config.num_channels
        a = address_map.decode(0)
        b = address_map.decode(bytes_per_row_per_channel)
        assert b.bank == a.bank + 1
        assert b.row == a.row

    def test_row_increments_after_all_banks(self, address_map):
        config = address_map.config
        bytes_per_row_sweep = (
            config.row_size * config.num_channels * config.banks_per_channel
        )
        a = address_map.decode(0)
        b = address_map.decode(bytes_per_row_sweep)
        assert b.row == a.row + 1
        assert b.bank == a.bank

    def test_bank_id_distinct_across_ranks(self):
        config = MemoryConfig(ranks_per_channel=2)
        address_map = AddressMap(config)
        seen = set()
        bytes_per_row_per_channel = config.row_size * config.num_channels
        for i in range(config.banks_per_channel):
            coords = address_map.decode(i * bytes_per_row_per_channel)
            seen.add(coords.bank_id)
        assert len(seen) == config.banks_per_channel

    def test_decode_is_deterministic(self, address_map):
        assert address_map.decode(0xDEAD00) == address_map.decode(0xDEAD00)


class TestSplitRequest:
    def _request(self, address, size, op=Operation.READ):
        return MemoryRequest(100, address, op, size)

    def test_aligned_64b_request_gives_two_bursts(self, address_map):
        bursts = address_map.split_request(self._request(0x1000, 64), 7)
        assert len(bursts) == 2
        assert [b.address for b in bursts] == [0x1000, 0x1020]

    def test_small_request_single_burst(self, address_map):
        bursts = address_map.split_request(self._request(0x1000, 16), 0)
        assert len(bursts) == 1

    def test_unaligned_request_straddles(self, address_map):
        # 32 bytes starting mid-burst touch two bursts.
        bursts = address_map.split_request(self._request(0x1010, 32), 0)
        assert len(bursts) == 2

    def test_burst_metadata(self, address_map):
        bursts = address_map.split_request(self._request(0x2000, 64, Operation.WRITE), 42)
        for burst in bursts:
            assert burst.request_id == 42
            assert burst.arrival_time == 100
            assert not burst.is_read

    def test_large_request_burst_count(self, address_map):
        bursts = address_map.split_request(self._request(0, 1024), 0)
        assert len(bursts) == 1024 // 32

    def test_bursts_cover_distinct_channels(self, address_map):
        bursts = address_map.split_request(self._request(0, 128), 0)
        assert {b.coordinates.channel for b in bursts} == {0, 1, 2, 3}
