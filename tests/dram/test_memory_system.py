"""Unit tests for the multi-channel memory system front end."""

import pytest

from repro.core.request import MemoryRequest, Operation
from repro.dram.config import MemoryConfig
from repro.dram.memory_system import MemorySystem

from ..conftest import req


class TestSubmit:
    def test_accepts_in_order(self):
        memory = MemorySystem()
        assert memory.submit(req(0, 0x0, "R", 64)) == 0
        assert memory.submit(req(10, 0x100, "R", 64)) == 10

    def test_rejects_out_of_order(self):
        memory = MemorySystem()
        memory.submit(req(10, 0x0))
        with pytest.raises(ValueError):
            memory.submit(req(5, 0x100))

    def test_at_time_override(self):
        memory = MemorySystem()
        assert memory.submit(req(0, 0x0), at_time=50) == 50

    def test_bursts_counted_after_drain(self):
        memory = MemorySystem()
        memory.submit(req(0, 0x0, "R", 128))  # 4 bursts
        memory.submit(req(1, 0x1000, "W", 64))  # 2 bursts
        memory.drain()
        assert memory.stats.read_bursts == 4
        assert memory.stats.write_bursts == 2

    def test_bursts_spread_across_channels(self):
        memory = MemorySystem()
        memory.submit(req(0, 0x0, "R", 128))
        memory.drain()
        per_channel = [c.read_bursts for c in memory.stats.channels]
        assert per_channel == [1, 1, 1, 1]

    def test_latency_recorded_per_request(self):
        memory = MemorySystem()
        memory.submit(req(0, 0x0, "R", 64))
        memory.drain()
        assert memory.stats.latency_count == 1
        assert memory.stats.avg_access_latency > 0

    def test_latency_covers_all_requests(self):
        memory = MemorySystem()
        for i in range(20):
            memory.submit(req(i * 10, i * 64, "R", 64))
        memory.drain()
        assert memory.stats.latency_count == 20


class TestBackpressure:
    def test_queue_full_delays_acceptance(self):
        # One channel, tiny read queue: flooding it must push accept_time
        # beyond the presented time.
        config = MemoryConfig(num_channels=1, read_queue_size=4)
        memory = MemorySystem(config)
        delays = []
        for i in range(50):
            accept = memory.submit(req(0, i * 32, "R", 32), at_time=i)
            delays.append(accept - i)
        assert any(delay > 0 for delay in delays)
        assert memory.stats.backpressure_delay > 0

    def test_no_backpressure_when_sparse(self):
        memory = MemorySystem()
        for i in range(10):
            accept = memory.submit(req(i * 10_000, i * 64, "R", 64))
            assert accept == i * 10_000
        assert memory.stats.backpressure_delay == 0

    def test_write_queue_backpressure(self):
        config = MemoryConfig(num_channels=1, write_queue_size=4, write_high_threshold=1.0)
        memory = MemorySystem(config)
        total_delay = 0
        for i in range(40):
            accept = memory.submit(req(0, i * 32, "W", 32), at_time=i)
            total_delay += accept - i
        assert total_delay > 0


class TestStatsAggregation:
    def test_summary_keys(self):
        memory = MemorySystem()
        memory.submit(req(0, 0, "R", 64))
        memory.drain()
        summary = memory.stats.summary()
        for key in (
            "read_bursts",
            "write_bursts",
            "read_row_hits",
            "write_row_hits",
            "avg_read_queue_length",
            "avg_write_queue_length",
            "avg_access_latency",
        ):
            assert key in summary

    def test_per_bank_counts_interface(self):
        memory = MemorySystem()
        memory.submit(req(0, 0, "R", 256))
        memory.drain()
        reads = memory.stats.per_bank_counts("read")
        assert set(reads.keys()) == {0, 1, 2, 3}
        with pytest.raises(ValueError):
            memory.stats.per_bank_counts("erase")

    def test_queue_length_average(self):
        memory = MemorySystem(MemoryConfig(num_channels=1))
        for i in range(8):
            memory.submit(req(0, i * 32, "R", 32), at_time=0)
        memory.drain()
        # All arrive at t=0: observed queue lengths are 0..7.
        assert memory.stats.avg_read_queue_length == pytest.approx(3.5)
