"""Property-based tests for DRAM model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import MemoryRequest, Operation
from repro.dram.config import DRAMTiming, MemoryConfig
from repro.dram.memory_system import MemorySystem


@st.composite
def request_batches(draw):
    count = draw(st.integers(1, 60))
    clock = 0
    requests = []
    for _ in range(count):
        clock += draw(st.integers(0, 500))
        requests.append(
            MemoryRequest(
                clock,
                draw(st.integers(0, 1 << 24)),
                draw(st.sampled_from([Operation.READ, Operation.WRITE])),
                draw(st.sampled_from([16, 32, 64, 128, 256])),
            )
        )
    return requests


@st.composite
def memory_configs(draw):
    return MemoryConfig(
        num_channels=draw(st.sampled_from([1, 2, 4])),
        banks_per_rank=draw(st.sampled_from([4, 8])),
        read_queue_size=draw(st.sampled_from([4, 16, 32])),
        write_queue_size=draw(st.sampled_from([8, 32, 64])),
        page_policy=draw(st.sampled_from(["open", "open_adaptive"])),
    )


def _run(requests, config):
    memory = MemorySystem(config)
    for request in requests:
        memory.submit(request)
    memory.drain()
    return memory


class TestConservation:
    @given(request_batches(), memory_configs())
    @settings(max_examples=40, deadline=None)
    def test_bursts_conserved(self, requests, config):
        memory = _run(requests, config)
        expected = 0
        for request in requests:
            first = request.address // config.burst_size
            last = (request.end_address - 1) // config.burst_size
            expected += last - first + 1
        assert memory.stats.read_bursts + memory.stats.write_bursts == expected

    @given(request_batches(), memory_configs())
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes(self, requests, config):
        memory = _run(requests, config)
        assert memory.stats.latency_count == len(requests)
        assert not memory._outstanding

    @given(request_batches(), memory_configs())
    @settings(max_examples=40, deadline=None)
    def test_row_hits_bounded_by_bursts(self, requests, config):
        memory = _run(requests, config)
        stats = memory.stats
        assert 0 <= stats.read_row_hits <= stats.read_bursts
        assert 0 <= stats.write_row_hits <= stats.write_bursts

    @given(request_batches(), memory_configs())
    @settings(max_examples=40, deadline=None)
    def test_queues_empty_after_drain(self, requests, config):
        memory = _run(requests, config)
        for controller in memory.controllers:
            assert controller.pending == 0

    @given(request_batches(), memory_configs())
    @settings(max_examples=40, deadline=None)
    def test_latency_positive_and_bounded(self, requests, config):
        memory = _run(requests, config)
        # Every access pays at least one burst transfer.
        assert memory.stats.avg_access_latency >= config.timing.t_burst

    @given(request_batches())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, requests):
        a = _run(requests, MemoryConfig()).stats.summary()
        b = _run(requests, MemoryConfig()).stats.summary()
        assert a == b


class TestAddressMapProperties:
    @given(st.integers(0, 1 << 40), memory_configs())
    @settings(max_examples=100, deadline=None)
    def test_decode_in_bounds(self, address, config):
        from repro.dram.address_map import AddressMap

        coords = AddressMap(config).decode(address)
        assert 0 <= coords.channel < config.num_channels
        assert 0 <= coords.rank < config.ranks_per_channel
        assert 0 <= coords.bank < config.banks_per_rank
        assert 0 <= coords.column < config.columns_per_row
        assert coords.row >= 0

    @given(st.integers(0, 1 << 32))
    @settings(max_examples=60, deadline=None)
    def test_mappings_bijective_on_bursts(self, burst_index):
        """Distinct bursts decode to distinct coordinates (both mappings)."""
        from repro.dram.address_map import AddressMap

        for mapping in ("ch_lo", "ch_hi"):
            config = MemoryConfig(address_mapping=mapping)
            amap = AddressMap(config)
            a = amap.decode(burst_index * config.burst_size)
            b = amap.decode((burst_index + 1) * config.burst_size)
            assert a != b
