"""Unit tests for stack distances, reuse histograms and the LRU stack."""

import random

import pytest

from repro.baselines.reuse import COLD, LRUStack, ReuseHistogram, stack_distances


class TestStackDistances:
    def test_all_cold(self):
        assert stack_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse_is_zero(self):
        assert stack_distances([1, 1]) == [COLD, 0]

    def test_classic_example(self):
        # a b c a: distance of final a = 2 distinct (b, c) in between.
        assert stack_distances(["a", "b", "c", "a"]) == [COLD, COLD, COLD, 2]

    def test_duplicates_between_count_once(self):
        # a b b a: only one distinct item (b) between the two a's.
        assert stack_distances(["a", "b", "b", "a"]) == [COLD, COLD, 0, 1]

    def test_interleaved_streams(self):
        assert stack_distances([1, 2, 1, 2, 1, 2]) == [COLD, COLD, 1, 1, 1, 1]

    def test_empty(self):
        assert stack_distances([]) == []

    def test_matches_naive_lru_on_random_input(self):
        rng = random.Random(3)
        items = [rng.randrange(12) for _ in range(300)]

        # Naive reference: explicit LRU stack.
        stack = []
        expected = []
        for item in items:
            if item in stack:
                depth = stack.index(item)
                expected.append(depth)
                stack.remove(item)
            else:
                expected.append(COLD)
            stack.insert(0, item)
        assert stack_distances(items) == expected


class TestReuseHistogram:
    def test_fit_counts(self):
        histogram = ReuseHistogram.fit([COLD, 0, 0, 3])
        assert histogram.cold_count == 1
        assert histogram.counts[0] == 2
        assert histogram.counts[3] == 1
        assert histogram.total == 4

    def test_cold_fraction(self):
        histogram = ReuseHistogram.fit([COLD, 0, 0, 0])
        assert histogram.cold_fraction() == 0.25

    def test_empty_sample_is_cold(self):
        assert ReuseHistogram().sample(random.Random(0)) == COLD

    def test_sample_only_observed(self):
        histogram = ReuseHistogram.fit([1, 2, 2, 1])
        rng = random.Random(0)
        for _ in range(50):
            assert histogram.sample(rng) in (1, 2)

    def test_clamp_folds_large_distances(self):
        histogram = ReuseHistogram.fit([0, 31, 32, 100, COLD]).clamped(32)
        assert histogram.counts[31] == 3  # 31, 32 and 100 folded
        assert histogram.cold_count == 1

    def test_clamp_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            ReuseHistogram().clamped(0)

    def test_roundtrip(self):
        histogram = ReuseHistogram.fit([COLD, 0, 5, 5])
        assert ReuseHistogram.from_dict(histogram.to_dict()) == histogram


class TestLRUStack:
    def test_access_and_depth(self):
        stack = LRUStack()
        stack.access("a")
        stack.access("b")
        stack.access("c")
        assert stack.at_depth(0) == "c"
        assert stack.at_depth(1) == "b"
        assert stack.at_depth(2) == "a"

    def test_reaccess_moves_to_front(self):
        stack = LRUStack()
        for item in ("a", "b", "c"):
            stack.access(item)
        stack.access("a")
        assert stack.at_depth(0) == "a"
        assert stack.at_depth(1) == "c"
        assert len(stack) == 3

    def test_contains_and_len(self):
        stack = LRUStack()
        assert "x" not in stack
        stack.access("x")
        assert "x" in stack
        assert len(stack) == 1

    def test_remove(self):
        stack = LRUStack()
        stack.access("a")
        stack.access("b")
        stack.remove("a")
        assert "a" not in stack
        assert len(stack) == 1
        assert stack.at_depth(0) == "b"

    def test_depth_of(self):
        stack = LRUStack()
        for item in range(5):
            stack.access(item)
        for depth in range(5):
            assert stack.depth_of(stack.at_depth(depth)) == depth

    def test_at_depth_out_of_range(self):
        stack = LRUStack()
        stack.access(1)
        with pytest.raises(IndexError):
            stack.at_depth(1)
        with pytest.raises(IndexError):
            stack.at_depth(-1)

    def test_grows_past_initial_capacity(self):
        stack = LRUStack()
        for i in range(5000):
            stack.access(i % 700)  # forces many slot reallocations
        assert len(stack) == 700
        assert stack.at_depth(0) == 4999 % 700

    def test_matches_naive_lru(self):
        rng = random.Random(9)
        stack = LRUStack()
        naive = []
        for _ in range(2000):
            item = rng.randrange(50)
            stack.access(item)
            if item in naive:
                naive.remove(item)
            naive.insert(0, item)
            probe = rng.randrange(len(naive))
            assert stack.at_depth(probe) == naive[probe]
