"""Unit tests for the HRD baseline."""

import random
from collections import Counter

import pytest

from repro.baselines.hrd import (
    COARSE_GRANULARITY,
    FINE_GRANULARITY,
    CleanDirtyModel,
    HRDModel,
)
from repro.core.request import Operation
from repro.core.trace import Trace

from ..conftest import req


class TestCleanDirtyModel:
    def test_fit_states(self):
        # Block 0: R (new), W (clean), W (dirty), R (dirty).
        blocks = [0, 0, 0, 0]
        ops = [Operation.READ, Operation.WRITE, Operation.WRITE, Operation.READ]
        model = CleanDirtyModel.fit(blocks, ops)
        assert model.total_counts == {"new": 1, "clean": 1, "dirty": 2}
        assert model.write_counts == {"new": 0, "clean": 1, "dirty": 1}

    def test_write_probability(self):
        model = CleanDirtyModel({"new": 1, "clean": 0, "dirty": 2}, {"new": 2, "clean": 1, "dirty": 2})
        assert model.write_probability("new") == 0.5
        assert model.write_probability("dirty") == 1.0

    def test_unseen_state_falls_back_to_overall(self):
        model = CleanDirtyModel({"new": 1}, {"new": 2})
        assert model.write_probability("dirty") == 0.5

    def test_sample_deterministic_extremes(self):
        model = CleanDirtyModel({"new": 5}, {"new": 5})
        rng = random.Random(0)
        assert all(model.sample("new", rng) is Operation.WRITE for _ in range(10))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CleanDirtyModel.fit([0], [])

    def test_roundtrip(self):
        model = CleanDirtyModel({"new": 1, "clean": 2, "dirty": 3}, {"new": 4, "clean": 5, "dirty": 6})
        restored = CleanDirtyModel.from_dict(model.to_dict())
        assert restored.write_counts == model.write_counts
        assert restored.total_counts == model.total_counts


class TestHRDModel:
    def _trace(self, count=400, footprint=64, seed=0):
        rng = random.Random(seed)
        requests = []
        for i in range(count):
            block = rng.randrange(footprint)
            op = "W" if rng.random() < 0.3 else "R"
            requests.append(req(i, 0x10000 + block * 64, op, 8))
        return Trace(requests)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            HRDModel.fit(Trace())

    def test_synthesize_count(self):
        trace = self._trace()
        model = HRDModel.fit(trace)
        assert len(model.synthesize(seed=1)) == len(trace)

    def test_synthesize_order_only_timestamps(self):
        model = HRDModel.fit(self._trace(50))
        synthetic = model.synthesize(seed=1)
        assert [r.timestamp for r in synthetic] == list(range(50))

    def test_addresses_block_aligned(self):
        model = HRDModel.fit(self._trace())
        for request in model.synthesize(seed=2):
            assert request.address % FINE_GRANULARITY == 0

    def test_footprint_similar(self):
        trace = self._trace(count=800, footprint=96)
        model = HRDModel.fit(trace)
        synthetic = model.synthesize(seed=3)
        original = len({r.address // FINE_GRANULARITY for r in trace})
        generated = len({r.address // FINE_GRANULARITY for r in synthetic})
        assert abs(generated - original) / original < 0.35

    def test_read_write_mix_similar(self):
        trace = self._trace(count=1000)
        synthetic = HRDModel.fit(trace).synthesize(seed=4)
        original_fraction = trace.write_count() / len(trace)
        generated_fraction = synthetic.write_count() / len(synthetic)
        assert abs(generated_fraction - original_fraction) < 0.1

    def test_streaming_trace_streams(self):
        # A pure cold stream (no reuse) must synthesize mostly-cold too.
        requests = [req(i, i * 64, "R", 8) for i in range(512)]
        model = HRDModel.fit(Trace(requests))
        synthetic = model.synthesize(seed=5)
        unique = len({r.address for r in synthetic})
        assert unique > 450

    def test_heavy_reuse_trace_reuses(self):
        requests = [req(i, (i % 4) * 64, "R", 8) for i in range(512)]
        model = HRDModel.fit(Trace(requests))
        synthetic = model.synthesize(seed=6)
        unique = len({r.address for r in synthetic})
        assert unique <= 16

    def test_cold_misses_allocate_pages(self):
        # Footprint spanning several 4KB pages should synthesize to a
        # comparable number of pages.
        requests = [req(i, i * 256, "R", 8) for i in range(256)]  # 16 pages
        model = HRDModel.fit(Trace(requests))
        synthetic = model.synthesize(seed=7)
        pages = {r.address // COARSE_GRANULARITY for r in synthetic}
        assert 8 <= len(pages) <= 32

    def test_roundtrip(self):
        model = HRDModel.fit(self._trace(200))
        restored = HRDModel.from_dict(model.to_dict())
        assert restored.synthesize(seed=8) == model.synthesize(seed=8)

    def test_deterministic(self):
        model = HRDModel.fit(self._trace(200))
        assert model.synthesize(seed=9) == model.synthesize(seed=9)
