"""Unit tests for the STM baseline models."""

import random
from collections import Counter

import pytest

from repro.baselines.stm import (
    STMAddressModel,
    STMOperationModel,
    StrideTable,
    stm_leaf_factory,
)
from repro.core.profiler import build_profile
from repro.core.request import AddressRange, Operation
from repro.core.synthesis import synthesize

from ..conftest import req


class TestStrideTable:
    def test_constant_stride_predicted(self):
        table = StrideTable.fit([64] * 10)
        rng = random.Random(0)
        assert table.next_stride([64], rng) == 64

    def test_history_disambiguates(self):
        # Sequence 1,2,1,3: after (2,1) comes 3; after just (1,) both 2
        # and 3 are possible. The longest-match row should win.
        strides = [1, 2, 1, 3, 1, 2, 1, 3]
        table = StrideTable.fit(strides, max_history=2)
        rng = random.Random(0)
        assert table.next_stride([2, 1], rng) == 3

    def test_fallback_to_global(self):
        table = StrideTable.fit([10, 20, 10, 20])
        rng = random.Random(0)
        # Unseen history falls back; result must be an observed stride.
        assert table.next_stride([999], rng) in (10, 20)

    def test_empty_table(self):
        table = StrideTable.fit([])
        assert table.next_stride([], random.Random(0)) == 0

    def test_rows_consume_counts(self):
        table = StrideTable.fit([5, 5, 5])
        rng = random.Random(0)
        table.next_stride([5], rng)
        table.next_stride([5], rng)
        # Both observed (5->5) transitions consumed; falls back to global.
        assert table.next_stride([5], rng) == 5

    def test_roundtrip(self):
        table = StrideTable.fit([1, 2, 3, 1, 2, 3])
        restored = StrideTable.from_dict(table.to_dict())
        assert restored.rows == table.rows
        assert restored.global_counts == table.global_counts
        assert restored.max_history == table.max_history


class TestSTMAddressModel:
    def test_generates_count_addresses(self):
        addresses = [0x100 + 64 * i for i in range(10)]
        model = STMAddressModel.fit(addresses, AddressRange(0x100, 0x400))
        assert len(model.generate(random.Random(0))) == 10

    def test_starts_at_start_address(self):
        addresses = [0x100, 0x140, 0x180]
        model = STMAddressModel.fit(addresses, AddressRange(0x100, 0x1C0))
        assert model.generate(random.Random(0))[0] == 0x100

    def test_addresses_in_region(self):
        region = AddressRange(0x100, 0x300)
        addresses = [0x100, 0x200, 0x140, 0x2C0, 0x180]
        model = STMAddressModel.fit(addresses, region)
        for seed in range(5):
            for address in model.generate(random.Random(seed)):
                assert region.contains(address)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            STMAddressModel.fit([], AddressRange(0, 1))

    def test_reuse_reproduced(self):
        # A ping-pong pattern has stack distance 1 everywhere; STM's
        # stack-distance table should reproduce frequent re-references.
        addresses = [0x100, 0x200] * 20
        model = STMAddressModel.fit(addresses, AddressRange(0x100, 0x240))
        generated = model.generate(random.Random(1))
        unique = len(set(generated))
        assert unique <= 6  # strongly reusing a handful of addresses

    def test_roundtrip(self):
        addresses = [0x100, 0x140, 0x100, 0x180, 0x140]
        model = STMAddressModel.fit(addresses, AddressRange(0x100, 0x1C0))
        restored = STMAddressModel.from_dict(model.to_dict())
        assert restored.generate(random.Random(3)) == model.generate(random.Random(3))


class TestSTMOperationModel:
    def test_exact_counts_in_strict_mode(self):
        operations = [Operation.READ] * 7 + [Operation.WRITE] * 3
        model = STMOperationModel.fit(operations)
        for seed in range(5):
            generated = model.generate(random.Random(seed))
            counts = Counter(generated)
            assert counts[Operation.READ] == 7
            assert counts[Operation.WRITE] == 3

    def test_read_probability(self):
        model = STMOperationModel(read_count=3, write_count=1)
        assert model.read_probability == 0.75

    def test_empty(self):
        model = STMOperationModel(0, 0)
        assert model.generate(random.Random(0)) == []
        assert model.read_probability == 0.0

    def test_non_strict_right_length(self):
        model = STMOperationModel(5, 5)
        assert len(model.generate(random.Random(0), strict=False)) == 10

    def test_memoryless_order(self):
        # A strictly alternating pattern should not be reproduced exactly
        # (that is the point of the paper's Fig. 10/11 comparison).
        operations = [Operation.READ, Operation.WRITE] * 50
        model = STMOperationModel.fit(operations)
        outputs = {tuple(model.generate(random.Random(s))) for s in range(5)}
        assert tuple(operations) not in outputs or len(outputs) > 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            STMOperationModel(-1, 0)

    def test_roundtrip(self):
        model = STMOperationModel(4, 6)
        restored = STMOperationModel.from_dict(model.to_dict())
        assert restored.read_count == 4 and restored.write_count == 6


class TestSTMLeafFactory:
    def test_profile_and_synthesis(self, mixed_trace):
        profile = build_profile(mixed_trace, leaf_factory=stm_leaf_factory)
        synthetic = synthesize(profile, seed=2)
        assert len(synthetic) == len(mixed_trace)
        assert synthetic.read_count() == mixed_trace.read_count()
        assert synthetic.is_sorted()

    def test_leaf_metadata_matches_mcc(self, mixed_trace):
        stm_profile = build_profile(mixed_trace, leaf_factory=stm_leaf_factory)
        mcc_profile = build_profile(mixed_trace)
        assert len(stm_profile) == len(mcc_profile)
        for stm_leaf, mcc_leaf in zip(stm_profile, mcc_profile):
            assert stm_leaf.start_time == mcc_leaf.start_time
            assert stm_leaf.count == mcc_leaf.count
            assert stm_leaf.region == mcc_leaf.region


class TestHybridFactories:
    def test_address_only_factory(self, mixed_trace):
        from repro.baselines.stm import stm_address_leaf_factory
        from repro.core.leaf import McCOperationModel

        profile = build_profile(mixed_trace, leaf_factory=stm_address_leaf_factory)
        for leaf in profile:
            assert isinstance(leaf.address_model, STMAddressModel)
            assert isinstance(leaf.operation_model, McCOperationModel)
        synthetic = synthesize(profile, seed=1)
        assert len(synthetic) == len(mixed_trace)
        assert synthetic.read_count() == mixed_trace.read_count()

    def test_operation_only_factory(self, mixed_trace):
        from repro.baselines.stm import stm_operation_leaf_factory
        from repro.core.leaf import McCAddressModel

        profile = build_profile(mixed_trace, leaf_factory=stm_operation_leaf_factory)
        for leaf in profile:
            assert isinstance(leaf.address_model, McCAddressModel)
            assert isinstance(leaf.operation_model, STMOperationModel)
        synthetic = synthesize(profile, seed=1)
        assert synthetic.read_count() == mixed_trace.read_count()

    def test_hybrid_profiles_serialize(self, mixed_trace):
        from repro.baselines.stm import stm_address_leaf_factory
        from repro.core.serialization import profile_from_dict, profile_to_dict

        profile = build_profile(mixed_trace, leaf_factory=stm_address_leaf_factory)
        restored = profile_from_dict(profile_to_dict(profile))
        assert synthesize(restored, seed=2) == synthesize(profile, seed=2)
