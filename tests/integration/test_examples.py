"""Smoke tests: every example script runs end to end (reduced scale)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("EXAMPLE_REQUESTS", "1500")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_example_inventory():
    # The README promises these examples exist.
    for name in (
        "quickstart.py",
        "soc_memory_exploration.py",
        "profile_exchange.py",
        "cache_study.py",
        "full_soc.py",
        "noc_study.py",
    ):
        assert name in EXAMPLES
