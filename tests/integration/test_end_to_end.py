"""Integration tests: the full industry->academia pipeline."""

import pytest

from repro import (
    available_workloads,
    build_profile,
    load_profile,
    save_profile,
    synthesize,
    two_level_rs,
    two_level_ts,
    workload_trace,
)
from repro.baselines.hrd import HRDModel
from repro.baselines.stm import stm_leaf_factory
from repro.eval.metrics import percent_error
from repro.sim.cache_driver import run_cache_trace
from repro.sim.driver import simulate_trace


class TestOptionAPipeline:
    """Fig. 1 Option A: trace -> profile -> synthetic trace -> simulator."""

    def test_full_pipeline_hevc(self, tmp_path):
        trace = workload_trace("hevc1", num_requests=4_000)
        profile = build_profile(trace, name="hevc1")

        # Industry ships the profile file; academia loads it.
        path = tmp_path / "hevc1.mprof.gz"
        save_profile(profile, path)
        received = load_profile(path)

        synthetic = synthesize(received, seed=7)
        assert len(synthetic) == len(trace)

        baseline = simulate_trace(trace)
        recreated = simulate_trace(synthetic)
        # Strict convergence: burst totals match very closely.
        assert percent_error(recreated.read_bursts, baseline.read_bursts) < 5
        assert percent_error(recreated.write_bursts, baseline.write_bursts) < 5

    @pytest.mark.parametrize("name", ["fbc-linear1", "trex1", "crypto1"])
    def test_row_hit_fidelity(self, name):
        trace = workload_trace(name, num_requests=6_000)
        profile = build_profile(trace)
        synthetic = synthesize(profile, seed=3)
        baseline = simulate_trace(trace)
        recreated = simulate_trace(synthetic)
        assert percent_error(recreated.read_row_hits, baseline.read_row_hits) < 20

    def test_stm_leaf_pipeline(self):
        trace = workload_trace("fbc-tiled1", num_requests=4_000)
        profile = build_profile(trace, leaf_factory=stm_leaf_factory)
        synthetic = synthesize(profile, seed=3)
        assert len(synthetic) == len(trace)
        assert synthetic.read_count() == trace.read_count()


class TestCachePipeline:
    """Sec. V: CPU->L1 traces through the cache hierarchy."""

    def test_mocktails_tracks_baseline_miss_rate(self):
        trace = workload_trace("hmmer", num_requests=15_000)
        profile = build_profile(trace, two_level_rs(5_000))
        synthetic = synthesize(profile, seed=2)

        baseline = run_cache_trace(trace)
        recreated = run_cache_trace(synthetic)
        assert abs(recreated.l1_miss_rate - baseline.l1_miss_rate) < 0.08

    def test_hrd_tracks_baseline_miss_rate(self):
        trace = workload_trace("hmmer", num_requests=15_000)
        synthetic = HRDModel.fit(trace).synthesize(seed=2)
        baseline = run_cache_trace(trace)
        recreated = run_cache_trace(synthetic)
        assert abs(recreated.l1_miss_rate - baseline.l1_miss_rate) < 0.12


class TestDeterminism:
    def test_whole_pipeline_reproducible(self):
        trace_a = workload_trace("manhattan", num_requests=2_000, seed=4)
        trace_b = workload_trace("manhattan", num_requests=2_000, seed=4)
        assert trace_a == trace_b
        synth_a = synthesize(build_profile(trace_a), seed=9)
        synth_b = synthesize(build_profile(trace_b), seed=9)
        assert synth_a == synth_b

    def test_all_workloads_importable(self):
        assert len(available_workloads()) == 41
