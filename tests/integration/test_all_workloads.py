"""Integration matrix: profile/synthesis invariants for every workload.

Runs the full Mocktails loop over all 18 Table II traces and a sample of
SPEC-like traces, checking the invariants the methodology guarantees:
exact request/read/write/size reproduction (strict convergence), footprint
containment, time-span preservation and serialization round-trips.
"""

from collections import Counter

import pytest

from repro.core.profiler import build_profile
from repro.core.serialization import profile_from_dict, profile_to_dict
from repro.core.synthesis import synthesize
from repro.core.hierarchy import two_level_rs, two_level_ts
from repro.workloads.registry import TABLE_II_WORKLOADS, workload_trace
from repro.workloads.spec import FIG15_BENCHMARKS

SMALL = 2_000


def _config_for(name: str):
    # SPEC traces use request-count intervals (Sec. V); Table II traces
    # use the 2L-TS cycle-count configuration (Sec. IV).
    if name in TABLE_II_WORKLOADS:
        return two_level_ts(500_000)
    return two_level_rs(SMALL // 4)


@pytest.mark.parametrize("name", TABLE_II_WORKLOADS + FIG15_BENCHMARKS)
class TestWorkloadMatrix:
    def test_strict_convergence_invariants(self, name):
        trace = workload_trace(name, num_requests=SMALL)
        profile = build_profile(trace, _config_for(name))
        synthetic = synthesize(profile, seed=11)

        assert len(synthetic) == len(trace)
        assert synthetic.is_sorted()
        assert synthetic.read_count() == trace.read_count()
        assert Counter(r.size for r in synthetic) == Counter(r.size for r in trace)

    def test_footprint_containment(self, name):
        trace = workload_trace(name, num_requests=SMALL)
        profile = build_profile(trace, _config_for(name))
        synthetic = synthesize(profile, seed=11)
        footprint = trace.address_range()
        assert all(footprint.contains(r.address) for r in synthetic)

    def test_time_span_preserved(self, name):
        trace = workload_trace(name, num_requests=SMALL)
        profile = build_profile(trace, _config_for(name))
        synthetic = synthesize(profile, seed=11)
        # Leaves keep their start times, so the synthetic trace must span
        # roughly the same window (within one temporal interval).
        assert synthetic.start_time >= trace.start_time
        assert abs(synthetic.end_time - trace.end_time) <= 1_000_000

    def test_profile_roundtrip(self, name):
        trace = workload_trace(name, num_requests=SMALL)
        profile = build_profile(trace, _config_for(name))
        restored = profile_from_dict(profile_to_dict(profile))
        assert synthesize(restored, seed=5) == synthesize(profile, seed=5)
