"""Unit tests for the data-value modeling extension."""

import random
from collections import Counter

import pytest

from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.core.trace import Trace
from repro.values import (
    ValueProfile,
    attach_values,
    bdi_compressibility,
    build_value_profile,
    histogram_distance,
    laplace_noise_histogram,
    laplace_sample,
    last_value_prediction_rate,
    synthesize_with_values,
    value_entropy,
)
from repro.values.model import LeafValueModel

from ..conftest import req


@pytest.fixture
def trace():
    return Trace([req(i * 10, 0x1000 + (i % 16) * 64) for i in range(200)])


class TestAttachValues:
    @pytest.mark.parametrize("kind", ["pixels", "counters", "sparse"])
    def test_one_value_per_request(self, trace, kind):
        values = attach_values(trace, kind)
        assert len(values) == len(trace)
        assert all(0 <= v <= 0xFFFF_FFFF for v in values)

    def test_unknown_kind(self, trace):
        with pytest.raises(ValueError):
            attach_values(trace, "noise")

    def test_deterministic(self, trace):
        assert attach_values(trace, "pixels", seed=3) == attach_values(
            trace, "pixels", seed=3
        )

    def test_pixels_value_local(self, trace):
        values = attach_values(trace, "pixels")
        rate = last_value_prediction_rate(trace, values)
        assert rate > 0.3  # same-location values barely change

    def test_sparse_mostly_zero(self, trace):
        values = attach_values(trace, "sparse")
        assert values.count(0) > len(values) * 0.5


class TestPrivacy:
    def test_laplace_sample_centered(self):
        rng = random.Random(0)
        samples = [laplace_sample(rng, 1.0) for _ in range(5000)]
        assert abs(sum(samples) / len(samples)) < 0.1

    def test_noised_histogram_close_for_large_epsilon(self):
        counts = Counter({0: 1000, 1: 500, -1: 500})
        noised = laplace_noise_histogram(counts, epsilon=10.0, rng=random.Random(0))
        assert histogram_distance(counts, noised) < 0.05

    def test_small_epsilon_distorts_more(self):
        counts = Counter({0: 100, 1: 50})
        rng = random.Random(0)
        strong = laplace_noise_histogram(counts, epsilon=0.05, rng=rng)
        weak = laplace_noise_histogram(counts, epsilon=50.0, rng=random.Random(0))
        assert histogram_distance(counts, strong) >= histogram_distance(counts, weak)

    def test_never_empty(self):
        counts = Counter({7: 1})
        noised = laplace_noise_histogram(counts, epsilon=0.01, rng=random.Random(1))
        assert sum(noised.values()) >= 1

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            laplace_noise_histogram(Counter({0: 1}), 0.0, random.Random(0))


class TestLeafValueModel:
    def test_fit_and_generate_count(self):
        model = LeafValueModel.fit([10, 12, 14, 16], None, random.Random(0))
        assert len(model.generate(random.Random(1))) == 4

    def test_constant_values(self):
        model = LeafValueModel.fit([5, 5, 5], None, random.Random(0))
        generated = model.generate(random.Random(1))
        # Start quantized to 16; deltas all zero.
        assert generated == [0, 0, 0]

    def test_start_value_quantized(self):
        model = LeafValueModel.fit([1234], None, random.Random(0))
        assert model.start_value % 16 == 0

    def test_roundtrip(self):
        model = LeafValueModel.fit([1, 3, 2, 5, 4], None, random.Random(0))
        restored = LeafValueModel.from_dict(model.to_dict())
        assert restored.generate(random.Random(2)) == model.generate(random.Random(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LeafValueModel.fit([], None, random.Random(0))


class TestValueProfile:
    def test_alignment_with_request_profile(self, trace):
        values = attach_values(trace, "counters")
        config = two_level_ts(1_000)
        request_profile = build_profile(trace, config)
        value_profile = build_value_profile(trace, values, config, epsilon=None)
        assert len(value_profile) == len(request_profile)
        assert value_profile.total_values == len(trace)

    def test_mismatched_lengths_rejected(self, trace):
        with pytest.raises(ValueError):
            build_value_profile(trace, [1, 2, 3])

    def test_generate_right_count(self, trace):
        values = attach_values(trace, "counters")
        profile = build_value_profile(trace, values, epsilon=1.0)
        assert len(profile.generate(seed=1)) == len(trace)

    def test_roundtrip(self, trace):
        values = attach_values(trace, "pixels")
        profile = build_value_profile(trace, values, epsilon=1.0)
        restored = ValueProfile.from_dict(profile.to_dict())
        assert restored.generate(seed=4) == profile.generate(seed=4)
        assert restored.epsilon == profile.epsilon

    def test_file_roundtrip(self, trace, tmp_path):
        values = attach_values(trace, "pixels")
        profile = build_value_profile(trace, values, epsilon=1.0)
        path = tmp_path / "values.mvprof.gz"
        size = profile.save(path)
        assert size == path.stat().st_size
        restored = ValueProfile.load(path)
        assert restored.generate(seed=4) == profile.generate(seed=4)

    def test_synthesize_with_values(self, trace):
        values = attach_values(trace, "counters")
        config = two_level_ts(1_000)
        request_profile = build_profile(trace, config)
        value_profile = build_value_profile(trace, values, config, epsilon=None)
        synthetic, synthetic_values = synthesize_with_values(
            request_profile, value_profile, seed=2
        )
        assert len(synthetic) == len(trace)
        assert len(synthetic_values) == len(trace)
        assert synthetic.is_sorted()

    def test_value_locality_preserved(self, trace):
        # The headline property: downstream value-locality metrics of the
        # synthetic stream track the original.
        values = attach_values(trace, "counters")
        config = two_level_ts(1_000)
        request_profile = build_profile(trace, config)
        value_profile = build_value_profile(trace, values, config, epsilon=2.0)
        synthetic, synthetic_values = synthesize_with_values(
            request_profile, value_profile, seed=2
        )
        original = bdi_compressibility(values)
        recreated = bdi_compressibility(synthetic_values)
        assert abs(original - recreated) < 0.3

    def test_privacy_hides_exact_values(self, trace):
        values = attach_values(trace, "pixels")
        profile = build_value_profile(trace, values, epsilon=1.0, seed=9)
        generated = profile.generate(seed=1)
        # The exact original sequence must not be reproduced.
        assert generated != list(values)


class TestValueMetrics:
    def test_prediction_rate_perfect_for_constant(self, trace):
        values = [7] * len(trace)
        assert last_value_prediction_rate(trace, values) == 1.0

    def test_prediction_rate_zero_for_changing(self, trace):
        values = list(range(len(trace)))
        assert last_value_prediction_rate(trace, values) == 0.0

    def test_prediction_rate_validates(self, trace):
        with pytest.raises(ValueError):
            last_value_prediction_rate(trace, [1])

    def test_bdi_all_small_deltas(self):
        assert bdi_compressibility(list(range(64))) == 1.0

    def test_bdi_incompressible(self):
        values = [i * (1 << 20) for i in range(64)]
        assert bdi_compressibility(values) < 0.2

    def test_entropy_bounds(self):
        assert value_entropy([5, 5, 5, 5]) == 0.0
        assert value_entropy([1, 2, 3, 4]) == pytest.approx(2.0)
        assert value_entropy([]) == 0.0
