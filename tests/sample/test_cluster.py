"""Tests for the deterministic seeded k-means (:mod:`repro.sample.cluster`)."""

import random

import pytest

from repro.sample.cluster import (
    _assign,
    _assign_scalar,
    kmeans,
    normalize,
    squared_distance,
)


def _vectors(n, dims=4, seed=7):
    rng = random.Random(seed)
    return [tuple(rng.uniform(0.0, 10.0) for _ in range(dims)) for _ in range(n)]


class TestNormalize:
    def test_min_max_scaling(self):
        scaled = normalize([(0.0, 10.0), (5.0, 20.0), (10.0, 30.0)])
        assert scaled == [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]

    def test_constant_dimension_maps_to_zero(self):
        scaled = normalize([(3.0, 1.0), (3.0, 2.0)])
        assert [v[0] for v in scaled] == [0.0, 0.0]

    def test_empty(self):
        assert normalize([]) == []


class TestKMeans:
    def test_deterministic_across_runs(self):
        vectors = normalize(_vectors(40))
        first = kmeans(vectors, 5, seed=3)
        second = kmeans(vectors, 5, seed=3)
        assert first.assignments == second.assignments
        assert first.centroids == second.centroids  # bitwise float equality
        assert first.inertia == second.inertia

    def test_seed_changes_init(self):
        vectors = normalize(_vectors(60))
        runs = {kmeans(vectors, 6, seed=s).inertia for s in range(8)}
        # Different seeds may converge to different local optima; at
        # minimum nothing crashes and inertia stays non-negative.
        assert all(inertia >= 0.0 for inertia in runs)

    def test_k_clamped_to_vector_count(self):
        vectors = normalize(_vectors(3))
        result = kmeans(vectors, 10, seed=0)
        assert len(result.centroids) == 3
        assert sorted(set(result.assignments)) == [0, 1, 2]

    def test_identical_vectors(self):
        vectors = [(0.5, 0.5)] * 8
        result = kmeans(vectors, 3, seed=1)
        assert result.inertia == 0.0
        assert len(result.assignments) == 8

    def test_single_vector(self):
        result = kmeans([(1.0, 2.0)], 1, seed=0)
        assert list(result.assignments) == [0]
        assert list(result.centroids) == [(1.0, 2.0)]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            kmeans([(0.0,)], 0, seed=0)

    def test_tight_clusters_recovered(self):
        # Two well-separated blobs must land in distinct clusters.
        blob_a = [(0.0 + i * 0.01, 0.0) for i in range(10)]
        blob_b = [(1.0 + i * 0.01, 1.0) for i in range(10)]
        result = kmeans(blob_a + blob_b, 2, seed=0)
        labels_a = set(result.assignments[:10])
        labels_b = set(result.assignments[10:])
        assert len(labels_a) == len(labels_b) == 1
        assert labels_a != labels_b


class TestAssign:
    def test_numpy_matches_scalar(self):
        vectors = normalize(_vectors(50, dims=8))
        centroids = [vectors[3], vectors[17], vectors[41]]
        assert _assign(vectors, centroids) == _assign_scalar(vectors, centroids)

    def test_tie_goes_to_first_centroid(self):
        # Equidistant point: scalar strict-< keeps the first centroid,
        # and the numpy argmin path must agree.
        vectors = [(0.5, 0.5)]
        centroids = [(0.0, 0.0), (1.0, 1.0)]
        assert _assign(vectors, centroids) == [0]
        assert _assign_scalar(vectors, centroids) == [0]


class TestSquaredDistance:
    def test_basic(self):
        assert squared_distance((0.0, 0.0), (3.0, 4.0)) == 25.0

    def test_zero(self):
        assert squared_distance((1.5, 2.5), (1.5, 2.5)) == 0.0
