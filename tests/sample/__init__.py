"""Tests for the statistical sampling subsystem (:mod:`repro.sample`)."""
