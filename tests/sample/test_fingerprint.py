"""Tests for interval slicing and fingerprinting (:mod:`repro.sample.fingerprint`)."""

import pytest

from repro.core.columnar import as_columnar
from repro.core.hierarchy import TemporalLayer
from repro.core.partition import (
    partition_by_cycle_count,
    partition_by_request_count,
)
from repro.core.trace import Trace
from repro.sample.fingerprint import (
    FEATURE_NAMES,
    IntervalFingerprint,
    feature_vector,
    fingerprint_intervals,
    fingerprint_trace,
    interval_slices,
    iter_stream_intervals,
)
from repro.workloads.characterize import characterize
from repro.workloads.registry import workload_trace

from ..conftest import req


def _as_requests(interval):
    # ColumnarTrace slices and partition chunks both iterate requests.
    return list(interval)


class TestIntervalSlices:
    def test_empty_trace(self):
        assert interval_slices(Trace(), TemporalLayer("request_count", 10)) == []

    def test_request_count_matches_partition(self):
        trace = workload_trace("hevc1", 2_000)
        layer = TemporalLayer("request_count", 128)
        slices = interval_slices(trace, layer)
        reference = partition_by_request_count(trace, 128)
        assert len(slices) == len(reference)
        for ours, theirs in zip(slices, reference):
            assert _as_requests(ours) == _as_requests(theirs)

    def test_cycle_count_matches_partition(self):
        trace = workload_trace("manhattan", 2_000)
        layer = TemporalLayer("cycle_count", 100_000)
        slices = interval_slices(trace, layer)
        reference = partition_by_cycle_count(trace, 100_000)
        assert len(slices) == len(reference)
        for ours, theirs in zip(slices, reference):
            assert _as_requests(ours) == _as_requests(theirs)

    def test_cycle_count_skips_empty_bins(self):
        # Two dense bursts separated by a long idle gap: only two bins.
        trace = Trace(
            [req(i, 64 * i) for i in range(8)]
            + [req(1_000_000 + i, 64 * i) for i in range(8)]
        )
        slices = interval_slices(trace, TemporalLayer("cycle_count", 100))
        assert [len(s) for s in slices] == [8, 8]

    def test_unsorted_cycle_trace_rejected(self):
        trace = Trace([req(100, 0), req(0, 64)])
        with pytest.raises(ValueError, match="sorted by timestamp"):
            interval_slices(trace, TemporalLayer("cycle_count", 10))


class TestFingerprints:
    def test_vector_matches_feature_names(self):
        trace = workload_trace("hevc1", 500)
        fingerprint = IntervalFingerprint(0, as_columnar(trace))
        assert len(fingerprint.vector) == len(FEATURE_NAMES)
        assert fingerprint.vector == feature_vector(characterize(trace))

    @pytest.mark.parametrize("name", ["hevc1", "manhattan", "fbc-linear1", "mcf"])
    def test_batched_matches_per_interval(self, name):
        # fingerprint_trace's whole-column fast path must be
        # bit-identical to characterizing each interval on its own.
        trace = workload_trace(name, 3_000)
        layer = TemporalLayer("cycle_count", 50_000)
        slices, fingerprints = fingerprint_trace(trace, layer)
        reference = fingerprint_intervals(interval_slices(trace, layer))
        assert len(fingerprints) == len(reference) == len(slices)
        for ours, theirs in zip(fingerprints, reference):
            assert ours.index == theirs.index
            assert ours.requests == theirs.requests
            assert ours.start_time == theirs.start_time
            assert ours.vector == theirs.vector  # bitwise float equality

    def test_batched_matches_per_interval_request_count(self):
        trace = workload_trace("opencl1", 2_000)
        layer = TemporalLayer("request_count", 100)
        _, fingerprints = fingerprint_trace(trace, layer)
        reference = fingerprint_intervals(interval_slices(trace, layer))
        assert [fp.vector for fp in fingerprints] == [
            fp.vector for fp in reference
        ]

    def test_single_request_intervals(self):
        # One-request intervals have empty diff-space (no gaps/strides);
        # the batched path must not choke on empty segments.
        trace = Trace([req(i * 1_000, 64 * i, "R" if i % 2 else "W") for i in range(7)])
        layer = TemporalLayer("request_count", 1)
        _, fingerprints = fingerprint_trace(trace, layer)
        reference = fingerprint_intervals(interval_slices(trace, layer))
        assert [fp.vector for fp in fingerprints] == [
            fp.vector for fp in reference
        ]


class TestStreamIntervals:
    @pytest.mark.parametrize("block_requests", [64, 333, 1024])
    def test_stream_matches_in_memory_request_count(self, block_requests):
        trace = workload_trace("mcf", 2_000)
        layer = TemporalLayer("request_count", 150)
        expected = interval_slices(trace, layer)
        blocks = self._blocks(trace, block_requests)
        streamed = list(iter_stream_intervals(iter(blocks), layer))
        assert [index for index, _ in streamed] == list(range(len(expected)))
        for (_, ours), theirs in zip(streamed, expected):
            assert _as_requests(ours) == _as_requests(theirs)

    @pytest.mark.parametrize("block_requests", [64, 333, 1024])
    def test_stream_matches_in_memory_cycle_count(self, block_requests):
        trace = workload_trace("hevc1", 2_000)
        layer = TemporalLayer("cycle_count", 50_000)
        expected = interval_slices(trace, layer)
        blocks = self._blocks(trace, block_requests)
        streamed = list(iter_stream_intervals(iter(blocks), layer))
        assert len(streamed) == len(expected)
        for (_, ours), theirs in zip(streamed, expected):
            assert _as_requests(ours) == _as_requests(theirs)

    @staticmethod
    def _blocks(trace, block_requests):
        columns = as_columnar(trace)
        return [
            columns[start : start + block_requests]
            for start in range(0, len(columns), block_requests)
        ]
