"""CLI surface of statistical sampling: ``quick sampling`` and ``stream``."""

import json

from repro.eval import experiments
from repro.eval.__main__ import main
from repro.workloads.registry import workload_trace


def _clear_sampling_cache():
    experiments._SAMPLING_CACHE.clear()


class TestSamplingExperiment:
    def test_quick_sampling_table(self, capsys):
        _clear_sampling_cache()
        assert main([
            "quick", "sampling", "--requests", "1500",
            "--sample-intervals", "2", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "=== sampling" in out
        assert "geomean err" in out
        assert "hevc1" in out

    def test_json_out_rows_within_bound(self, tmp_path, capsys):
        _clear_sampling_cache()
        out_path = tmp_path / "sampling.json"
        assert main([
            "run", "sampling", "--requests", "1500",
            "--sample-intervals", "2", "--no-cache",
            "--json-out", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        rows = data["sampling"]
        assert rows  # one entry per Table II workload
        for name, row in rows.items():
            assert row["within_bound"], f"{name} exceeded its bound"
            assert row["k"] <= 2

    def test_sampling_env_restored_after_run(self, capsys, monkeypatch):
        import os

        _clear_sampling_cache()
        monkeypatch.delenv("MOCKTAILS_SAMPLE_INTERVALS", raising=False)
        assert main([
            "quick", "sampling", "--requests", "1500",
            "--sample-intervals", "2", "--no-cache",
        ]) == 0
        capsys.readouterr()
        assert "MOCKTAILS_SAMPLE_INTERVALS" not in os.environ

    def test_exact_rows_marked(self, capsys):
        # K larger than any interval count: every row is exact.
        _clear_sampling_cache()
        assert main([
            "quick", "sampling", "--requests", "1500",
            "--sample-intervals", "999", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "exact" in out


class TestStreamSampling:
    def test_stream_with_sampling(self, tmp_path, capsys):
        path = tmp_path / "t.mtr"
        workload_trace("hevc1", 3_000).save_binary(path)
        assert main([
            "stream", str(path), "--sample-intervals", "2",
            "--block-requests", "512",
        ]) == 0
        out = capsys.readouterr().out
        assert "sampled 2 of" in out
        assert "error bound" in out

    def test_stream_exact_when_k_covers(self, tmp_path, capsys):
        path = tmp_path / "t.mtr"
        workload_trace("hevc1", 3_000).save_binary(path)
        assert main([
            "stream", str(path), "--sample-intervals", "9999",
        ]) == 0
        out = capsys.readouterr().out
        assert "exact (K covers every interval)" in out
