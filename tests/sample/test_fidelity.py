"""End-to-end sampling fidelity: predicted-vs-full error honours the bound."""

import pytest

from repro.core.columnar import as_columnar
from repro.core.hierarchy import two_level_rs, two_level_ts
from repro.core.profiler import build_profile
from repro.core.serialization import profile_to_dict
from repro.core.trace import Trace
from repro.eval import experiments
from repro.eval.parallel import SampleJob, prewarm
from repro.sample import (
    build_sampled_profile,
    sampled_profile_from_file,
    sampling_comparison,
)
from repro.workloads.registry import available_workloads, workload_trace

from ..conftest import req

REQUESTS = 1_500
INTERVAL = 50_000
CONFIG = two_level_ts(cycles_per_interval=INTERVAL)


def _clear_sampling_cache():
    experiments._SAMPLING_CACHE.clear()


class TestWithinBound:
    @pytest.mark.parametrize("name", available_workloads())
    def test_every_generator_within_bound(self, name):
        # The headline acceptance criterion: for every workload
        # generator the sampled estimate's Fig. 6/13/14 geomean error
        # stays inside the plan's declared error bound.
        trace = workload_trace(name, REQUESTS)
        report = sampling_comparison(trace, CONFIG, k=2, seed=0, name=name)
        assert report.within_bound, (
            f"{name}: geomean error {report.geomean_error_percent:.2f}% "
            f"exceeds bound {report.error_bound_percent:.2f}%"
        )

    def test_request_space_hierarchy(self):
        # SPEC-style models are usually profiled with 2L-RS; the
        # sampler must work with a request_count outer layer too.
        trace = workload_trace("mcf", REQUESTS)
        config = two_level_rs(requests_per_interval=200)
        report = sampling_comparison(trace, config, k=2, seed=0, name="mcf")
        assert not report.plan.exact
        assert report.within_bound


class TestExactContract:
    def test_k_at_least_interval_count_byte_identical(self):
        trace = workload_trace("hevc1", REQUESTS)
        columns = as_columnar(trace)
        full = build_profile(columns, CONFIG, name="hevc1")
        sampled, plan = build_sampled_profile(
            trace, CONFIG, k=10_000, name="hevc1"
        )
        assert plan.exact
        assert profile_to_dict(sampled) == profile_to_dict(full)

    def test_exact_report_has_zero_error(self):
        trace = workload_trace("hevc1", REQUESTS)
        report = sampling_comparison(trace, CONFIG, k=10_000, name="hevc1")
        assert report.plan.exact
        assert report.within_bound
        for metric in report.metrics.values():
            assert metric["predicted"] == metric["full"]

    def test_single_interval_trace_is_exact(self):
        # mcf's model emits a tight request burst: one cycle interval.
        trace = Trace([req(i, 64 * (i % 32)) for i in range(200)])
        report = sampling_comparison(trace, CONFIG, k=1, name="single")
        assert report.plan.interval_count == 1
        assert report.plan.exact

    def test_constant_address_trace(self):
        # Degenerate fingerprints (all-identical vectors) must not
        # break clustering or weighting.
        trace = Trace([req(i * INTERVAL // 4, 0x1000) for i in range(64)])
        report = sampling_comparison(trace, CONFIG, k=2, name="constant")
        assert report.plan.k >= 1
        assert report.within_bound


class TestDeterminism:
    def test_two_runs_bit_identical(self):
        trace = workload_trace("trex1", REQUESTS)
        first = sampling_comparison(trace, CONFIG, k=2, seed=0, name="trex1")
        second = sampling_comparison(trace, CONFIG, k=2, seed=0, name="trex1")
        assert first.to_dict() == second.to_dict()

    def test_sampled_profile_two_runs_identical(self):
        trace = workload_trace("hevc2", REQUESTS)
        first, plan_a = build_sampled_profile(trace, CONFIG, k=2, seed=0)
        second, plan_b = build_sampled_profile(trace, CONFIG, k=2, seed=0)
        assert plan_a == plan_b
        assert profile_to_dict(first) == profile_to_dict(second)

    def test_streaming_matches_in_memory(self, tmp_path):
        trace = workload_trace("hevc1", REQUESTS)
        path = tmp_path / "trace.mtr"
        trace.save_binary(path)

        in_memory, plan_mem = build_sampled_profile(trace, CONFIG, k=3, seed=0)
        for block_requests in (128, 333, 10_000):
            streamed, plan_stream = sampled_profile_from_file(
                path, CONFIG, k=3, seed=0, block_requests=block_requests
            )
            assert plan_stream == plan_mem
            assert profile_to_dict(streamed) == profile_to_dict(in_memory)


class TestRunnerAndParallel:
    def test_report_for_is_cached(self):
        _clear_sampling_cache()
        first = experiments.sampling_report_for("hevc1", REQUESTS, k=2)
        second = experiments.sampling_report_for("hevc1", REQUESTS, k=2)
        assert first is second  # cache hit returns the same payload

    def test_prewarm_matches_serial(self):
        _clear_sampling_cache()
        serial = experiments.sampling_report_for("hevc1", REQUESTS, k=2)

        _clear_sampling_cache()
        executed = prewarm(
            [SampleJob("hevc1", REQUESTS, k=2)], processes=2
        )
        assert executed == 1
        warmed = experiments.sampling_report_for("hevc1", REQUESTS, k=2)
        assert warmed == serial

    def test_sampling_fidelity_runner(self):
        _clear_sampling_cache()
        results = experiments.sampling_fidelity(
            REQUESTS, workloads=["hevc1", "mcf"], k=2
        )
        assert set(results) == {"hevc1", "mcf"}
        for name, row in results.items():
            assert row["name"] == name
            assert row["within_bound"]
