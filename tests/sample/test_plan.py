"""Tests for sampling plans (:mod:`repro.sample.plan`)."""

import pytest

from repro import obs
from repro.core.hierarchy import TemporalLayer
from repro.sample import (
    build_plan,
    configured_sample_intervals,
    configured_sample_seed,
    default_sample_k,
    error_bound_percent,
    sampling_fingerprint,
    set_sampling,
)
from repro.sample.fingerprint import fingerprint_trace
from repro.sample.plan import ERROR_BOUND_FLOOR_PERCENT, ERROR_BOUND_SCALE
from repro.workloads.registry import workload_trace


def _fingerprints(name="hevc1", requests=3_000, interval=50_000):
    _, fingerprints = fingerprint_trace(
        workload_trace(name, requests), TemporalLayer("cycle_count", interval)
    )
    return fingerprints


class TestBuildPlan:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            build_plan(_fingerprints(), 0)

    def test_empty_fingerprints_exact(self):
        plan = build_plan([], 3)
        assert plan.exact
        assert plan.interval_count == 0
        assert plan.representatives == ()

    def test_k_at_least_interval_count_is_exact(self):
        fingerprints = _fingerprints()
        n = len(fingerprints)
        for k in (n, n + 1, n * 10):
            plan = build_plan(fingerprints, k)
            assert plan.exact
            assert plan.k == n
            assert plan.representatives == tuple(range(n))
            assert plan.weights == (1.0,) * n
            assert plan.error_bound_percent == 0.0

    def test_sampled_plan_shape(self):
        fingerprints = _fingerprints()
        plan = build_plan(fingerprints, 3, seed=0)
        assert not plan.exact
        assert 1 <= plan.k <= 3
        assert len(plan.representatives) == plan.k
        assert list(plan.representatives) == sorted(plan.representatives)
        assert all(w >= 1.0 for w in plan.weights)
        assert len(plan.assignments) == len(fingerprints)

    def test_weights_reconstruct_total_requests(self):
        fingerprints = _fingerprints()
        plan = build_plan(fingerprints, 3, seed=0)
        total = sum(fp.requests for fp in fingerprints)
        assert plan.total_requests == total
        reconstructed = sum(
            w * fingerprints[rep].requests
            for rep, w in zip(plan.representatives, plan.weights)
        )
        assert reconstructed == pytest.approx(total)

    def test_representative_belongs_to_its_cluster(self):
        fingerprints = _fingerprints()
        plan = build_plan(fingerprints, 4, seed=1)
        for rep, size in zip(plan.representatives, plan.cluster_sizes):
            cluster = plan.assignments[rep]
            members = [i for i, c in enumerate(plan.assignments) if c == cluster]
            assert rep in members
            assert len(members) == size

    def test_deterministic(self):
        fingerprints = _fingerprints()
        assert build_plan(fingerprints, 3, seed=5) == build_plan(
            fingerprints, 3, seed=5
        )

    def test_bound_formula(self):
        fingerprints = _fingerprints()
        plan = build_plan(fingerprints, 2, seed=0)
        assert plan.error_bound_percent == error_bound_percent(plan.dispersion)
        assert plan.error_bound_percent == (
            ERROR_BOUND_FLOOR_PERCENT + ERROR_BOUND_SCALE * plan.dispersion
        )

    def test_obs_counters(self):
        fingerprints = _fingerprints()
        registry = obs.enable()
        try:
            plan = build_plan(fingerprints, 3, seed=0)
            seen = registry.counter("sample.intervals.seen").value
            selected = registry.counter("sample.intervals.selected").value
            assert seen == len(fingerprints)
            assert selected == len(plan.representatives)
        finally:
            obs.disable()


class TestDefaultK:
    def test_ten_percent_rounded_up(self):
        assert default_sample_k(1) == 1
        assert default_sample_k(10) == 1
        assert default_sample_k(11) == 2
        assert default_sample_k(27) == 3
        assert default_sample_k(100) == 10

    def test_never_zero(self):
        assert default_sample_k(0) == 1


class TestEnvConfig:
    def test_round_trip(self, monkeypatch):
        monkeypatch.delenv("MOCKTAILS_SAMPLE_INTERVALS", raising=False)
        monkeypatch.delenv("MOCKTAILS_SAMPLE_SEED", raising=False)
        assert configured_sample_intervals() is None
        assert configured_sample_seed() == 0
        assert sampling_fingerprint() == "off"

        set_sampling(5, seed=9)
        assert configured_sample_intervals() == 5
        assert configured_sample_seed() == 9
        assert sampling_fingerprint() == "k=5:seed=9"

        set_sampling(None)
        assert configured_sample_intervals() is None
        assert sampling_fingerprint() == "off"

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            set_sampling(0)
        monkeypatch.setenv("MOCKTAILS_SAMPLE_INTERVALS", "banana")
        with pytest.raises(ValueError):
            configured_sample_intervals()
        monkeypatch.setenv("MOCKTAILS_SAMPLE_INTERVALS", "-2")
        with pytest.raises(ValueError):
            configured_sample_intervals()

    def test_sampling_key_in_memo_cache_key(self, monkeypatch):
        from repro.eval.parallel import DramJob
        from repro.store.memo import cache_key

        job = DramJob(name="hevc1", num_requests=1_000)
        monkeypatch.delenv("MOCKTAILS_SAMPLE_INTERVALS", raising=False)
        off = cache_key(job)
        set_sampling(3, seed=0)
        try:
            on = cache_key(job)
        finally:
            set_sampling(None)
        assert off != on
