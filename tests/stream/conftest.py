"""Shared helpers for the streaming tests."""

from __future__ import annotations

import random

import pytest

from repro.core.columnar import ColumnarTrace
from repro.core.request import MemoryRequest, Operation
from repro.core.trace import Trace


def synthetic_trace(num_requests: int, seed: int = 0) -> Trace:
    """A deterministic trace with ties, bursts, jumps and mixed ops."""
    rng = random.Random(seed)
    requests = []
    clock = 100
    address = 0x1000
    for _ in range(num_requests):
        clock += rng.choice([0, 0, 1, 2, 5, 40, 300, 100_000])
        if rng.random() < 0.08:
            address = rng.randrange(0, 1 << 34, 64)
        else:
            address = (address + rng.choice([64, 64, 128, -64, 4096])) % (1 << 40)
        operation = Operation.WRITE if rng.random() < 0.3 else Operation.READ
        requests.append(
            MemoryRequest(clock, address, operation, rng.choice([4, 8, 64]))
        )
    return Trace(requests)


@pytest.fixture
def stream_trace() -> Trace:
    return synthetic_trace(1200, seed=7)


@pytest.fixture
def stream_columns(stream_trace) -> ColumnarTrace:
    return ColumnarTrace.from_trace(stream_trace)
