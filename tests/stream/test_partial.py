"""Property tests: mergeable partials reproduce the single-pass fits.

The map-reduce contract is exact equality, not statistical closeness:
for every split of the input into chunks, feeding the chunks through
partials and merging must produce the same model objects — including
Markov transition *insertion order*, which is serialization-visible —
as fitting the whole sequence at once.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.columnar import ColumnarTrace
from repro.core.leaf import LeafModel
from repro.core.serialization import leaf_to_dict
from repro.core.mcc import McCModel
from repro.core.request import AddressRange
from repro.stream.partial import LeafPartial, McCPartial

from ..conftest import req


def _feed(values):
    partial = McCPartial()
    for value in values:
        partial.feed_one(value)
    return partial


def _value_stream(rng, length):
    alphabet = [0, 1, 2, 64, -64, 4096]
    return [rng.choice(alphabet) for _ in range(length)]


@pytest.mark.parametrize("length", [0, 1, 2, 5, 37])
def test_mcc_partial_matches_fit(length):
    rng = random.Random(length)
    values = _value_stream(rng, length)
    assert _feed(values).finalize().to_dict() == McCModel.fit(values).to_dict()


def test_mcc_partial_constant_runs():
    for values in ([], [7], [7, 7], [7, 7, 7, 7]):
        assert _feed(values).finalize().to_dict() == McCModel.fit(values).to_dict()


def test_mcc_partial_merge_every_split_point():
    rng = random.Random(99)
    values = _value_stream(rng, 23)
    expected = McCModel.fit(values).to_dict()
    for split in range(len(values) + 1):
        left = _feed(values[:split])
        left.merge(_feed(values[split:]))
        assert left.finalize().to_dict() == expected, f"split at {split}"


def test_mcc_partial_merge_many_chunks():
    rng = random.Random(5)
    values = _value_stream(rng, 64)
    expected = McCModel.fit(values).to_dict()
    for chunk in (1, 3, 7, 64):
        total = McCPartial()
        for start in range(0, len(values), chunk):
            total.merge(_feed(values[start : start + chunk]))
        assert total.finalize().to_dict() == expected, f"chunk size {chunk}"


def _leaf_requests(seed, length):
    rng = random.Random(seed)
    requests = []
    clock = 50
    address = 0x2000
    for _ in range(length):
        clock += rng.choice([0, 1, 5, 80])
        address = (address + rng.choice([64, -64, 256])) % (1 << 30)
        requests.append(
            req(clock, address, rng.choice("RW"), rng.choice([8, 64]))
        )
    return requests


def _feed_leaf(requests):
    partial = LeafPartial()
    if requests:
        partial.feed_block(ColumnarTrace.from_trace(requests))
    return partial


@pytest.mark.parametrize("length", [1, 2, 9, 40])
def test_leaf_partial_matches_fit(length):
    requests = _leaf_requests(length, length)
    region = AddressRange(0, 1 << 30)
    expected = leaf_to_dict(LeafModel.fit(requests, region))
    assert leaf_to_dict(_feed_leaf(requests).finalize(region=region)) == expected


def test_leaf_partial_merge_every_split_point():
    requests = _leaf_requests(3, 17)
    region = AddressRange(0, 1 << 30)
    expected = leaf_to_dict(LeafModel.fit(requests, region))
    for split in range(len(requests) + 1):
        left = _feed_leaf(requests[:split])
        left.merge(_feed_leaf(requests[split:]))
        assert leaf_to_dict(left.finalize(region=region)) == expected, f"split {split}"


def test_leaf_partial_block_feed_matches_single_block():
    requests = _leaf_requests(11, 30)
    columns = ColumnarTrace.from_trace(requests)
    whole = LeafPartial()
    whole.feed_block(columns)
    chunked = LeafPartial()
    for block in columns.iter_blocks(7):
        chunked.feed_block(block)
    assert leaf_to_dict(chunked.finalize()) == leaf_to_dict(whole.finalize())


def test_leaf_partial_tight_region_matches_hierarchy():
    """finalize() without a region uses the leaf's own footprint."""
    requests = _leaf_requests(21, 25)
    start = min(r.address for r in requests)
    end = max(r.end_address for r in requests)
    fitted = _feed_leaf(requests).finalize()
    assert leaf_to_dict(fitted) == leaf_to_dict(
        LeafModel.fit(requests, AddressRange(start, end))
    )


def test_partials_are_picklable():
    """Shards cross process boundaries in the parallel build."""
    requests = _leaf_requests(8, 12)
    partial = _feed_leaf(requests)
    clone = pickle.loads(pickle.dumps(partial))
    assert leaf_to_dict(clone.finalize()) == leaf_to_dict(partial.finalize())
    mcc = _feed([1, 2, 1, 2, 3])
    assert pickle.loads(pickle.dumps(mcc)).finalize() == mcc.finalize()
