"""Chunked reader: block concatenation == whole-file loads, loud errors.

``iter_blocks`` must reproduce the whole-file loaders request for
request in every on-disk format, and must name the byte offset of the
first missing or corrupt byte — the guarantee the incremental gzip
satellite exists to provide.
"""

from __future__ import annotations

import gzip

import pytest

from repro.core.columnar import ColumnarTrace
from repro.core.errors import CorruptArtifactError
from repro.stream import iter_blocks

SUFFIXES = (".mtr", ".mtr.gz", ".csv", ".csv.gz")


def _save(trace, path):
    if ".mtr" in path.name:
        return trace.save_binary(path)
    return trace.save_csv(path)


def _drain(path, block_requests):
    blocks = list(iter_blocks(path, block_requests))
    assert all(len(block) <= block_requests for block in blocks)
    return blocks


@pytest.mark.parametrize("suffix", SUFFIXES)
@pytest.mark.parametrize("block_requests", [1, 7, 256, 10_000])
def test_blocks_concat_to_whole_trace(suffix, block_requests, stream_trace, tmp_path):
    path = tmp_path / f"t{suffix}"
    _save(stream_trace, path)
    blocks = _drain(path, block_requests)
    assert ColumnarTrace.concat(blocks) == ColumnarTrace.from_trace(stream_trace)


@pytest.mark.parametrize("suffix", SUFFIXES)
def test_empty_trace_yields_no_blocks(suffix, stream_trace, tmp_path):
    path = tmp_path / f"empty{suffix}"
    _save(stream_trace[:0], path)
    assert _drain(path, 64) == []


def test_block_requests_must_be_positive(tmp_path):
    for bad in (0, -1):
        with pytest.raises(ValueError, match="block_requests"):
            iter_blocks(tmp_path / "t.mtr", bad)


def test_unknown_suffix_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown trace suffix"):
        iter_blocks(tmp_path / "t.parquet")


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "t.mtr"
    path.write_bytes(b"NOPE" + b"\x00" * 8)
    with pytest.raises(ValueError, match="not a Mocktails binary trace"):
        list(iter_blocks(path))


def test_truncated_header_names_offset(tmp_path):
    path = tmp_path / "t.mtr"
    path.write_bytes(b"MTRC\x00\x00")
    with pytest.raises(CorruptArtifactError, match="byte offset 0"):
        list(iter_blocks(path))


def test_truncated_payload_names_offset(stream_trace, tmp_path):
    path = tmp_path / "t.mtr"
    stream_trace.save_binary(path)
    whole = path.read_bytes()
    path.write_bytes(whole[:-5])
    with pytest.raises(CorruptArtifactError, match="byte offset"):
        list(iter_blocks(path, 64))


def test_truncated_gzip_stream_names_compressed_offset(stream_trace, tmp_path):
    path = tmp_path / "t.mtr.gz"
    stream_trace.save_binary(path)
    whole = path.read_bytes()
    path.write_bytes(whole[: len(whole) // 2])
    with pytest.raises(CorruptArtifactError, match="gzip|truncated"):
        list(iter_blocks(path, 64))


def test_gzip_sniffed_regardless_of_suffix(stream_trace, tmp_path):
    """A gzipped payload under a plain suffix still reads (like load_*)."""
    plain = tmp_path / "p.mtr"
    stream_trace.save_binary(plain)
    sneaky = tmp_path / "s.mtr"
    sneaky.write_bytes(gzip.compress(plain.read_bytes(), mtime=0))
    assert ColumnarTrace.concat(_drain(sneaky, 100)) == ColumnarTrace.from_trace(
        stream_trace
    )


def test_csv_missing_header(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,0x40,R,64\n")
    with pytest.raises(CorruptArtifactError, match="missing CSV header"):
        list(iter_blocks(path))


def test_csv_malformed_record_names_line(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "timestamp,address,operation,size\n"
        "1,0x40,R,64\n"
        "2,0x80,R,not-a-size\n"
    )
    with pytest.raises(CorruptArtifactError, match="line 3"):
        list(iter_blocks(path))
