"""Out-of-core synthesis and replay: identical results, crash-safe files.

``synthesize_to_file`` must write the same bytes ``synthesize`` +
``save_*`` would; the block replay twins must return the same
statistics as their in-memory counterparts; and a process killed
mid-write must never leave a partial trace at the destination.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.profiler import build_profile
from repro.core.synthesis import synthesize, synthesize_to_file
from repro.sim.cache_driver import run_cache_blocks, run_cache_trace
from repro.sim.driver import simulate_blocks, simulate_trace


@pytest.fixture
def profile(stream_trace):
    return build_profile(stream_trace, name="t", stream=False)


@pytest.mark.parametrize("suffix", [".mtr", ".mtr.gz", ".csv", ".csv.gz"])
def test_synthesize_to_file_byte_identical(suffix, profile, tmp_path):
    trace = synthesize(profile, seed=3)
    ref = tmp_path / f"ref{suffix}"
    if ".mtr" in suffix:
        trace.save_binary(ref)
    else:
        trace.save_csv(ref)
    out = tmp_path / f"out{suffix}"
    written = synthesize_to_file(profile, out, seed=3, block_requests=57)
    assert written == len(trace)
    assert out.read_bytes() == ref.read_bytes()


def test_synthesize_to_file_block_requests_validated(profile, tmp_path):
    with pytest.raises(ValueError, match="block_requests"):
        synthesize_to_file(profile, tmp_path / "t.mtr", block_requests=0)


@pytest.mark.parametrize("backend", ["columnar", "scalar"])
def test_cache_blocks_match_trace_replay(backend, stream_columns):
    expected = run_cache_trace(stream_columns, backend=backend)
    got = run_cache_blocks(stream_columns.iter_blocks(128), backend=backend)
    assert got.l1 == expected.l1
    assert got.l2 == expected.l2


def test_simulate_blocks_match_trace_replay(stream_trace, stream_columns):
    expected = simulate_trace(stream_trace)
    got = simulate_blocks(stream_columns.iter_blocks(97))
    assert got == expected
    assert got.latency_count == expected.latency_count


_KILL_SCRIPT = """
import sys, time
from repro.core.columnar import ColumnarTrace
from repro.stream.writer import TraceBlockWriter

writer = TraceBlockWriter(sys.argv[1])
block = ColumnarTrace([1] * 512, [64] * 512, [64] * 512, [0] * 512)
writer.write_block(block)
print("READY", flush=True)
while True:
    writer.write_block(block)
    time.sleep(0.01)
"""


def test_sigkill_mid_write_leaves_no_destination(tmp_path):
    """A hard kill mid-stream must not publish a partial trace file."""
    dest = tmp_path / "victim.mtr"
    src_dir = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(dest)],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        assert line.strip() == b"READY", line
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert not dest.exists()
