"""Streamed profile build == single-pass build, down to serialized bytes.

The acceptance bar for the out-of-core path: for every hierarchy shape
(temporal outer, spatial outer, single layer, request_count and
cycle_count bins) and every tested block size — including pathological
``block_requests=1`` — the streamed profile serializes to the same
bytes as ``core/profiler.build_profile`` over the whole trace.
"""

from __future__ import annotations

import os

import pytest

from repro.core.columnar import ColumnarTrace
from repro.core.hierarchy import (
    HierarchyConfig,
    SpatialLayer,
    TemporalLayer,
    micro_macro,
    two_level_rs,
    two_level_ts,
)
from repro.core.profiler import build_profile
from repro.core.serialization import profile_to_dict, save_profile
from repro.stream import (
    build_profile_sharded,
    build_profile_streaming,
    set_stream_mode,
)
from repro.stream.partial import ProfilePartial

from .conftest import synthetic_trace

CONFIGS = {
    "2lts": two_level_ts,
    "2lrs": two_level_rs,
    "micro-macro": micro_macro,
    "pure-request-count": lambda: HierarchyConfig(
        [TemporalLayer("request_count", 97)]
    ),
    "pure-cycle-count": lambda: HierarchyConfig([TemporalLayer("cycle_count", 1009)]),
    "spatial-outer": lambda: HierarchyConfig(
        [SpatialLayer("fixed", 1 << 22), TemporalLayer("request_count", 50)]
    ),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_streamed_bytes_identical_across_block_sizes(
    config_name, stream_trace, stream_columns, tmp_path
):
    config = CONFIGS[config_name]()
    reference = build_profile(stream_trace, config, name="t", stream=False)
    ref_path = tmp_path / "ref.json.gz"
    save_profile(reference, ref_path)
    for block_requests in (1, 7, 1000, len(stream_trace)):
        streamed = build_profile_streaming(
            stream_columns.iter_blocks(block_requests), config, name="t"
        )
        got_path = tmp_path / f"got_{block_requests}.json.gz"
        save_profile(streamed, got_path)
        assert got_path.read_bytes() == ref_path.read_bytes(), (
            f"{config_name} at block_requests={block_requests}"
        )


def test_streamed_empty_trace(stream_trace):
    config = two_level_ts()
    reference = build_profile(stream_trace[:0], config, stream=False)
    streamed = build_profile_streaming(iter(()), config)
    assert profile_to_dict(streamed) == profile_to_dict(reference)


@pytest.mark.parametrize("config_name", ["2lts", "pure-cycle-count", "spatial-outer"])
def test_sharded_build_identical(config_name, stream_trace, stream_columns, tmp_path):
    config = CONFIGS[config_name]()
    expected = profile_to_dict(build_profile(stream_trace, config, stream=False))
    trace_path = tmp_path / "t.mtr.gz"
    stream_trace.save_binary(trace_path)
    for jobs in (1, 2):
        sharded = build_profile_sharded(
            trace_path, config, jobs=jobs, block_requests=128, shard_requests=256
        )
        assert profile_to_dict(sharded) == expected, f"{config_name} jobs={jobs}"


def test_shard_merge_requires_stream_order(stream_columns):
    config = two_level_ts()
    blocks = list(stream_columns.iter_blocks(100))
    first = ProfilePartial(config)
    first.feed(blocks[0])
    # A shard whose offset skips the middle of the stream must be rejected.
    origin = int(blocks[0].timestamps[0])
    late = ProfilePartial(config, offset=2 * len(blocks[0]), origin=origin)
    late.feed(blocks[2])
    with pytest.raises(ValueError, match="stream order"):
        first.merge(late)


def test_only_offset_zero_partial_can_finish(stream_columns):
    config = two_level_ts()
    block = next(stream_columns.iter_blocks(100))
    shard = ProfilePartial(config, offset=5, origin=0)
    shard.feed(block)
    with pytest.raises(ValueError, match="offset-0"):
        shard.finish()


def test_cycle_count_shard_requires_origin():
    config = HierarchyConfig([TemporalLayer("cycle_count", 100)])
    with pytest.raises(ValueError, match="origin"):
        ProfilePartial(config, offset=10)


def test_unsorted_blocks_rejected():
    config = two_level_ts()
    partial = ProfilePartial(config)
    unsorted = ColumnarTrace([5, 3], [0x100, 0x200], [64, 64], [0, 0])
    with pytest.raises(ValueError, match="sorted"):
        partial.feed(unsorted)


def test_cross_block_regression_rejected():
    config = two_level_ts()
    partial = ProfilePartial(config)
    partial.feed(ColumnarTrace([10, 20], [0x100, 0x140], [64, 64], [0, 0]))
    with pytest.raises(ValueError, match="sorted"):
        partial.feed(ColumnarTrace([5], [0x180], [64], [0]))


def test_env_switch_routes_build_profile(stream_trace):
    """MOCKTAILS_STREAM reroutes build_profile through the streaming path."""
    expected = profile_to_dict(build_profile(stream_trace, stream=False))
    set_stream_mode(True, block_requests=123)
    try:
        assert os.environ["MOCKTAILS_STREAM"] == "1"
        assert os.environ["MOCKTAILS_STREAM_BLOCK_REQUESTS"] == "123"
        assert profile_to_dict(build_profile(stream_trace)) == expected
    finally:
        set_stream_mode(False)
    assert "MOCKTAILS_STREAM" not in os.environ
    assert "MOCKTAILS_STREAM_BLOCK_REQUESTS" not in os.environ
    assert profile_to_dict(build_profile(stream_trace)) == expected


def test_stream_true_requires_default_leaf_factory(stream_trace):
    with pytest.raises(ValueError, match="leaf factory"):
        build_profile(
            stream_trace, stream=True, leaf_factory=lambda requests, region: None
        )


def test_streamed_scalar_backend_identical(stream_trace, stream_columns):
    """backend='scalar' streams bit-identically to the columnar default."""
    config = two_level_ts()
    expected = profile_to_dict(
        build_profile(stream_trace, config, stream=False, backend="scalar")
    )
    streamed = build_profile_streaming(
        stream_columns.iter_blocks(256), config, backend="scalar"
    )
    assert profile_to_dict(streamed) == expected


def test_long_trace_with_wide_gaps():
    """cycle_count binning survives huge timestamp gaps (uint64 math)."""
    trace = synthetic_trace(3000, seed=13)
    config = HierarchyConfig(
        [TemporalLayer("cycle_count", 5000), SpatialLayer("fixed", 1 << 20)]
    )
    expected = profile_to_dict(build_profile(trace, config, stream=False))
    columns = ColumnarTrace.from_trace(trace)
    for block_requests in (1, 64, 997):
        streamed = build_profile_streaming(columns.iter_blocks(block_requests), config)
        assert profile_to_dict(streamed) == expected, block_requests
