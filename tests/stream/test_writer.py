"""Block writer: byte-identical output, atomic publish, clean aborts.

``TraceBlockWriter`` must produce exactly the bytes of
``Trace.save_binary``/``save_csv`` — the deterministic-artifact
contract extends down to the gzip container — and must never leave a
partial file at the destination, whatever goes wrong mid-write.
"""

from __future__ import annotations

import pytest

from repro.core.columnar import ColumnarTrace
from repro.stream import TraceBlockWriter

SUFFIXES = (".mtr", ".mtr.gz", ".csv", ".csv.gz")


def _reference_bytes(trace, path):
    if ".mtr" in path.name:
        trace.save_binary(path)
    else:
        trace.save_csv(path)
    return path.read_bytes()


@pytest.mark.parametrize("suffix", SUFFIXES)
@pytest.mark.parametrize("known_count", [True, False])
def test_blockwise_write_is_byte_identical(
    suffix, known_count, stream_trace, stream_columns, tmp_path
):
    expected = _reference_bytes(stream_trace, tmp_path / f"ref{suffix}")
    out = tmp_path / f"out{suffix}"
    count = len(stream_trace) if known_count else None
    with TraceBlockWriter(out, expected_requests=count) as writer:
        for block in stream_columns.iter_blocks(100):
            writer.write_block(block)
    assert writer.requests_written == len(stream_trace)
    assert writer.bytes_written == out.stat().st_size
    assert out.read_bytes() == expected


@pytest.mark.parametrize("suffix", SUFFIXES)
def test_empty_trace_write(suffix, stream_trace, tmp_path):
    expected = _reference_bytes(stream_trace[:0], tmp_path / f"ref{suffix}")
    out = tmp_path / f"out{suffix}"
    with TraceBlockWriter(out):
        pass
    assert out.read_bytes() == expected


def test_count_mismatch_aborts_without_file(stream_columns, tmp_path):
    out = tmp_path / "short.mtr"
    writer = TraceBlockWriter(out, expected_requests=len(stream_columns) + 5)
    for block in stream_columns.iter_blocks(100):
        writer.write_block(block)
    with pytest.raises(ValueError, match="expected"):
        writer.close()
    assert not out.exists()


def test_exception_leaves_destination_untouched(stream_columns, tmp_path):
    out = tmp_path / "keep.mtr"
    out.write_bytes(b"precious")
    with pytest.raises(RuntimeError, match="boom"):
        with TraceBlockWriter(out) as writer:
            writer.write_block(next(stream_columns.iter_blocks(10)))
            raise RuntimeError("boom")
    assert out.read_bytes() == b"precious"


def test_write_after_close_rejected(tmp_path):
    writer = TraceBlockWriter(tmp_path / "t.csv")
    writer.close()
    with pytest.raises(RuntimeError, match="closed"):
        writer.write_block(ColumnarTrace([1], [64], [64], [0]))


def test_close_is_idempotent(tmp_path):
    writer = TraceBlockWriter(tmp_path / "t.csv")
    size = writer.close()
    assert writer.close() == size


def test_unknown_suffix_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown trace suffix"):
        TraceBlockWriter(tmp_path / "t.bin")


def test_negative_expected_rejected(tmp_path):
    with pytest.raises(ValueError, match="non-negative"):
        TraceBlockWriter(tmp_path / "t.mtr", expected_requests=-1)
