"""The memoization correctness bar: warm == cold, bit for bit.

A figure run served from the cross-run store must be indistinguishable
from a cold serial run — same dicts, same floats, same JSON bytes — and
a corrupted cache must heal itself (recompute) rather than leak garbage
into results.
"""

import json

import pytest

from repro import obs, store
from repro.eval import comparison, experiments
from repro.eval.parallel import jobs_for, prewarm

SMALL = 1_200
SPEC_SMALL = 1_500
SPEC_SUBSET = ("gobmk", "mcf")


def _clear_process_caches():
    comparison.clear_cache()
    experiments._SPEC_SYNTH_CACHE.clear()
    experiments._SPEC_SIZE_CACHE.clear()


@pytest.fixture(autouse=True)
def isolated(tmp_path):
    _clear_process_caches()
    store.deactivate()
    obs.disable()
    yield
    _clear_process_caches()
    store.deactivate()
    obs.disable()


def test_fig6_warm_cache_bit_identical_to_cold_serial(tmp_path):
    # Cold serial run, no store anywhere near it: the reference.
    cold = experiments.figure_6(SMALL)

    # Cold run *through* the store (populates it).
    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    prewarm(jobs_for("fig6", SMALL), processes=1)
    populated = experiments.figure_6(SMALL)
    assert populated == cold
    assert memo.misses > 0 and memo.hits == 0

    # Warm run in a "fresh process" (in-process caches dropped).
    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    obs.enable()
    try:
        prewarm(jobs_for("fig6", SMALL), processes=1)
        warm = experiments.figure_6(SMALL)
        counters = obs.active().snapshot()["counters"]
    finally:
        obs.disable()

    assert warm == cold
    # Byte-level identity of the serialized results, not just ==.
    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)
    # Everything came from the store; nothing was simulated.
    assert memo.hits == len(jobs_for("fig6", SMALL))
    assert memo.misses == 0
    assert counters.get("eval.runs.computed", 0) == 0
    assert counters["eval.jobs.memoized"] == len(jobs_for("fig6", SMALL))


def test_fig17_and_fig14_payloads_roundtrip_through_store(tmp_path):
    cold_17 = experiments.figure_17(SPEC_SMALL, benchmarks=SPEC_SUBSET)
    cold_14 = experiments.figure_14(SPEC_SMALL, benchmarks=SPEC_SUBSET)

    _clear_process_caches()
    store.configure(tmp_path / "cache")
    prewarm(jobs_for("fig17", SPEC_SMALL, benchmarks=SPEC_SUBSET), processes=1)
    prewarm(jobs_for("fig14", SPEC_SMALL, benchmarks=SPEC_SUBSET), processes=1)

    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    prewarm(jobs_for("fig17", SPEC_SMALL, benchmarks=SPEC_SUBSET), processes=1)
    prewarm(jobs_for("fig14", SPEC_SMALL, benchmarks=SPEC_SUBSET), processes=1)
    assert memo.hits == len(SPEC_SUBSET) * 2 and memo.misses == 0

    assert experiments.figure_17(SPEC_SMALL, benchmarks=SPEC_SUBSET) == cold_17
    assert experiments.figure_14(SPEC_SMALL, benchmarks=SPEC_SUBSET) == cold_14


def test_corrupted_blob_triggers_recompute_with_identical_result(tmp_path):
    cold = experiments.figure_10(SMALL)

    _clear_process_caches()
    store.configure(tmp_path / "cache")
    prewarm(jobs_for("fig10", SMALL), processes=1)

    # Corrupt every stored blob.
    for blob in (tmp_path / "cache" / "objects").rglob("*"):
        if blob.is_file():
            blob.write_bytes(b"rotten" + blob.read_bytes()[6:])

    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    executed = prewarm(jobs_for("fig10", SMALL), processes=1)
    warm = experiments.figure_10(SMALL)

    assert warm == cold  # recomputed, not read back rotten
    assert memo.corrupt == len(jobs_for("fig10", SMALL))
    assert executed == len(jobs_for("fig10", SMALL))

    # And the heal is durable: the next fresh run hits cleanly.
    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    assert prewarm(jobs_for("fig10", SMALL), processes=1) == 0
    assert memo.hits == len(jobs_for("fig10", SMALL))
    assert experiments.figure_10(SMALL) == cold


def test_parallel_prewarm_populates_store_for_serial_warm_run(tmp_path):
    cold = experiments.figure_10(SMALL)

    _clear_process_caches()
    store.configure(tmp_path / "cache")
    prewarm(jobs_for("fig10", SMALL), processes=2)  # workers fill the store

    _clear_process_caches()
    memo = store.configure(tmp_path / "cache")
    assert prewarm(jobs_for("fig10", SMALL), processes=1) == 0
    assert memo.hits == len(jobs_for("fig10", SMALL))
    assert experiments.figure_10(SMALL) == cold
