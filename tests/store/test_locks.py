"""Per-key lockfile protocol: exclusivity, staleness, waiting."""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.store.locks import FileLock, LockTimeout


def test_acquire_release_cycle(tmp_path):
    lock = FileLock(tmp_path / "key.lock")
    assert lock.acquire()
    assert lock.held
    assert (tmp_path / "key.lock").exists()
    lock.release()
    assert not lock.held
    assert not (tmp_path / "key.lock").exists()


def test_context_manager(tmp_path):
    lock = FileLock(tmp_path / "key.lock")
    with lock:
        assert lock.held
    assert not lock.held


def test_nonblocking_acquire_fails_when_held(tmp_path):
    holder = FileLock(tmp_path / "key.lock")
    waiter = FileLock(tmp_path / "key.lock")
    with holder:
        assert waiter.acquire(block=False) is False
    assert waiter.acquire(block=False) is True
    waiter.release()


def test_blocking_acquire_times_out(tmp_path):
    holder = FileLock(tmp_path / "key.lock")
    waiter = FileLock(tmp_path / "key.lock", timeout=0.2, poll_interval=0.02)
    with holder:
        with pytest.raises(LockTimeout):
            waiter.acquire()


def test_double_acquire_rejected(tmp_path):
    lock = FileLock(tmp_path / "key.lock")
    with lock:
        with pytest.raises(RuntimeError, match="already held"):
            lock.acquire()


def test_lockfile_records_holder_pid(tmp_path):
    with FileLock(tmp_path / "key.lock") as lock:
        assert int(lock.path.read_text().strip()) == os.getpid()


def test_stale_lock_from_dead_process_is_broken(tmp_path):
    # A child takes the lock and dies without releasing (hard exit).
    src = str(Path(__file__).resolve().parents[2] / "src")
    script = (
        f"import sys; sys.path.insert(0, {src!r});"
        "from repro.store.locks import FileLock;"
        f"FileLock({str(tmp_path / 'key.lock')!r}).acquire();"
        "import os; os._exit(0)"
    )
    subprocess.run([sys.executable, "-c", script], check=True)
    assert (tmp_path / "key.lock").exists()

    # The dead PID makes the lock stale; a new acquire breaks it fast.
    lock = FileLock(tmp_path / "key.lock", timeout=5.0)
    assert lock.acquire(block=False)
    lock.release()


def test_old_lockfile_is_broken_by_age(tmp_path):
    path = tmp_path / "key.lock"
    path.write_text(f"{os.getpid()}\n")  # alive PID, but ancient mtime
    os.utime(path, (time.time() - 10_000, time.time() - 10_000))
    lock = FileLock(path, stale_after=60.0)
    assert lock.acquire(block=False)
    lock.release()


def test_wait_released_returns_when_freed(tmp_path):
    path = tmp_path / "key.lock"
    waiter = FileLock(path, poll_interval=0.01)
    assert waiter.wait_released(timeout=0.1)  # nothing held
    holder = FileLock(path)
    holder.acquire()
    assert waiter.wait_released(timeout=0.1) is False  # still held
    holder.release()
    assert waiter.wait_released(timeout=0.5)


def test_garbage_lockfile_treated_as_stale_when_old(tmp_path):
    path = tmp_path / "key.lock"
    path.write_bytes(b"\xff\xfenot a pid")
    os.utime(path, (time.time() - 10_000, time.time() - 10_000))
    lock = FileLock(path, stale_after=60.0)
    assert lock.acquire(block=False)
    lock.release()
