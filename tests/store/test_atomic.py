"""The shared atomic-write helper: interrupted writes never truncate.

Every artifact writer (profiles, traces, manifests, cache blobs) goes
through ``repro.store.atomic``. These tests pin the crash-safety
contract: a writer that dies mid-write — including a hard ``SIGKILL`` —
leaves the destination either untouched or fully written, never
truncated.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.serialization import load_profile, save_profile
from repro.core.trace import Trace
from repro.store.atomic import atomic_write_bytes, atomic_write_text


def test_writes_payload_and_returns_size(tmp_path):
    path = tmp_path / "artifact.bin"
    assert atomic_write_bytes(path, b"hello") == 5
    assert path.read_bytes() == b"hello"


def test_overwrites_existing_file(tmp_path):
    path = tmp_path / "artifact.bin"
    path.write_bytes(b"old contents")
    atomic_write_bytes(path, b"new")
    assert path.read_bytes() == b"new"


def test_text_helper_encodes_utf8(tmp_path):
    path = tmp_path / "artifact.txt"
    size = atomic_write_text(path, "héllo\n")
    assert path.read_text(encoding="utf-8") == "héllo\n"
    assert size == len("héllo\n".encode("utf-8"))


def test_crash_before_replace_leaves_destination_untouched(tmp_path, monkeypatch):
    path = tmp_path / "artifact.bin"
    path.write_bytes(b"previous good artifact")

    def exploding_replace(src, dst):
        raise KeyboardInterrupt("simulated crash mid-write")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(KeyboardInterrupt):
        atomic_write_bytes(path, b"half-written garbage")
    monkeypatch.undo()

    assert path.read_bytes() == b"previous good artifact"
    # The aborted temp file was cleaned up, not leaked.
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]


def test_sigkill_mid_save_never_truncates_profile(tmp_path):
    """Regression: a ``kill -9`` during ``save_profile`` used to be able
    to leave a truncated .mprof.gz; now the old file survives intact."""
    from repro.core.hierarchy import two_level_ts
    from repro.core.profiler import build_profile
    from repro.workloads.registry import workload_trace

    path = tmp_path / "workload.mprof.gz"
    profile = build_profile(workload_trace("hevc1", 500), two_level_ts(), name="hevc1")
    save_profile(profile, path)
    good_bytes = path.read_bytes()

    # A child process that SIGKILLs itself at the instant the payload
    # would be renamed into place — the worst possible moment.
    script = f"""
import os, signal, sys
sys.path.insert(0, {repr(str(Path(__file__).resolve().parents[2] / 'src'))})
from repro.core.hierarchy import two_level_ts
from repro.core.profiler import build_profile
from repro.core.serialization import save_profile
from repro.workloads.registry import workload_trace

def kill_self(src, dst):
    os.kill(os.getpid(), signal.SIGKILL)

os.replace = kill_self
profile = build_profile(workload_trace('trex1', 500), two_level_ts(), name='trex1')
save_profile(profile, {repr(str(path))})
"""
    result = subprocess.run([sys.executable, "-c", script], capture_output=True)
    assert result.returncode == -9  # died by SIGKILL, mid-"write"

    assert path.read_bytes() == good_bytes
    assert load_profile(path) == profile


def test_interrupted_trace_save_keeps_previous_trace(tmp_path, monkeypatch, mixed_trace):
    path = tmp_path / "trace.mtr.gz"
    mixed_trace.save_binary(path)
    before = path.read_bytes()

    calls = {"n": 0}
    real_replace = os.replace

    def failing_replace(src, dst):
        calls["n"] += 1
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", failing_replace)
    with pytest.raises(OSError):
        Trace(list(mixed_trace) * 4).save_binary(path)
    monkeypatch.setattr(os, "replace", real_replace)

    assert calls["n"] == 1
    assert path.read_bytes() == before
    assert Trace.load_binary(path) == mixed_trace
