"""Experiment memoization: key derivation, durability, corruption recovery."""

import pickle

import pytest

import repro
from repro import store
from repro.eval.parallel import DramJob, SizeJob, SpecJob
from repro.store import memo as memo_module
from repro.store.memo import ExperimentMemo, cache_key


@pytest.fixture
def memo(tmp_path):
    return ExperimentMemo(tmp_path / "cache")


# ---------------------------------------------------------------------------
# Key derivation / invalidation rules
# ---------------------------------------------------------------------------


def test_cache_key_is_stable():
    job = DramJob("hevc1", 2000, seed=0, interval=500_000)
    assert cache_key(job) == cache_key(DramJob("hevc1", 2000, seed=0, interval=500_000))


def test_cache_key_covers_every_job_field():
    base = DramJob("hevc1", 2000)
    assert cache_key(base) != cache_key(DramJob("trex1", 2000))
    assert cache_key(base) != cache_key(DramJob("hevc1", 2001))
    assert cache_key(base) != cache_key(DramJob("hevc1", 2000, seed=1))
    assert cache_key(base) != cache_key(DramJob("hevc1", 2000, interval=250_000))
    assert cache_key(base) != cache_key(DramJob("hevc1", 2000, include_stm=False))


def test_cache_key_distinguishes_job_kinds():
    # Same field values, different dataclass -> different key space.
    assert cache_key(SpecJob("mcf", 2000)) != cache_key(SizeJob("mcf", 2000))


def test_version_bump_invalidates_keys(monkeypatch):
    job = DramJob("hevc1", 2000)
    before = cache_key(job)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    monkeypatch.setattr(memo_module, "_fingerprint_cache", None)
    after = cache_key(job)
    monkeypatch.undo()
    memo_module._fingerprint_cache = None
    assert before != after
    assert cache_key(job) == before  # restored version -> restored keys


def test_non_dataclass_jobs_rejected():
    with pytest.raises(TypeError, match="dataclass"):
        cache_key({"name": "hevc1"})


def test_cache_key_separates_backends(monkeypatch):
    # Columnar-era payloads must never collide with scalar-era entries,
    # even though both backends are bit-identical by contract.
    job = DramJob("hevc1", 2000)
    monkeypatch.setenv("MOCKTAILS_BACKEND", "scalar")
    scalar_key = cache_key(job)
    monkeypatch.setenv("MOCKTAILS_BACKEND", "columnar")
    columnar_key = cache_key(job)
    assert scalar_key != columnar_key
    monkeypatch.setenv("MOCKTAILS_BACKEND", "scalar")
    assert cache_key(job) == scalar_key  # live read, not cached


def test_cache_key_uses_resolved_backend(monkeypatch):
    # "auto" resolves before keying: an auto-selected columnar run shares
    # its cache entries with an explicitly columnar one.
    from repro.core.columnar import active_backend

    job = DramJob("hevc1", 2000)
    monkeypatch.setenv("MOCKTAILS_BACKEND", "auto")
    auto_key = cache_key(job)
    monkeypatch.setenv("MOCKTAILS_BACKEND", "auto")
    resolved = active_backend()
    monkeypatch.setenv("MOCKTAILS_BACKEND", resolved)
    assert cache_key(job) == auto_key


# ---------------------------------------------------------------------------
# Fetch/store round trips
# ---------------------------------------------------------------------------


def test_fetch_miss_then_hit(memo):
    job = SizeJob("mcf", 1000)
    assert memo.fetch(job) is None
    memo.store(job, {"trace": 123, "dynamic": 45})
    assert memo.fetch(job) == {"trace": 123, "dynamic": 45}
    assert memo.hits == 1 and memo.misses == 1


def test_hit_miss_tally_survives_concurrent_fetches(memo):
    """Regression for conc-unguarded-shared-state on ``hits``/``misses``.

    ``fetch`` is called from every scheduler worker; the session tally
    now increments under ``_tally_lock``, so hammering one hot entry
    from many threads loses no updates.
    """
    import threading

    job = SizeJob("mcf", 1000)
    memo.store(job, {"trace": 1})
    per_thread, threads = 500, 8

    def hammer():
        for _ in range(per_thread):
            memo.fetch(job)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert memo.hits == per_thread * threads
    assert memo.misses == 0


def test_survives_across_instances(tmp_path):
    job = SizeJob("mcf", 1000)
    ExperimentMemo(tmp_path / "cache").store(job, {"trace": 1})
    fresh = ExperimentMemo(tmp_path / "cache")
    assert fresh.fetch(job) == {"trace": 1}


def test_store_overwrite_updates_payload(memo):
    job = SizeJob("mcf", 1000)
    memo.store(job, {"v": 1})
    memo.store(job, {"v": 2})
    assert memo.fetch(job) == {"v": 2}


def test_distinct_jobs_do_not_collide(memo):
    memo.store(SizeJob("mcf", 1000), "a")
    memo.store(SizeJob("mcf", 2000), "b")
    assert memo.fetch(SizeJob("mcf", 1000)) == "a"
    assert memo.fetch(SizeJob("mcf", 2000)) == "b"


# ---------------------------------------------------------------------------
# Corruption: detected, evicted, recomputed — never returned
# ---------------------------------------------------------------------------


def _blob_paths(memo):
    return [
        path
        for path in (memo.root / "objects").rglob("*")
        if path.is_file()
    ]


def test_corrupt_blob_is_a_miss_and_is_evicted(memo):
    job = SizeJob("mcf", 1000)
    memo.store(job, {"trace": 99})
    (blob,) = _blob_paths(memo)
    blob.write_bytes(b"\x00garbage\x00")

    assert memo.fetch(job) is None  # never returns garbage
    assert memo.corrupt == 1
    assert _blob_paths(memo) == []  # evicted
    assert memo.keys() == []  # key dropped too

    # The natural recovery: recompute and store again.
    memo.store(job, {"trace": 99})
    assert memo.fetch(job) == {"trace": 99}


def test_valid_hash_but_bad_pickle_is_a_miss(memo):
    job = SizeJob("mcf", 1000)
    key = cache_key(job)
    digest = memo.cas.put(b"not a pickle at all")
    store.atomic_write_text(memo.root / "keys" / key, digest + "\n")

    assert memo.fetch(job) is None
    assert memo.corrupt == 1
    assert not memo.cas.contains(digest)


def test_dangling_key_is_a_miss(memo):
    job = SizeJob("mcf", 1000)
    memo.store(job, "payload")
    for blob in _blob_paths(memo):
        blob.unlink()
    assert memo.fetch(job) is None
    assert memo.keys() == []


def test_verify_prunes_corruption_and_dangling_keys(memo):
    keep = SizeJob("mcf", 1000)
    corrupt = SizeJob("mcf", 2000)
    memo.store(keep, "keep me")
    memo.store(corrupt, "corrupt me")
    target = memo.cas.put(pickle.dumps("corrupt me", protocol=4))
    path = memo.root / "objects" / target[:2] / target[2:]
    path.write_bytes(b"scrambled")

    report = memo.verify(evict_corrupt=True)
    assert report["checked"] == 2
    assert report["corrupt"] == [target]
    assert len(report["dangling"]) == 1
    assert memo.fetch(keep) == "keep me"
    assert memo.fetch(corrupt) is None


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------


def test_gc_prunes_key_entries_of_evicted_blobs(memo):
    import os

    jobs = [SizeJob("mcf", n) for n in (1000, 2000, 3000)]
    for index, job in enumerate(jobs):
        memo.store(job, "x" * 200)
    for index, path in enumerate(sorted(_blob_paths(memo))):
        os.utime(path, (1000.0 + index, 1000.0 + index))

    memo.gc(max_bytes=0)
    assert memo.keys() == []
    assert all(memo.fetch(job) is None for job in jobs)


def test_clear_removes_everything(memo):
    memo.store(SizeJob("mcf", 1000), "a")
    memo.store(SizeJob("mcf", 2000), "b")
    assert memo.clear() >= 1
    assert memo.stats()["entries"] == 0
    assert memo.stats()["blobs"] == 0


# ---------------------------------------------------------------------------
# Active-memo plumbing
# ---------------------------------------------------------------------------


def test_configure_and_deactivate(tmp_path):
    assert store.active_memo() is None or store.deactivate() is None
    memo = store.configure(tmp_path / "cache")
    try:
        assert store.active_memo() is memo
        assert memo.root == tmp_path / "cache"
    finally:
        store.deactivate()
    assert store.active_memo() is None


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert store.default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert store.default_cache_dir() == tmp_path / "xdg" / "repro"


def test_obs_counters_mirror_memo_traffic(memo):
    from repro import obs

    obs.enable()
    try:
        job = SizeJob("mcf", 1000)
        memo.fetch(job)  # miss
        memo.store(job, "payload")
        memo.fetch(job)  # hit
        counters = obs.active().snapshot()["counters"]
    finally:
        obs.disable()

    assert counters["store.memo.misses"] == 1
    assert counters["store.memo.hits"] == 1
    assert counters["store.memo.stores"] == 1
