"""Content-addressed store: addressing, integrity, LRU garbage collection."""

import hashlib
import os

import pytest

from repro.core.errors import CorruptArtifactError
from repro.store.cas import ContentAddressedStore, sha256_hex


@pytest.fixture
def cas(tmp_path):
    return ContentAddressedStore(tmp_path / "cache")


def test_put_get_roundtrip(cas):
    digest = cas.put(b"payload bytes")
    assert digest == hashlib.sha256(b"payload bytes").hexdigest()
    assert cas.get(digest) == b"payload bytes"
    assert cas.contains(digest)


def test_put_is_idempotent(cas):
    first = cas.put(b"same")
    second = cas.put(b"same")
    assert first == second
    assert cas.stats() == {"blobs": 1, "bytes": 4}


def test_get_missing_raises_keyerror(cas):
    with pytest.raises(KeyError):
        cas.get(sha256_hex(b"never stored"))


def test_malformed_digest_rejected(cas):
    with pytest.raises(ValueError, match="not a sha256"):
        cas.get("zz" * 32)
    with pytest.raises(ValueError, match="not a sha256"):
        cas.get("abc")


def test_corrupt_blob_detected_on_read(cas, tmp_path):
    digest = cas.put(b"original contents")
    blob_path = tmp_path / "cache" / "objects" / digest[:2] / digest[2:]
    blob_path.write_bytes(b"tampered contents")
    with pytest.raises(CorruptArtifactError) as excinfo:
        cas.get(digest)
    assert str(blob_path) in str(excinfo.value)
    # The corrupt blob is left for the caller to evict explicitly.
    assert cas.contains(digest)
    assert cas.evict(digest)
    assert not cas.contains(digest)


def test_truncated_blob_detected(cas, tmp_path):
    digest = cas.put(b"x" * 1000)
    blob_path = tmp_path / "cache" / "objects" / digest[:2] / digest[2:]
    blob_path.write_bytes(blob_path.read_bytes()[:100])
    with pytest.raises(CorruptArtifactError):
        cas.get(digest)


def test_verify_reports_and_evicts_corrupt(cas, tmp_path):
    good = cas.put(b"good blob")
    bad = cas.put(b"soon to be bad")
    bad_path = tmp_path / "cache" / "objects" / bad[:2] / bad[2:]
    bad_path.write_bytes(b"flipped bits")

    assert cas.verify(evict_corrupt=False) == [bad]
    assert cas.contains(bad)
    assert cas.verify(evict_corrupt=True) == [bad]
    assert not cas.contains(bad)
    assert cas.contains(good)


def test_evict_missing_returns_false(cas):
    assert cas.evict(sha256_hex(b"ghost")) is False


def test_digests_enumerates_everything(cas):
    stored = {cas.put(bytes([i]) * 10) for i in range(5)}
    assert set(cas.digests()) == stored


def test_gc_evicts_least_recently_used_first(cas, tmp_path):
    old = cas.put(b"o" * 100)
    middle = cas.put(b"m" * 100)
    fresh = cas.put(b"f" * 100)
    # Make access order explicit via timestamps (get() refreshes them).
    for index, digest in enumerate((old, middle, fresh)):
        path = tmp_path / "cache" / "objects" / digest[:2] / digest[2:]
        os.utime(path, (1000.0 + index, 1000.0 + index))

    evicted = cas.gc(max_bytes=150)
    assert evicted == [old, middle]
    assert not cas.contains(old)
    assert cas.contains(fresh)


def test_gc_noop_when_under_budget(cas):
    cas.put(b"tiny")
    assert cas.gc(max_bytes=10_000) == []
    assert cas.stats()["blobs"] == 1


def test_read_refreshes_lru_position(cas, tmp_path):
    first = cas.put(b"1" * 100)
    second = cas.put(b"2" * 100)
    for index, digest in enumerate((first, second)):
        path = tmp_path / "cache" / "objects" / digest[:2] / digest[2:]
        os.utime(path, (1000.0 + index, 1000.0 + index))
    cas.get(first)  # bumps first to most-recently-used

    evicted = cas.gc(max_bytes=100)
    assert evicted == [second]
    assert cas.contains(first)


def test_obs_counters_track_store_traffic(cas):
    from repro import obs

    obs.enable()
    try:
        digest = cas.put(b"counted")
        cas.get(digest)
        cas.evict(digest)
        counters = obs.active().snapshot()["counters"]
    finally:
        obs.disable()

    assert counters["store.cas.puts"] == 1
    assert counters["store.cas.bytes_written"] == len(b"counted")
    assert counters["store.cas.gets"] == 1
    assert counters["store.cas.bytes_read"] == len(b"counted")
    assert counters["store.cas.evictions"] == 1
