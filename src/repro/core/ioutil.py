"""Incremental artifact payload reading.

Trace and profile loaders used to slurp whole files with one
``read()`` and hand the result to ``gzip.decompress`` — which holds the
complete compressed *and* decompressed payloads in memory at once, and
on a truncated file can only say "something is wrong somewhere". This
module reads artifacts in bounded chunks, decompressing gzip streams
incrementally, and reports the **byte offset** of the first corrupt or
missing compressed byte when a stream is truncated.

Used by :mod:`repro.core.trace` and :mod:`repro.core.serialization`;
the chunked *block* reader for out-of-core trace streaming lives in
:mod:`repro.stream.reader` and shares the same conventions.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Union

from .errors import CorruptArtifactError

GZIP_MAGIC = b"\x1f\x8b"

#: Bytes per read: large enough to keep syscall overhead negligible,
#: small enough that the compressed payload is never whole in memory.
CHUNK_BYTES = 1 << 20


def read_artifact_bytes(
    path: Union[str, Path],
    require_gzip: bool = False,
    what: str = "gzip stream",
) -> bytes:
    """Read an artifact, decompressing incrementally when gzipped.

    The file is consumed in :data:`CHUNK_BYTES` slices; gzip payloads
    (detected by magic bytes, like the one-shot loaders did) stream
    through ``zlib.decompressobj`` so the compressed bytes are never
    resident all at once. Multi-member gzip files are handled the same
    way ``gzip.decompress`` handles them: members are decompressed back
    to back.

    Raises :class:`CorruptArtifactError` naming ``path`` and the byte
    offset of the first bad compressed byte on truncated or corrupt
    streams; ``what`` labels the artifact kind in that message. With
    ``require_gzip`` a plain (uncompressed) file is rejected outright —
    profile files are always gzip containers.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(GZIP_MAGIC))
        if head != GZIP_MAGIC:
            if require_gzip:
                raise CorruptArtifactError(
                    path, f"not a {what} (missing gzip magic), or truncated"
                )
            pieces = [head]
            while True:
                chunk = handle.read(CHUNK_BYTES)
                if not chunk:
                    return b"".join(pieces)
                pieces.append(chunk)

        # Incremental gzip decompression. wbits=31 selects the gzip
        # container (header + trailer checksum), matching gzip.decompress.
        payload = bytearray()
        decompressor = zlib.decompressobj(wbits=31)
        consumed = 0  # compressed bytes fully handed to a decompressor
        pending = head
        eof = False
        while True:
            chunk = handle.read(CHUNK_BYTES)
            data = pending + chunk
            pending = b""
            if not data:
                break
            while data:
                try:
                    payload += decompressor.decompress(data)
                except zlib.error as error:
                    raise CorruptArtifactError(
                        path,
                        f"corrupt {what} at byte offset {consumed} ({error})",
                    ) from error
                consumed += len(data) - len(decompressor.unused_data)
                data = decompressor.unused_data
                if decompressor.eof and data:
                    # Another gzip member follows (concatenated streams).
                    decompressor = zlib.decompressobj(wbits=31)
                elif decompressor.eof:
                    eof = True
                    break
                else:
                    break
            if not chunk:
                break
        if not eof and not decompressor.eof:
            raise CorruptArtifactError(
                path,
                f"truncated {what}: ended mid-stream at byte offset {consumed}",
            )
        return bytes(payload)
