"""First-order Markov chains with strict convergence.

Mocktails models each request feature in a leaf with either a constant
or a Markov chain (the *McC* model, Sec. III-B). During synthesis the
paper uses *strict convergence*: each observed transition is consumed as
it is generated, so the synthetic sequence reproduces the exact multiset
of values from the original sequence (e.g. "only two 128 sizes and ten
64 sizes are generated" for Table I).

Naive decrement-the-probability sampling can strand: a random walk may
reach a state whose remaining transitions are exhausted while other
transitions remain. We instead generate a *random Eulerian path* through
the transition multigraph (randomized Hierholzer). The original sequence
is, by construction, an Eulerian path of that multigraph, so a random
Eulerian path from the same start state consumes every observed
transition exactly once — strict convergence with a hard guarantee —
while still randomizing the order according to the observed structure.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

State = Hashable


class MarkovChain:
    """A first-order Markov chain fit to an observed state sequence."""

    def __init__(
        self,
        initial_state: State,
        transitions: Dict[State, Counter],
        length: int,
    ):
        """Use :meth:`fit` instead of constructing directly.

        Args:
            initial_state: First state of the observed sequence.
            transitions: ``transitions[s][t]`` = observed count of s→t.
            length: Length of the observed sequence.
        """
        self.initial_state = initial_state
        self.transitions = transitions
        self.length = length

    @classmethod
    def fit(cls, sequence: Sequence[State]) -> "MarkovChain":
        if not sequence:
            raise ValueError("cannot fit a Markov chain to an empty sequence")
        transitions: Dict[State, Counter] = {}
        for current, nxt in zip(sequence, sequence[1:]):
            transitions.setdefault(current, Counter())[nxt] += 1
        return cls(sequence[0], transitions, len(sequence))

    # -- inspection ----------------------------------------------------------

    @property
    def states(self) -> List[State]:
        seen = {self.initial_state}
        ordered = [self.initial_state]
        for source, row in self.transitions.items():
            for state in (source, *row):
                if state not in seen:
                    seen.add(state)
                    ordered.append(state)
        return ordered

    def transition_probability(self, source: State, target: State) -> float:
        """P(target | source) from observed counts; 0.0 when unseen."""
        row = self.transitions.get(source)
        if not row:
            return 0.0
        total = sum(row.values())
        return row.get(target, 0) / total if total else 0.0

    def value_counts(self) -> Counter:
        """Multiset of values the chain reproduces under strict convergence."""
        counts: Counter = Counter({self.initial_state: 1})
        for row in self.transitions.values():
            counts.update(row)
        return counts

    # -- generation ----------------------------------------------------------

    def generate_strict(self, rng: random.Random) -> List[State]:
        """Generate with strict convergence (random Eulerian path).

        The result has exactly ``self.length`` states, the same value
        multiset and the same transition multiset as the fitted sequence.
        """
        adjacency: Dict[State, List[State]] = {}
        for source, row in self.transitions.items():
            edges: List[State] = []
            # Sorted targets keep generation invariant to row insertion
            # order (identical output before/after serialization).
            for target, count in sorted(row.items(), key=lambda kv: repr(kv[0])):
                edges.extend([target] * count)
            rng.shuffle(edges)
            adjacency[source] = edges

        # Randomized Hierholzer: walk until stuck, back up emitting states.
        stack = [self.initial_state]
        path: List[State] = []
        while stack:
            vertex = stack[-1]
            edges = adjacency.get(vertex)
            if edges:
                stack.append(edges.pop())
            else:
                path.append(stack.pop())
        path.reverse()
        if len(path) != self.length:  # pragma: no cover - structural guarantee
            raise RuntimeError(
                f"Eulerian path length {len(path)} != fitted length {self.length}"
            )
        return path

    def generate_sampled(self, rng: random.Random, length: Optional[int] = None) -> List[State]:
        """Generate by plain probability sampling (no convergence guarantee).

        Used by the strict-convergence ablation. When a state with no
        outgoing transitions is reached (it can only be the final state of
        the fitted sequence), the walk restarts its row from the full
        distribution of all transitions.
        """
        length = self.length if length is None else length
        result = [self.initial_state]
        current = self.initial_state
        all_rows = [row for row in self.transitions.values() if row]
        while len(result) < length:
            row = self.transitions.get(current)
            if not row:
                row = rng.choice(all_rows) if all_rows else None
                if row is None:
                    result.append(current)
                    continue
            targets = sorted(row.keys(), key=repr)
            weights = [row[t] for t in targets]
            current = rng.choices(targets, weights=weights, k=1)[0]
            result.append(current)
        return result

    # -- serialization support -------------------------------------------------

    def to_dict(self) -> dict:
        states = self.states
        index: Dict[State, int] = {state: i for i, state in enumerate(states)}
        rows: List[Tuple[int, List[Tuple[int, int]]]] = []
        for source, row in self.transitions.items():
            rows.append((index[source], [(index[t], c) for t, c in sorted(row.items(), key=str)]))
        return {
            "states": states,
            "initial": index[self.initial_state],
            "rows": rows,
            "length": self.length,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MarkovChain":
        states = data["states"]
        transitions: Dict[State, Counter] = {}
        for source_index, row in data["rows"]:
            counter = Counter()
            for target_index, count in row:
                counter[states[target_index]] = count
            transitions[states[source_index]] = counter
        return cls(states[data["initial"]], transitions, data["length"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarkovChain):
            return NotImplemented
        return (
            self.initial_state == other.initial_state
            and self.transitions == other.transitions
            and self.length == other.length
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarkovChain({len(self.states)} states, "
            f"{sum(sum(r.values()) for r in self.transitions.values())} transitions)"
        )
