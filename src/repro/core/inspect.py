"""Profile inspection: summarize what a statistical profile contains.

Used by ``python -m repro.profile info`` and by the examples to show
what does (and does not) travel when a profile is shared.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .leaf import McCAddressModel, McCOperationModel
from .profile import Profile


@dataclass
class ProfileSummary:
    """Aggregate statistics about a profile's structure."""

    leaf_count: int
    total_requests: int
    hierarchy: str
    name: str
    # Per feature: how many leaves use a constant vs a Markov chain
    # (or, for pluggable models, their MODEL_TYPE).
    feature_kinds: Dict[str, Counter] = field(default_factory=dict)
    leaf_size_histogram: Counter = field(default_factory=Counter)
    region_size_histogram: Counter = field(default_factory=Counter)
    markov_state_total: int = 0
    time_span: int = 0

    @property
    def constant_fraction(self) -> float:
        """Fraction of McC feature models that are constants."""
        constants = 0
        total = 0
        for kinds in self.feature_kinds.values():
            constants += kinds.get("constant", 0)
            total += sum(
                count for kind, count in kinds.items() if kind in ("constant", "markov")
            )
        return constants / total if total else 0.0

    @property
    def mean_leaf_size(self) -> float:
        if not self.leaf_count:
            return 0.0
        return self.total_requests / self.leaf_count


def _size_bucket(size: int) -> int:
    """Bucket sizes by power of two for compact histograms."""
    bucket = 1
    while bucket < size:
        bucket *= 2
    return bucket


def summarize_profile(profile: Profile) -> ProfileSummary:
    """Compute a structural summary of a profile."""
    summary = ProfileSummary(
        leaf_count=len(profile),
        total_requests=profile.total_requests,
        hierarchy=profile.hierarchy,
        name=profile.name,
        feature_kinds={
            "delta_time": Counter(),
            "stride": Counter(),
            "operation": Counter(),
            "size": Counter(),
        },
    )
    earliest = None
    latest = None
    for leaf in profile:
        summary.leaf_size_histogram[_size_bucket(leaf.count)] += 1
        summary.region_size_histogram[_size_bucket(leaf.region.size)] += 1
        summary.feature_kinds["delta_time"][leaf.delta_time_model.kind] += 1
        summary.feature_kinds["size"][leaf.size_model.kind] += 1

        if isinstance(leaf.address_model, McCAddressModel):
            stride_model = leaf.address_model.stride_model
            summary.feature_kinds["stride"][stride_model.kind] += 1
            if stride_model.chain is not None:
                summary.markov_state_total += len(stride_model.chain.states)
        else:
            summary.feature_kinds["stride"][leaf.address_model.MODEL_TYPE] += 1

        if isinstance(leaf.operation_model, McCOperationModel):
            summary.feature_kinds["operation"][leaf.operation_model.model.kind] += 1
        else:
            summary.feature_kinds["operation"][leaf.operation_model.MODEL_TYPE] += 1

        for model in (leaf.delta_time_model, leaf.size_model):
            if model.chain is not None:
                summary.markov_state_total += len(model.chain.states)

        earliest = leaf.start_time if earliest is None else min(earliest, leaf.start_time)
        latest = leaf.start_time if latest is None else max(latest, leaf.start_time)
    if earliest is not None and latest is not None:
        summary.time_span = latest - earliest
    return summary


def format_summary(summary: ProfileSummary) -> str:
    """Human-readable rendering of a profile summary."""
    lines: List[str] = []
    lines.append(f"name:        {summary.name or '(withheld)'}")
    lines.append(f"hierarchy:   {summary.hierarchy}")
    lines.append(f"leaves:      {summary.leaf_count:,}")
    lines.append(f"requests:    {summary.total_requests:,}")
    lines.append(f"mean leaf:   {summary.mean_leaf_size:.1f} requests")
    lines.append(f"time span:   {summary.time_span:,} cycles between leaf starts")
    lines.append(f"constant feature models: {summary.constant_fraction:.0%}")
    lines.append(f"total Markov states: {summary.markov_state_total:,}")
    for feature, kinds in summary.feature_kinds.items():
        rendered = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        lines.append(f"  {feature:10} {rendered}")
    buckets = sorted(summary.leaf_size_histogram.items())
    rendered = ", ".join(f"<={bucket}: {count}" for bucket, count in buckets[:8])
    lines.append(f"leaf sizes:  {rendered}")
    return "\n".join(lines)
