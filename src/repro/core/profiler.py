"""The Mocktails model generator: trace -> statistical profile.

This is the "Model Generator" box of the paper's Fig. 1. Industry runs
it on a proprietary trace; the resulting :class:`Profile` can be shared
without revealing the trace.

Two data paths build the same profile:

* the **scalar** path walks per-request objects through
  :func:`~repro.core.hierarchy.build_leaves` and fits each leaf with the
  ``leaf_factory`` — the reference implementation;
* the **columnar** path (numpy) partitions whole int64 columns into leaf
  index segments and fits every leaf's four McC models in batched column
  passes — no per-request objects, no per-transition Counter churn.

The columnar path is bit-identical to the scalar one, down to Markov
transition-dict insertion order (which serialization depends on). It is
used when the resolved backend (see :mod:`repro.core.columnar`) is
``columnar``, numpy is importable, the leaf factory is the default
all-McC one, and every value fits in int64; otherwise the scalar path
runs — including for a forced ``columnar`` backend without numpy, where
column *storage* still works but compute delegates to the scalar
algorithms.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .hierarchy import (
    HierarchyConfig,
    SpatialLayer,
    TemporalLayer,
    _build as _hierarchy_build,
    build_leaves,
    two_level_ts,
)
from .leaf import LeafModel, McCAddressModel, McCOperationModel
from .markov import MarkovChain
from .mcc import CONSTANT, MARKOV, McCModel
from .request import AddressRange, MemoryRequest
from .spatial import partition_dynamic_columnar, partition_fixed_columnar
from .trace import Trace

LeafModelFactory = Callable[[Sequence[MemoryRequest], AddressRange], LeafModel]

_INT64_MAX = 2**63 - 1


def build_profile(
    trace: Union[Trace, "ColumnarTrace"],
    config: HierarchyConfig = None,
    leaf_factory: LeafModelFactory = LeafModel.fit,
    name: str = "",
    backend: Optional[str] = None,
    stream: Optional[bool] = None,
):
    """Build a statistical profile from a trace.

    Args:
        trace: Time-ordered memory request trace — a :class:`Trace` or a
            :class:`~repro.core.columnar.ColumnarTrace`.
        config: Hierarchical partitioning configuration; defaults to the
            paper's ``2L-TS`` (500k-cycle temporal intervals, then dynamic
            spatial partitioning).
        leaf_factory: Builds the model for each leaf. The default fits
            all-McC leaves; pass :func:`repro.baselines.stm.stm_leaf_factory`
            for the ``2L-TS (STM)`` comparison point.
        name: Optional workload name recorded in the profile.
        backend: ``scalar``/``columnar``/``auto`` override; ``None``
            defers to the process-wide selection
            (:func:`repro.core.columnar.active_backend`). Both backends
            build bit-identical profiles.
        stream: ``True`` routes the build through the out-of-core
            map-reduce profiler (:mod:`repro.stream`) in fixed-size
            blocks; ``None`` defers to the ``MOCKTAILS_STREAM``
            environment switch (see
            :func:`repro.stream.set_stream_mode`); ``False`` forces the
            single-pass build. All paths are bit-identical.

    Returns:
        A :class:`repro.core.profile.Profile`.
    """
    from .columnar import ColumnarTrace

    if config is None:
        config = two_level_ts()

    # Bound-method equality, not identity: each LeafModel.fit attribute
    # access creates a fresh bound method object.
    if stream is not False and leaf_factory == LeafModel.fit:
        from ..stream import (
            build_profile_streaming,
            stream_block_requests,
            stream_requested,
        )

        if stream is True or (stream is None and stream_requested()):
            columns = (
                trace if isinstance(trace, ColumnarTrace) else ColumnarTrace.from_trace(trace)
            )
            return build_profile_streaming(
                columns.iter_blocks(stream_block_requests()),
                config,
                name=name,
                backend=backend,
            )
    elif stream is True:
        raise ValueError("stream=True requires the default all-McC leaf factory")

    return _build_profile_inmemory(trace, config, leaf_factory, name, backend)


def _build_profile_inmemory(
    trace: Union[Trace, "ColumnarTrace"],
    config: HierarchyConfig,
    leaf_factory: LeafModelFactory = LeafModel.fit,
    name: str = "",
    backend: Optional[str] = None,
):
    """The single-pass build — scalar or batched-columnar, never streaming.

    :mod:`repro.stream` calls this directly (not :func:`build_profile`)
    when it has to fall back to a materialized build, so the
    ``MOCKTAILS_STREAM`` switch can never recurse.
    """
    from .columnar import ColumnarTrace, numpy_or_none, resolve_backend
    from .profile import Profile

    if resolve_backend(backend) == "columnar" and leaf_factory == LeafModel.fit:
        np = numpy_or_none()
        if np is not None:
            columns = (
                trace if isinstance(trace, ColumnarTrace) else ColumnarTrace.from_trace(trace)
            )
            models = _build_models_columnar(np, columns, config)
            if models is not None:
                return Profile(models, hierarchy=config.describe(), name=name)

    if isinstance(trace, ColumnarTrace):
        trace = trace.to_trace()
    leaves = build_leaves(trace.requests, config)
    models = [leaf_factory(leaf.requests, leaf.region) for leaf in leaves]
    return Profile(models, hierarchy=config.describe(), name=name)


def fit_interval_leaves(intervals, layers, backend: Optional[str] = None) -> List[LeafModel]:
    """Fit every leaf model of a batch of completed hierarchy intervals.

    Each interval is a :class:`~repro.core.columnar.ColumnarTrace`
    holding one closed bin of an outer temporal layer; ``layers`` are the
    hierarchy layers *below* that outer layer (empty when the outer layer
    is the whole hierarchy, so each interval is itself a leaf). Returns
    the concatenation of every interval's leaf models in interval order,
    bit-identical to the single-pass profiler's models for those bins.

    This is the reduce-side fitting primitive of the streaming profiler:
    :class:`repro.stream.ProfilePartial` collects closed intervals and
    fits them in batches through this function, so the batched columnar
    kernels amortize over many intervals per call.
    """
    from .columnar import ColumnarTrace, numpy_or_none, resolve_backend

    intervals = [interval for interval in intervals if len(interval)]
    if not intervals:
        return []
    layers = tuple(layers)

    if resolve_backend(backend) == "columnar":
        np = numpy_or_none()
        if np is not None:
            models = _fit_interval_leaves_columnar(np, intervals, layers)
            if models is not None:
                return models

    models = []
    for interval in intervals:
        requests = (
            interval.to_trace().requests
            if isinstance(interval, ColumnarTrace)
            else list(interval)
        )
        for i in range(len(requests) - 1):
            if requests[i].timestamp > requests[i + 1].timestamp:
                raise ValueError("requests must be sorted by timestamp")
        for leaf in _hierarchy_build(list(requests), layers, None):
            models.append(LeafModel.fit(leaf.requests, leaf.region))
    return models


def _fit_interval_leaves_columnar(np, intervals, layers):
    """Columnar ``fit_interval_leaves``, or ``None`` to fall back."""
    from .columnar import ColumnarTrace

    columns = ColumnarTrace.concat(intervals) if len(intervals) > 1 else intervals[0]
    if int(np.max(columns.timestamps)) > _INT64_MAX:
        return None
    if int(np.max(columns.addresses)) + int(np.max(columns.sizes)) > _INT64_MAX:
        return None

    timestamps = columns.timestamps.astype(np.int64)
    addresses = columns.addresses.astype(np.int64)
    sizes = columns.sizes.astype(np.int64)
    ops = columns.ops.astype(np.int64)

    segments = []
    base = 0
    for interval in intervals:
        stop = base + len(interval)
        window = timestamps[base:stop]
        if len(window) > 1 and bool(np.any(window[1:] < window[:-1])):
            raise ValueError("requests must be sorted by timestamp")
        indices = np.arange(base, stop, dtype=np.int64)
        segments.extend(_leaf_segments(np, timestamps, addresses, sizes, layers, indices, None))
        base = stop
    return _fit_leaves_batched(np, timestamps, addresses, sizes, ops, segments)


# -- columnar path -------------------------------------------------------------


def _build_models_columnar(np, columns, config: HierarchyConfig):
    """All leaf models for ``columns``, or ``None`` to fall back to scalar.

    Falls back when any value would not survive int64 arithmetic (the
    partitioning math computes address + size and timestamp deltas in
    int64).
    """
    if len(columns) == 0:
        return []
    if int(np.max(columns.timestamps)) > _INT64_MAX:
        return None
    if int(np.max(columns.addresses)) + int(np.max(columns.sizes)) > _INT64_MAX:
        return None
    if not columns.is_sorted():
        # Same contract as build_leaves on the scalar path.
        raise ValueError("requests must be sorted by timestamp")

    timestamps = columns.timestamps.astype(np.int64)
    addresses = columns.addresses.astype(np.int64)
    sizes = columns.sizes.astype(np.int64)
    ops = columns.ops.astype(np.int64)

    everything = np.arange(len(columns), dtype=np.int64)
    segments = _leaf_segments(np, timestamps, addresses, sizes, config.layers, everything, None)
    return _fit_leaves_batched(np, timestamps, addresses, sizes, ops, segments)


def _leaf_segments(np, timestamps, addresses, sizes, layers, indices, region):
    """Recursive hierarchy application over index arrays.

    Mirrors :func:`repro.core.hierarchy._build`: same recursion order,
    same leaf regions, same per-leaf request order.
    """
    if not len(indices):
        return []
    if not layers:
        if region is None:
            leaf_addresses = addresses[indices]
            region = AddressRange(
                int(leaf_addresses.min()),
                int((leaf_addresses + sizes[indices]).max()),
            )
        return [(indices, region)]

    layer, rest = layers[0], layers[1:]
    leaves = []
    if isinstance(layer, TemporalLayer):
        for chunk in _temporal_split(np, timestamps, indices, layer):
            leaves.extend(_leaf_segments(np, timestamps, addresses, sizes, rest, chunk, region))
    else:
        for sub_region, local in _spatial_split(np, timestamps, addresses, sizes, indices, layer):
            leaves.extend(
                _leaf_segments(np, timestamps, addresses, sizes, rest, indices[local], sub_region)
            )
    return leaves


def _temporal_split(np, timestamps, indices, layer: TemporalLayer):
    if layer.kind == "request_count":
        return [indices[i : i + layer.size] for i in range(0, len(indices), layer.size)]
    times = timestamps[indices]
    bins = (times - times[0]) // layer.size
    breaks = np.flatnonzero(np.diff(bins)) + 1
    return np.split(indices, breaks)


def _spatial_split(np, timestamps, addresses, sizes, indices, layer: SpatialLayer):
    if layer.kind == "fixed":
        return partition_fixed_columnar(np, addresses[indices], layer.block_size)
    return partition_dynamic_columnar(
        np, addresses[indices], sizes[indices], timestamps[indices]
    )


def _fit_leaves_batched(np, timestamps, addresses, sizes, ops, segments) -> List[LeafModel]:
    """Fit every leaf's four McC models as batched column passes.

    All leaves' values are concatenated per feature; constant detection
    is a reduceat min/max pass, and every Markov chain is built from one
    global sort of transition pairs (see :func:`_fit_markov_batched`).
    """
    if not segments:
        return []
    leaf_count = len(segments)
    lengths = np.fromiter((len(s[0]) for s in segments), dtype=np.int64, count=leaf_count)
    gather = np.concatenate([s[0] for s in segments])
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lengths)))

    leaf_times = timestamps[gather]
    leaf_addresses = addresses[gather]
    leaf_sizes = sizes[gather]
    leaf_ops = ops[gather]

    # Per-leaf diffs (deltas/strides): one global diff, then drop the
    # positions that cross a leaf boundary. Leaf i's diffs live at
    # offsets[i] - i in the compacted array.
    if len(gather) > 1:
        keep = np.ones(len(gather) - 1, dtype=bool)
        keep[offsets[1:-1] - 1] = False
        deltas = np.diff(leaf_times)[keep]
        strides = np.diff(leaf_addresses)[keep]
    else:
        deltas = np.empty(0, dtype=np.int64)
        strides = np.empty(0, dtype=np.int64)
    diff_offsets = offsets - np.arange(leaf_count + 1, dtype=np.int64)

    delta_models = _fit_mcc_batched(np, deltas, diff_offsets)
    size_models = _fit_mcc_batched(np, leaf_sizes, offsets)
    stride_models = _fit_mcc_batched(np, strides, diff_offsets)
    op_models = _fit_mcc_batched(np, leaf_ops, offsets)

    start_times = leaf_times[offsets[:-1]].tolist()
    start_addresses = leaf_addresses[offsets[:-1]].tolist()
    counts = lengths.tolist()

    models = []
    for i, (_, region) in enumerate(segments):
        models.append(
            LeafModel(
                start_time=start_times[i],
                count=counts[i],
                region=region,
                delta_time_model=delta_models[i],
                size_model=size_models[i],
                address_model=McCAddressModel(start_addresses[i], region, stride_models[i]),
                operation_model=McCOperationModel(op_models[i]),
            )
        )
    return models


def _fit_mcc_batched(np, values, offsets) -> List[McCModel]:
    """Batched :meth:`McCModel.fit` over value segments.

    ``values`` holds every segment's observed feature sequence back to
    back; segment ``i`` is ``values[offsets[i]:offsets[i+1]]``. Returns
    one model per segment, bit-identical to fitting each individually.
    """
    segment_count = len(offsets) - 1
    lengths = np.diff(offsets)
    models: List[Optional[McCModel]] = [None] * segment_count

    if len(values):
        # reduceat treats consecutive indices as segment bounds, so empty
        # segments must be dropped, not clamped: clamping an empty tail's
        # start into range truncates the preceding segment's reduction.
        # Consecutive empty segments share their successor's offset, so
        # the non-empty starts are strictly increasing and each reduction
        # ends exactly at its own segment's end.
        nonempty = lengths > 0
        starts = offsets[:-1][nonempty]
        constant_all = np.ones(segment_count, dtype=bool)
        constant_all[nonempty] = np.minimum.reduceat(values, starts) == (
            np.maximum.reduceat(values, starts)
        )
        firsts = np.zeros(segment_count, dtype=values.dtype)
        firsts[nonempty] = values[starts]
        length_list = lengths.tolist()
        constant = constant_all.tolist()
        first_list = firsts.tolist()
    else:
        length_list = [0] * segment_count
        constant = [True] * segment_count
        first_list = [None] * segment_count

    markov_ids = []
    for i in range(segment_count):
        length = length_list[i]
        if length == 0:
            models[i] = McCModel(CONSTANT, 0, constant=None)
        elif constant[i]:
            models[i] = McCModel(CONSTANT, length, constant=first_list[i])
        else:
            markov_ids.append(i)

    if markov_ids:
        chains = _fit_markov_batched(np, values, offsets, markov_ids)
        for i, chain in zip(markov_ids, chains):
            models[i] = McCModel(MARKOV, chain.length, chain=chain)
    return models  # type: ignore[return-value]


def _fit_markov_batched(np, values, offsets, markov_ids) -> List[MarkovChain]:
    """Build every Markov chain from one global pass over transition pairs.

    Transition rows must match :meth:`MarkovChain.fit` exactly —
    including dict insertion order (sources by first occurrence as a
    source, targets by first occurrence of the pair), which
    serialization's state numbering depends on. A stable lexsort groups
    identical ``(segment, src, dst)`` pairs; sorting the groups back by
    first-occurrence position rebuilds the scalar insertion order.
    """
    selected = np.asarray(markov_ids, dtype=np.int64)
    seg_starts = offsets[:-1][selected]
    seg_stops = offsets[1:][selected]
    seg_lengths = seg_stops - seg_starts
    local_offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(seg_lengths)))
    gathered = values[_concat_ranges(np, seg_starts, seg_stops)]
    segment_of = np.repeat(np.arange(len(selected), dtype=np.int64), seg_lengths)

    same_segment = segment_of[1:] == segment_of[:-1]
    src = gathered[:-1][same_segment]
    dst = gathered[1:][same_segment]
    pair_segment = segment_of[:-1][same_segment]
    pair_count = len(src)

    order = np.lexsort((dst, src, pair_segment))
    s_src = src[order]
    s_dst = dst[order]
    s_segment = pair_segment[order]
    s_position = np.arange(pair_count, dtype=np.int64)[order]

    new_group = np.ones(pair_count, dtype=bool)
    new_group[1:] = (
        (s_segment[1:] != s_segment[:-1])
        | (s_src[1:] != s_src[:-1])
        | (s_dst[1:] != s_dst[:-1])
    )
    group_starts = np.flatnonzero(new_group)
    group_counts = np.diff(np.concatenate((group_starts, np.asarray([pair_count]))))
    g_segment = s_segment[group_starts]
    g_src = s_src[group_starts]
    g_dst = s_dst[group_starts]
    # Stable sort => the first member of each group is the earliest
    # occurrence of that (segment, src, dst) pair in sequence order.
    g_first = s_position[group_starts]

    new_row = np.ones(len(group_starts), dtype=bool)
    new_row[1:] = (g_segment[1:] != g_segment[:-1]) | (g_src[1:] != g_src[:-1])
    row_id = np.cumsum(new_row) - 1
    row_first = np.minimum.reduceat(g_first, np.flatnonzero(new_row))
    emit = np.lexsort((g_first, row_first[row_id], g_segment))

    emit_segment = g_segment[emit].tolist()
    emit_src = g_src[emit].tolist()
    emit_dst = g_dst[emit].tolist()
    emit_count = group_counts[emit].tolist()

    # Counter.__init__ (via its Mapping instance check) dominates this
    # loop if called once per row; allocate bare Counters and fill them
    # with plain dict item assignment instead (Counter does not override
    # __setitem__, and item assignment is its documented write path).
    new_counter = Counter.__new__
    transitions_by_segment: List[Dict] = [dict() for _ in range(len(selected))]
    for seg, source, target, count in zip(emit_segment, emit_src, emit_dst, emit_count):
        transitions = transitions_by_segment[seg]
        row = transitions.get(source)
        if row is None:
            transitions[source] = row = new_counter(Counter)
        row[target] = count

    initial_states = gathered[local_offsets[:-1]].tolist()
    chain_lengths = seg_lengths.tolist()
    return [
        MarkovChain(initial_states[k], transitions_by_segment[k], chain_lengths[k])
        for k in range(len(selected))
    ]


def _concat_ranges(np, starts, stops):
    """Concatenate ``arange(starts[i], stops[i])`` for every segment."""
    lengths = stops - starts
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    bases = np.repeat(starts, lengths)
    ends_before = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(ends_before, lengths)
    return bases + within
