"""The Mocktails model generator: trace -> statistical profile.

This is the "Model Generator" box of the paper's Fig. 1. Industry runs
it on a proprietary trace; the resulting :class:`Profile` can be shared
without revealing the trace.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .hierarchy import HierarchyConfig, build_leaves, two_level_ts
from .leaf import LeafModel
from .request import AddressRange, MemoryRequest
from .trace import Trace

LeafModelFactory = Callable[[Sequence[MemoryRequest], AddressRange], LeafModel]


def build_profile(
    trace: Trace,
    config: HierarchyConfig = None,
    leaf_factory: LeafModelFactory = LeafModel.fit,
    name: str = "",
):
    """Build a statistical profile from a trace.

    Args:
        trace: Time-ordered memory request trace.
        config: Hierarchical partitioning configuration; defaults to the
            paper's ``2L-TS`` (500k-cycle temporal intervals, then dynamic
            spatial partitioning).
        leaf_factory: Builds the model for each leaf. The default fits
            all-McC leaves; pass :func:`repro.baselines.stm.stm_leaf_factory`
            for the ``2L-TS (STM)`` comparison point.
        name: Optional workload name recorded in the profile.

    Returns:
        A :class:`repro.core.profile.Profile`.
    """
    from .profile import Profile

    if config is None:
        config = two_level_ts()
    leaves = build_leaves(trace.requests, config)
    models = [leaf_factory(leaf.requests, leaf.region) for leaf in leaves]
    return Profile(models, hierarchy=config.describe(), name=name)
