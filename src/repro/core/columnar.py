"""Columnar (structure-of-arrays) trace backend.

A :class:`ColumnarTrace` stores the four request features of a trace as
parallel columns — ``timestamps``, ``addresses``, ``sizes``, ``ops`` —
instead of one Python object per request. Column storage is what makes
batch processing possible: the vectorized profiler
(:mod:`repro.core.profiler`), the batched cache simulator
(:mod:`repro.cache.batched`) and chunked workload generation
(:mod:`repro.workloads.base`) all run whole-column passes instead of
per-request attribute chases.

Two storage engines back the columns:

* **numpy** (optional accelerator): columns are ``uint64``/``uint32``/
  ``uint8`` ndarrays and the heavy passes use real vector kernels.
* **stdlib ``array``** (always available): the same column layout in
  ``array.array`` typecodes. Conversions and chunking still avoid
  per-request objects; compute-heavy stages transparently fall back to
  the scalar algorithms, which keeps results bit-identical.

Column bounds match the on-disk ``.mtr`` record (``<QQBI``): 64-bit
timestamps/addresses, 32-bit sizes, 8-bit operations. Conversion to and
from :class:`~repro.core.trace.Trace` is lossless and order-preserving
within those bounds (addresses above 2**32 are routine; anything a
``Trace`` can save, a ``ColumnarTrace`` can hold).

Backend selection
-----------------

The active data path is chosen by, in priority order:

1. an explicit ``backend=`` argument on the entry points that take one
   (``build_profile``, ``run_cache_trace``),
2. :func:`set_backend` (what ``python -m repro.eval --backend`` calls),
3. the ``MOCKTAILS_BACKEND`` environment variable,
4. the default, ``auto``.

``auto`` resolves to ``columnar`` when numpy is importable and
``scalar`` otherwise. ``columnar`` may always be forced — without numpy
the ``array`` engine keeps storage columnar and the compute stages
delegate to the scalar algorithms. Every backend produces bit-identical
results; the choice is purely a performance knob, which is also why
:mod:`repro.store.memo` folds the resolved backend into its cache-key
fingerprint (see PR satellite: no cross-backend cache collisions, even
though payloads are expected to be identical).
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from .request import MemoryRequest, Operation
from .trace import Trace

__all__ = [
    "BACKENDS",
    "ColumnarTrace",
    "active_backend",
    "numpy_or_none",
    "resolve_backend",
    "selected_backend",
    "set_backend",
]

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-less environments
    _numpy = None

#: Recognised backend names (``auto`` resolves at call time).
BACKENDS = ("auto", "scalar", "columnar")

_BACKEND_ENV = "MOCKTAILS_BACKEND"
_NO_NUMPY_ENV = "MOCKTAILS_NO_NUMPY"

_TIME_MAX = 2**64 - 1
_ADDRESS_MAX = 2**64 - 1
_SIZE_MAX = 2**32 - 1


def numpy_or_none():
    """The numpy module, or ``None`` when absent or explicitly disabled.

    Setting ``MOCKTAILS_NO_NUMPY`` to a non-empty value forces the
    stdlib-``array`` fallback even when numpy is installed — this is how
    the test suite exercises the fallback without uninstalling numpy.
    """
    if os.environ.get(_NO_NUMPY_ENV):
        return None
    return _numpy


def selected_backend() -> str:
    """The configured backend name (may be ``auto``), before resolution."""
    name = os.environ.get(_BACKEND_ENV, "") or "auto"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} in ${_BACKEND_ENV}; expected one of {BACKENDS}"
        )
    return name


def set_backend(name: Optional[str]) -> str:
    """Select the process-wide backend; returns the resolved choice.

    ``None`` or ``"auto"`` restores automatic selection. The choice is
    recorded in the ``MOCKTAILS_BACKEND`` environment variable so worker
    processes spawned by :mod:`repro.eval.parallel` inherit it.
    """
    if name is None:
        name = "auto"
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    os.environ[_BACKEND_ENV] = name
    return active_backend()


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve an explicit or configured backend to ``scalar``/``columnar``."""
    name = backend if backend is not None else selected_backend()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    if name == "auto":
        return "columnar" if numpy_or_none() is not None else "scalar"
    return name


def active_backend() -> str:
    """The resolved process-wide backend: ``scalar`` or ``columnar``."""
    return resolve_backend(None)


def _bounds_error(field: str, value: int, limit: int) -> ValueError:
    return ValueError(
        f"{field} {value} outside the columnar range [0, {limit}] "
        "(bounds match the .mtr binary record)"
    )


def _check_columns(timestamps, addresses, sizes, ops) -> None:
    """Validate column contents (works on lists, arrays and ndarrays)."""
    counts = {len(timestamps), len(addresses), len(sizes), len(ops)}
    if len(counts) != 1:
        raise ValueError(
            "columns must have equal lengths, got "
            f"timestamps={len(timestamps)} addresses={len(addresses)} "
            f"sizes={len(sizes)} ops={len(ops)}"
        )
    if not len(timestamps):
        return
    if min(timestamps) < 0 or max(timestamps) > _TIME_MAX:
        bad = min(timestamps) if min(timestamps) < 0 else max(timestamps)
        raise _bounds_error("timestamp", int(bad), _TIME_MAX)
    if min(addresses) < 0 or max(addresses) > _ADDRESS_MAX:
        bad = min(addresses) if min(addresses) < 0 else max(addresses)
        raise _bounds_error("address", int(bad), _ADDRESS_MAX)
    if min(sizes) <= 0:
        raise ValueError(f"request size must be positive, got {int(min(sizes))}")
    if max(sizes) > _SIZE_MAX:
        raise _bounds_error("size", int(max(sizes)), _SIZE_MAX)
    if min(ops) < 0 or max(ops) > 1:
        bad = min(ops) if min(ops) < 0 else max(ops)
        raise ValueError(f"operation column values must be 0 or 1, got {int(bad)}")


class ColumnarTrace:
    """A trace stored as four parallel columns (structure of arrays).

    Columns are numpy ndarrays when numpy is available and stdlib
    ``array.array`` otherwise; both expose ``len``, indexing, slicing
    and ``tolist``. Request order is the column order — conversion to
    and from :class:`Trace` preserves it exactly.
    """

    __slots__ = ("timestamps", "addresses", "sizes", "ops")

    def __init__(self, timestamps, addresses, sizes, ops, check: bool = True):
        if check:
            _check_columns(timestamps, addresses, sizes, ops)
        np = numpy_or_none()
        if np is not None:
            self.timestamps = np.asarray(timestamps, dtype=np.uint64)
            self.addresses = np.asarray(addresses, dtype=np.uint64)
            self.sizes = np.asarray(sizes, dtype=np.uint32)
            self.ops = np.asarray(ops, dtype=np.uint8)
        else:
            self.timestamps = _as_array("Q", timestamps)
            self.addresses = _as_array("Q", addresses)
            self.sizes = _as_array("I", sizes)
            self.ops = _as_array("B", ops)

    # -- construction ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnarTrace":
        return cls((), (), (), (), check=False)

    @classmethod
    def from_trace(cls, trace: Union[Trace, Sequence[MemoryRequest]]) -> "ColumnarTrace":
        """Lossless, order-preserving conversion from per-request objects."""
        requests = trace.requests if isinstance(trace, Trace) else trace
        timestamps = [r.timestamp for r in requests]
        addresses = [r.address for r in requests]
        sizes = [r.size for r in requests]
        ops = [int(r.operation) for r in requests]
        return cls(timestamps, addresses, sizes, ops)

    @classmethod
    def from_columns(
        cls,
        timestamps,
        addresses,
        sizes,
        ops,
        require_sorted: bool = True,
    ) -> "ColumnarTrace":
        """Build from raw columns, validating contents.

        With ``require_sorted`` (the default — generators and the
        profiler need time order) a non-monotonic timestamp column is
        rejected with the same error the scalar pipeline raises.
        """
        trace = cls(timestamps, addresses, sizes, ops)
        if require_sorted and not trace.is_sorted():
            raise ValueError("requests must be sorted by timestamp")
        return trace

    @classmethod
    def concat(cls, blocks: Iterable["ColumnarTrace"]) -> "ColumnarTrace":
        """Concatenate column blocks (the inverse of :meth:`iter_blocks`)."""
        blocks = list(blocks)
        if not blocks:
            return cls.empty()
        np = numpy_or_none()
        if np is not None:
            return cls(
                np.concatenate([b.timestamps for b in blocks]),
                np.concatenate([b.addresses for b in blocks]),
                np.concatenate([b.sizes for b in blocks]),
                np.concatenate([b.ops for b in blocks]),
                check=False,
            )
        timestamps, addresses, sizes, ops = array("Q"), array("Q"), array("I"), array("B")
        for block in blocks:
            timestamps.extend(block.timestamps)
            addresses.extend(block.addresses)
            sizes.extend(block.sizes)
            ops.extend(block.ops)
        return cls(timestamps, addresses, sizes, ops, check=False)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return ColumnarTrace(
                self.timestamps[index],
                self.addresses[index],
                self.sizes[index],
                self.ops[index],
                check=False,
            )
        return MemoryRequest(
            int(self.timestamps[index]),
            int(self.addresses[index]),
            Operation(int(self.ops[index])),
            int(self.sizes[index]),
        )

    def __iter__(self) -> Iterator[MemoryRequest]:
        return self.iter_requests()

    def iter_requests(self) -> Iterator[MemoryRequest]:
        """Yield per-request objects (drop-in for scalar consumers)."""
        for timestamp, address, op, size in zip(
            self.timestamps, self.addresses, self.ops, self.sizes
        ):
            yield MemoryRequest(int(timestamp), int(address), Operation(int(op)), int(size))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return self.to_lists() == other.to_lists()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        engine = "numpy" if numpy_or_none() is not None else "array"
        return f"ColumnarTrace({len(self)} requests, engine={engine})"

    # -- derived properties ---------------------------------------------------

    def is_sorted(self) -> bool:
        np = numpy_or_none()
        timestamps = self.timestamps
        if np is not None and isinstance(timestamps, np.ndarray):
            if len(timestamps) < 2:
                return True
            return bool(np.all(timestamps[1:] >= timestamps[:-1]))
        return all(
            timestamps[i] <= timestamps[i + 1] for i in range(len(timestamps) - 1)
        )

    @property
    def start_time(self) -> int:
        if not len(self):
            raise ValueError("empty trace has no start time")
        return int(min(self.timestamps))

    @property
    def end_time(self) -> int:
        if not len(self):
            raise ValueError("empty trace has no end time")
        return int(max(self.timestamps))

    @property
    def duration(self) -> int:
        """Cycles spanned by the trace, 0 when empty (parity with
        :attr:`repro.core.trace.Trace.duration`)."""
        if not len(self):
            return 0
        return self.end_time - self.start_time

    def read_count(self) -> int:
        return len(self) - self.write_count()

    def write_count(self) -> int:
        return int(sum(self.ops))

    def total_bytes(self) -> int:
        return int(sum(self.sizes))

    def head(self, count: int) -> "ColumnarTrace":
        """The first ``count`` requests (mirrors :meth:`Trace.head`)."""
        return self[:count]

    # -- conversion and chunking ----------------------------------------------

    def to_trace(self) -> Trace:
        """Materialize per-request objects, preserving order exactly."""
        return Trace(
            MemoryRequest(int(t), int(a), Operation(int(o)), int(s))
            for t, a, o, s in zip(self.timestamps, self.addresses, self.ops, self.sizes)
        )

    def to_lists(self) -> dict:
        """Plain-list columns (engine-independent, for tests and hashing)."""
        return {
            "timestamps": _tolist(self.timestamps),
            "addresses": _tolist(self.addresses),
            "sizes": _tolist(self.sizes),
            "ops": _tolist(self.ops),
        }

    def iter_blocks(self, block_requests: int = 8192) -> Iterator["ColumnarTrace"]:
        """Yield consecutive column blocks of at most ``block_requests``.

        Blocks are views/slices in request order; concatenating them
        reproduces the trace exactly. This is the streaming unit the
        batched cache simulator consumes chunk by chunk.
        """
        if block_requests <= 0:
            raise ValueError(f"block_requests must be positive, got {block_requests}")
        for start in range(0, len(self), block_requests):
            yield self[start : start + block_requests]


def _as_array(typecode: str, values) -> array:
    """Coerce ``values`` into an ``array.array`` of ``typecode``."""
    if isinstance(values, array) and values.typecode == typecode:
        return values
    return array(typecode, (int(v) for v in values))


def _tolist(column) -> List[int]:
    return [int(v) for v in column.tolist()]


def as_columnar(trace: Union[Trace, ColumnarTrace]) -> ColumnarTrace:
    """Coerce either trace representation to columns."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def as_scalar(trace: Union[Trace, ColumnarTrace]) -> Trace:
    """Coerce either trace representation to per-request objects."""
    if isinstance(trace, ColumnarTrace):
        return trace.to_trace()
    return trace
