"""Shared artifact-error types.

Loaders for every on-disk artifact (profiles, traces, cache blobs)
raise :class:`CorruptArtifactError` when a file is truncated, fails
integrity verification or decodes to a malformed payload — instead of
surfacing raw ``zlib.error`` / ``struct.error`` / ``json`` exceptions
whose messages don't say which file is broken.
"""

from __future__ import annotations


class CorruptArtifactError(ValueError):
    """An on-disk artifact is truncated, corrupt or malformed.

    Subclasses :class:`ValueError` so pre-existing callers that catch
    ``ValueError`` around a loader keep working. ``path`` names the
    offending file.
    """

    def __init__(self, path, message: str):
        super().__init__(f"{path}: {message}")
        self.path = str(path)
