"""Profile serialization.

The paper encodes traces and profiles with protobuf + gzip (Sec. V,
Fig. 17). We substitute a JSON + gzip container: the Fig. 17 comparison
is about *relative* sizes (profile vs. trace), which the substitution
preserves (both formats are compressed with the same codec).

Address/operation models are pluggable (McC vs. STM), so serialization
dispatches on each model's ``MODEL_TYPE`` via small registries. The STM
baseline registers its models on import.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Callable, Dict, Union

from ..store.atomic import atomic_write_bytes
from .errors import CorruptArtifactError
from .ioutil import read_artifact_bytes
from .leaf import (
    AddressModel,
    LeafModel,
    McCAddressModel,
    McCOperationModel,
    OperationModel,
)
from .mcc import McCModel
from .profile import Profile
from .request import AddressRange

_FORMAT_VERSION = 1

_address_model_loaders: Dict[str, Callable[[dict], AddressModel]] = {
    McCAddressModel.MODEL_TYPE: McCAddressModel.from_dict,
}
_operation_model_loaders: Dict[str, Callable[[dict], OperationModel]] = {
    McCOperationModel.MODEL_TYPE: McCOperationModel.from_dict,
}


def register_address_model(model_type: str, loader: Callable[[dict], AddressModel]) -> None:
    """Register a loader for a custom address model type."""
    _address_model_loaders[model_type] = loader


def register_operation_model(model_type: str, loader: Callable[[dict], OperationModel]) -> None:
    """Register a loader for a custom operation model type."""
    _operation_model_loaders[model_type] = loader


def leaf_to_dict(leaf: LeafModel) -> dict:
    return {
        "start_time": leaf.start_time,
        "count": leaf.count,
        "region": [leaf.region.start, leaf.region.end],
        "delta_time": leaf.delta_time_model.to_dict(),
        "size": leaf.size_model.to_dict(),
        "address": leaf.address_model.to_dict(),
        "operation": leaf.operation_model.to_dict(),
    }


def leaf_from_dict(data: dict) -> LeafModel:
    address_data = data["address"]
    operation_data = data["operation"]
    try:
        address_loader = _address_model_loaders[address_data["type"]]
    except KeyError:
        raise ValueError(f"unknown address model type {address_data['type']!r}") from None
    try:
        operation_loader = _operation_model_loaders[operation_data["type"]]
    except KeyError:
        raise ValueError(f"unknown operation model type {operation_data['type']!r}") from None
    return LeafModel(
        start_time=data["start_time"],
        count=data["count"],
        region=AddressRange(*data["region"]),
        delta_time_model=McCModel.from_dict(data["delta_time"]),
        size_model=McCModel.from_dict(data["size"]),
        address_model=address_loader(address_data),
        operation_model=operation_loader(operation_data),
    )


def profile_to_dict(profile: Profile) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "hierarchy": profile.hierarchy,
        "name": profile.name,
        "leaves": [leaf_to_dict(leaf) for leaf in profile],
    }


def profile_from_dict(data: dict) -> Profile:
    if data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported profile format version: {data.get('format_version')}")
    leaves = [leaf_from_dict(leaf) for leaf in data["leaves"]]
    return Profile(leaves, hierarchy=data.get("hierarchy", ""), name=data.get("name", ""))


def save_profile(profile: Profile, path: Union[str, Path]) -> int:
    """Write a gzip-compressed profile; returns the file size in bytes.

    ``mtime=0`` keeps the gzip header timestamp-free, so saving the same
    profile twice always produces byte-identical files. The write is
    atomic (temp file + ``os.replace``): an interrupted save never
    leaves a truncated profile at ``path``.
    """
    payload = json.dumps(profile_to_dict(profile), separators=(",", ":")).encode("ascii")
    return atomic_write_bytes(path, gzip.compress(payload, mtime=0))


def load_profile(path: Union[str, Path]) -> Profile:
    """Read a profile file.

    Raises :class:`CorruptArtifactError` (a ``ValueError``) naming the
    path on truncated gzip streams or malformed payloads.
    """
    try:
        payload = read_artifact_bytes(
            path, require_gzip=True, what="gzip profile file"
        )
    except CorruptArtifactError:
        raise
    except OSError as error:
        raise CorruptArtifactError(
            path, f"not a gzip profile file, or truncated ({error})"
        ) from error
    try:
        data = json.loads(payload.decode("ascii", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(path, f"corrupt profile payload ({error})") from error
    try:
        return profile_from_dict(data)
    except (KeyError, TypeError, IndexError) as error:
        raise CorruptArtifactError(
            path, f"malformed profile structure ({error})"
        ) from error


def profile_size_bytes(profile: Profile) -> int:
    """Compressed size of a profile without touching disk (Fig. 17)."""
    payload = json.dumps(profile_to_dict(profile), separators=(",", ":")).encode("ascii")
    return len(gzip.compress(payload, mtime=0))
