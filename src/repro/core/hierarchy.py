"""Hierarchical partitioning configuration and leaf extraction.

Mocktails accepts a hierarchical configuration as input (paper
Sec. III-A): an ordered list of layers, each either temporal
(``request_count`` or ``cycle_count``) or spatial (``fixed`` or
``dynamic``). The leaves of the hierarchy are the final partitions of
requests; each leaf is modeled independently (Sec. III-B).

The paper's recommended configuration — used throughout Sec. IV — is a
two-level hierarchy that partitions temporally first (500,000-cycle
intervals, following SynFull) and then spatially with the dynamic
scheme. We call that ``2L-TS``, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from .partition import partition_by_cycle_count, partition_by_request_count
from .request import AddressRange, MemoryRequest
from .spatial import SpatialPartition, partition_dynamic, partition_fixed

TEMPORAL_KINDS = ("request_count", "cycle_count")
SPATIAL_KINDS = ("fixed", "dynamic")


@dataclass(frozen=True)
class TemporalLayer:
    """A temporal layer: ``kind`` is ``request_count`` or ``cycle_count``."""

    kind: str
    size: int

    def __post_init__(self) -> None:
        if self.kind not in TEMPORAL_KINDS:
            raise ValueError(f"unknown temporal kind {self.kind!r}; expected {TEMPORAL_KINDS}")
        if self.size <= 0:
            raise ValueError(f"temporal layer size must be positive, got {self.size}")

    def split(self, requests: Sequence[MemoryRequest]) -> List[List[MemoryRequest]]:
        if self.kind == "request_count":
            return partition_by_request_count(requests, self.size)
        return partition_by_cycle_count(requests, self.size)


@dataclass(frozen=True)
class SpatialLayer:
    """A spatial layer: ``kind`` is ``fixed`` (needs ``block_size``) or ``dynamic``."""

    kind: str
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SPATIAL_KINDS:
            raise ValueError(f"unknown spatial kind {self.kind!r}; expected {SPATIAL_KINDS}")
        if self.kind == "fixed" and (self.block_size is None or self.block_size <= 0):
            raise ValueError("fixed spatial layer requires a positive block_size")

    def split(self, requests: Sequence[MemoryRequest]) -> List[SpatialPartition]:
        if self.kind == "fixed":
            assert self.block_size is not None
            return partition_fixed(requests, self.block_size)
        return partition_dynamic(requests)


Layer = Union[TemporalLayer, SpatialLayer]


@dataclass
class LeafPartition:
    """A leaf of the hierarchy: the unit Mocktails models.

    ``region`` is the address range synthesis is confined to — the region
    of the innermost spatial layer, or the tight range of the requests if
    the hierarchy contains no spatial layer.
    """

    requests: List[MemoryRequest]
    region: AddressRange

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def start_time(self) -> int:
        return self.requests[0].timestamp


@dataclass(frozen=True)
class HierarchyConfig:
    """An ordered list of partitioning layers, outermost first."""

    layers: tuple

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("hierarchy needs at least one layer")
        object.__setattr__(self, "layers", tuple(layers))

    def describe(self) -> str:
        parts = []
        for layer in self.layers:
            if isinstance(layer, TemporalLayer):
                parts.append(f"T({layer.kind}={layer.size})")
            else:
                suffix = f"={layer.block_size}" if layer.kind == "fixed" else ""
                parts.append(f"S({layer.kind}{suffix})")
        return " -> ".join(parts)


def two_level_ts(
    cycles_per_interval: int = 500_000, spatial: str = "dynamic", block_size: int = 4096
) -> HierarchyConfig:
    """The paper's ``2L-TS`` configuration: temporal first, then spatial."""
    spatial_layer = (
        SpatialLayer("dynamic") if spatial == "dynamic" else SpatialLayer("fixed", block_size)
    )
    return HierarchyConfig([TemporalLayer("cycle_count", cycles_per_interval), spatial_layer])


def two_level_rs(
    requests_per_interval: int = 100_000, spatial: str = "dynamic", block_size: int = 4096
) -> HierarchyConfig:
    """Temporal (request_count) then spatial — the Sec. V CPU configuration."""
    spatial_layer = (
        SpatialLayer("dynamic") if spatial == "dynamic" else SpatialLayer("fixed", block_size)
    )
    return HierarchyConfig([TemporalLayer("request_count", requests_per_interval), spatial_layer])


def micro_macro(
    macro_cycles: int = 500_000,
    micro_cycles: int = 500,
    spatial: str = "dynamic",
    block_size: int = 4096,
) -> HierarchyConfig:
    """A SynFull-style three-level hierarchy (paper Sec. III-A).

    SynFull uses cycle-count intervals at two granularities — macro
    (100,000s of cycles) and micro (100s of cycles) — to capture bursty
    and idle phases. The spatial layer then splits each micro phase.
    """
    spatial_layer = (
        SpatialLayer("dynamic") if spatial == "dynamic" else SpatialLayer("fixed", block_size)
    )
    if micro_cycles >= macro_cycles:
        raise ValueError("micro interval must be smaller than the macro interval")
    return HierarchyConfig(
        [
            TemporalLayer("cycle_count", macro_cycles),
            TemporalLayer("cycle_count", micro_cycles),
            spatial_layer,
        ]
    )


def _tight_region(requests: Sequence[MemoryRequest]) -> AddressRange:
    start = min(r.address for r in requests)
    end = max(r.end_address for r in requests)
    return AddressRange(start, end)


def _build(
    requests: List[MemoryRequest],
    layers: Sequence[Layer],
    region: Optional[AddressRange],
) -> List[LeafPartition]:
    if not requests:
        return []
    if not layers:
        leaf_region = region if region is not None else _tight_region(requests)
        return [LeafPartition(requests, leaf_region)]

    layer, rest = layers[0], layers[1:]
    leaves: List[LeafPartition] = []
    if isinstance(layer, TemporalLayer):
        for chunk in layer.split(requests):
            leaves.extend(_build(chunk, rest, region))
    else:
        for partition in layer.split(requests):
            leaves.extend(_build(partition.requests, rest, partition.region))
    return leaves


def build_leaves(
    requests: Sequence[MemoryRequest], config: HierarchyConfig
) -> List[LeafPartition]:
    """Apply the hierarchy to a request sequence and return its leaves.

    Requests must be in time order. Leaves come back ordered by
    (position of their first request), i.e. roughly by start time within
    each outer partition — the order has no semantic weight since every
    leaf is modeled independently.
    """
    requests = list(requests)
    for i in range(len(requests) - 1):
        if requests[i].timestamp > requests[i + 1].timestamp:
            raise ValueError("requests must be sorted by timestamp")
    return _build(requests, config.layers, None)
