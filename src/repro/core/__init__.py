"""Mocktails core: partitioning, McC modeling, profiles and synthesis."""

from .hierarchy import (
    HierarchyConfig,
    LeafPartition,
    SpatialLayer,
    TemporalLayer,
    build_leaves,
    micro_macro,
    two_level_rs,
    two_level_ts,
)
from .leaf import (
    AddressModel,
    LeafModel,
    McCAddressModel,
    McCOperationModel,
    OperationModel,
    make_leaf_factory,
    wrap_address,
)
from .columnar import (
    BACKENDS,
    ColumnarTrace,
    active_backend,
    resolve_backend,
    selected_backend,
    set_backend,
)
from .errors import CorruptArtifactError
from .markov import MarkovChain
from .mcc import McCModel
from .partition import partition_by_cycle_count, partition_by_request_count
from .profile import Profile
from .profiler import build_profile
from .request import AddressRange, MemoryRequest, Operation
from .serialization import (
    load_profile,
    profile_size_bytes,
    register_address_model,
    register_operation_model,
    save_profile,
)
from .spatial import SpatialPartition, partition_dynamic, partition_fixed
from .synthesis import (
    FeedbackSynthesizer,
    synthesize,
    synthesize_stream,
    synthesize_transition_based,
)
from .trace import Trace

__all__ = [
    "AddressModel",
    "AddressRange",
    "BACKENDS",
    "ColumnarTrace",
    "CorruptArtifactError",
    "FeedbackSynthesizer",
    "HierarchyConfig",
    "LeafModel",
    "LeafPartition",
    "MarkovChain",
    "McCAddressModel",
    "McCModel",
    "McCOperationModel",
    "MemoryRequest",
    "Operation",
    "OperationModel",
    "Profile",
    "SpatialLayer",
    "SpatialPartition",
    "TemporalLayer",
    "Trace",
    "active_backend",
    "build_leaves",
    "build_profile",
    "load_profile",
    "make_leaf_factory",
    "micro_macro",
    "partition_by_cycle_count",
    "partition_by_request_count",
    "partition_dynamic",
    "partition_fixed",
    "profile_size_bytes",
    "register_address_model",
    "register_operation_model",
    "resolve_backend",
    "save_profile",
    "selected_backend",
    "set_backend",
    "synthesize",
    "synthesize_stream",
    "synthesize_transition_based",
    "two_level_rs",
    "two_level_ts",
    "wrap_address",
]
