"""Trace container and on-disk formats.

A :class:`Trace` is an ordered sequence of :class:`MemoryRequest` objects,
sorted by timestamp. Two on-disk formats are provided:

* a human-readable gzip CSV (``.csv.gz``) for interchange, and
* a compact struct-packed binary (``.mtr.gz``) used for the Fig. 17
  trace-size comparison (our substitute for the paper's protobuf+gzip).
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from .request import AddressRange, MemoryRequest, Operation

_BINARY_MAGIC = b"MTR1"
_RECORD = struct.Struct("<QQBI")  # timestamp, address, operation, size


class Trace:
    """An ordered sequence of memory requests.

    The constructor does not sort; use :meth:`sorted_by_time` or pass
    requests already ordered by timestamp (ties keep insertion order).
    """

    def __init__(self, requests: Optional[Iterable[MemoryRequest]] = None):
        self._requests: List[MemoryRequest] = list(requests) if requests else []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self._requests)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return Trace(self._requests[index])
        return self._requests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._requests == other._requests

    def append(self, request: MemoryRequest) -> None:
        self._requests.append(request)

    def extend(self, requests: Iterable[MemoryRequest]) -> None:
        self._requests.extend(requests)

    @property
    def requests(self) -> Sequence[MemoryRequest]:
        return self._requests

    # -- derived properties --------------------------------------------------

    def is_sorted(self) -> bool:
        reqs = self._requests
        return all(reqs[i].timestamp <= reqs[i + 1].timestamp for i in range(len(reqs) - 1))

    def sorted_by_time(self) -> "Trace":
        """A copy sorted by timestamp (stable, preserving tie order)."""
        return Trace(sorted(self._requests, key=lambda r: r.timestamp))

    @property
    def start_time(self) -> int:
        if not self._requests:
            raise ValueError("empty trace has no start time")
        return min(r.timestamp for r in self._requests)

    @property
    def end_time(self) -> int:
        if not self._requests:
            raise ValueError("empty trace has no end time")
        return max(r.timestamp for r in self._requests)

    @property
    def duration(self) -> int:
        return self.end_time - self.start_time if self._requests else 0

    def address_range(self) -> AddressRange:
        """Smallest range covering every byte touched by the trace."""
        if not self._requests:
            raise ValueError("empty trace has no address range")
        start = min(r.address for r in self._requests)
        end = max(r.end_address for r in self._requests)
        return AddressRange(start, end)

    def read_count(self) -> int:
        return sum(1 for r in self._requests if r.is_read)

    def write_count(self) -> int:
        return len(self._requests) - self.read_count()

    def total_bytes(self) -> int:
        return sum(r.size for r in self._requests)

    def head(self, count: int) -> "Trace":
        """The first ``count`` requests (paper uses e.g. first 100k)."""
        return Trace(self._requests[:count])

    # -- on-disk formats ------------------------------------------------------

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write a gzip CSV with header ``timestamp,address,operation,size``."""
        with gzip.open(path, "wt", encoding="ascii") as handle:
            handle.write("timestamp,address,operation,size\n")
            for r in self._requests:
                handle.write(f"{r.timestamp},{r.address:#x},{r.operation},{r.size}\n")

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "Trace":
        requests = []
        with gzip.open(path, "rt", encoding="ascii") as handle:
            header = handle.readline()
            if not header.startswith("timestamp"):
                raise ValueError(f"{path}: missing CSV header")
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                time_s, addr_s, op_s, size_s = line.split(",")
                requests.append(
                    MemoryRequest(
                        timestamp=int(time_s),
                        address=int(addr_s, 0),
                        operation=Operation.parse(op_s),
                        size=int(size_s),
                    )
                )
        return cls(requests)

    def save_binary(self, path: Union[str, Path]) -> int:
        """Write the compact gzip binary format; returns bytes written."""
        payload = bytearray(_BINARY_MAGIC)
        payload += struct.pack("<Q", len(self._requests))
        for r in self._requests:
            payload += _RECORD.pack(r.timestamp, r.address, int(r.operation), r.size)
        data = gzip.compress(bytes(payload))
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def load_binary(cls, path: Union[str, Path]) -> "Trace":
        payload = gzip.decompress(Path(path).read_bytes())
        if payload[:4] != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a Mocktails binary trace")
        (count,) = struct.unpack_from("<Q", payload, 4)
        requests = []
        offset = 12
        for _ in range(count):
            timestamp, address, op, size = _RECORD.unpack_from(payload, offset)
            offset += _RECORD.size
            requests.append(MemoryRequest(timestamp, address, Operation(op), size))
        return cls(requests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({len(self._requests)} requests)"
