"""Trace container and on-disk formats.

A :class:`Trace` is an ordered sequence of :class:`MemoryRequest` objects,
sorted by timestamp. Two on-disk formats are provided:

* a human-readable CSV (``.csv``, or gzip-compressed ``.csv.gz``) for
  interchange, and
* a compact struct-packed binary (``.mtr`` / ``.mtr.gz``) used for the
  Fig. 17 trace-size comparison (our substitute for the paper's
  protobuf+gzip).

Compression is keyed on the ``.gz`` suffix at save time and sniffed
from the gzip magic bytes at load time. Compressed output is
byte-deterministic: the gzip header is written with ``mtime=0`` and no
filename, so saving the same trace twice produces identical bytes.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..store.atomic import atomic_write_bytes
from .errors import CorruptArtifactError
from .ioutil import read_artifact_bytes
from .request import AddressRange, MemoryRequest, Operation

_BINARY_MAGIC = b"MTR1"
_GZIP_MAGIC = b"\x1f\x8b"
_RECORD = struct.Struct("<QQBI")  # timestamp, address, operation, size


def _write_payload(path: Union[str, Path], payload: bytes) -> int:
    """Write ``payload``, gzip-compressed iff the path ends in ``.gz``.

    Compression uses ``mtime=0`` (and no embedded filename), so the
    output bytes depend only on the payload — identical traces always
    serialize identically. The write is atomic (temp file +
    ``os.replace``), so an interrupted save never leaves a truncated
    trace at ``path``.
    """
    if str(path).endswith(".gz"):
        payload = gzip.compress(payload, mtime=0)
    return atomic_write_bytes(path, payload)


def _read_payload(path: Union[str, Path]) -> bytes:
    """Read a file, transparently decompressing if it is gzipped.

    Decompression is incremental (bounded chunks, never the whole
    compressed file at once). Raises :class:`CorruptArtifactError` with
    the byte offset on a truncated or corrupt gzip stream.
    """
    return read_artifact_bytes(path, what="gzip stream")


class Trace:
    """An ordered sequence of memory requests.

    The constructor does not sort; use :meth:`sorted_by_time` or pass
    requests already ordered by timestamp (ties keep insertion order).
    """

    def __init__(self, requests: Optional[Iterable[MemoryRequest]] = None):
        self._requests: List[MemoryRequest] = list(requests) if requests else []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self._requests)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return Trace(self._requests[index])
        return self._requests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._requests == other._requests

    def append(self, request: MemoryRequest) -> None:
        self._requests.append(request)

    def extend(self, requests: Iterable[MemoryRequest]) -> None:
        self._requests.extend(requests)

    @property
    def requests(self) -> Sequence[MemoryRequest]:
        return self._requests

    # -- derived properties --------------------------------------------------

    def is_sorted(self) -> bool:
        reqs = self._requests
        return all(reqs[i].timestamp <= reqs[i + 1].timestamp for i in range(len(reqs) - 1))

    def sorted_by_time(self) -> "Trace":
        """A copy sorted by timestamp (stable, preserving tie order)."""
        return Trace(sorted(self._requests, key=lambda r: r.timestamp))

    @property
    def start_time(self) -> int:
        if not self._requests:
            raise ValueError("empty trace has no start time")
        return min(r.timestamp for r in self._requests)

    @property
    def end_time(self) -> int:
        if not self._requests:
            raise ValueError("empty trace has no end time")
        return max(r.timestamp for r in self._requests)

    @property
    def duration(self) -> int:
        return self.end_time - self.start_time if self._requests else 0

    def address_range(self) -> AddressRange:
        """Smallest range covering every byte touched by the trace."""
        if not self._requests:
            raise ValueError("empty trace has no address range")
        start = min(r.address for r in self._requests)
        end = max(r.end_address for r in self._requests)
        return AddressRange(start, end)

    def read_count(self) -> int:
        return sum(1 for r in self._requests if r.is_read)

    def write_count(self) -> int:
        return len(self._requests) - self.read_count()

    def total_bytes(self) -> int:
        return sum(r.size for r in self._requests)

    def head(self, count: int) -> "Trace":
        """The first ``count`` requests (paper uses e.g. first 100k)."""
        return Trace(self._requests[:count])

    # -- on-disk formats ------------------------------------------------------

    def save_csv(self, path: Union[str, Path]) -> int:
        """Write ``timestamp,address,operation,size`` CSV; returns bytes.

        Output is gzip-compressed iff the path ends in ``.gz``.
        """
        lines = ["timestamp,address,operation,size"]
        lines.extend(
            f"{r.timestamp},{r.address:#x},{r.operation},{r.size}" for r in self._requests
        )
        payload = ("\n".join(lines) + "\n").encode("ascii")
        return _write_payload(path, payload)

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "Trace":
        requests = []
        try:
            text = _read_payload(path).decode("ascii")
        except UnicodeDecodeError as error:
            raise CorruptArtifactError(path, f"not an ASCII CSV trace ({error})") from error
        lines = iter(text.splitlines())
        header = next(lines, "")
        if not header.startswith("timestamp"):
            raise CorruptArtifactError(path, "missing CSV header")
        try:
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                time_s, addr_s, op_s, size_s = line.split(",")
                requests.append(
                    MemoryRequest(
                        timestamp=int(time_s),
                        address=int(addr_s, 0),
                        operation=Operation.parse(op_s),
                        size=int(size_s),
                    )
                )
        except CorruptArtifactError:
            raise
        except ValueError as error:
            raise CorruptArtifactError(path, f"malformed CSV record ({error})") from error
        return cls(requests)

    def save_binary(self, path: Union[str, Path]) -> int:
        """Write the compact binary format; returns bytes written.

        Output is gzip-compressed iff the path ends in ``.gz``.
        """
        payload = bytearray(_BINARY_MAGIC)
        payload += struct.pack("<Q", len(self._requests))
        for r in self._requests:
            payload += _RECORD.pack(r.timestamp, r.address, int(r.operation), r.size)
        return _write_payload(path, bytes(payload))

    @classmethod
    def load_binary(cls, path: Union[str, Path]) -> "Trace":
        payload = _read_payload(path)
        if payload[:4] != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a Mocktails binary trace")
        try:
            (count,) = struct.unpack_from("<Q", payload, 4)
            requests = []
            offset = 12
            for _ in range(count):
                timestamp, address, op, size = _RECORD.unpack_from(payload, offset)
                offset += _RECORD.size
                requests.append(MemoryRequest(timestamp, address, Operation(op), size))
        except (struct.error, ValueError) as error:
            raise CorruptArtifactError(
                path, f"truncated or malformed binary trace ({error})"
            ) from error
        return cls(requests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({len(self._requests)} requests)"
