"""The McC (Markov chain or Constant) feature model.

Each leaf models four features independently — delta time, stride,
operation and size (paper Sec. III-B). If a feature shows no variability
in the leaf, a single constant value regenerates its sequence; otherwise
a first-order Markov chain with strict convergence is used.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence

from .markov import MarkovChain

Value = Hashable

CONSTANT = "constant"
MARKOV = "markov"


class McCModel:
    """A per-feature model: either a constant value or a Markov chain.

    The paper uses first-order (memoryless) chains and argues hierarchical
    partitioning makes longer history unnecessary (Sec. IV-B). ``order``
    > 1 fits the chain over sliding windows of that length — kept as an
    ablation knob to test exactly that claim.
    """

    def __init__(
        self,
        kind: str,
        count: int,
        constant: Optional[Value] = None,
        chain: Optional[MarkovChain] = None,
        order: int = 1,
    ):
        if kind not in (CONSTANT, MARKOV):
            raise ValueError(f"unknown McC kind {kind!r}")
        if kind == MARKOV and chain is None:
            raise ValueError("markov McC model requires a chain")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        expected_length = count if order == 1 else count - order + 1
        if kind == MARKOV and chain is not None and chain.length != expected_length:
            raise ValueError("markov chain length must match model count")
        self.kind = kind
        self.count = count
        self.constant = constant
        self.chain = chain
        self.order = order

    @classmethod
    def fit(cls, values: Sequence[Value], order: int = 1) -> "McCModel":
        """Fit a McC model to the observed feature sequence.

        An empty sequence yields a degenerate model that generates nothing
        (leaves with a single request have empty delta sequences).
        """
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        values = list(values)
        if not values:
            return cls(CONSTANT, 0, constant=None)
        first = values[0]
        if all(value == first for value in values):
            return cls(CONSTANT, len(values), constant=first)
        if order == 1 or len(values) <= order:
            return cls(MARKOV, len(values), chain=MarkovChain.fit(values))
        windows = [
            tuple(values[i : i + order]) for i in range(len(values) - order + 1)
        ]
        return cls(MARKOV, len(values), chain=MarkovChain.fit(windows), order=order)

    @property
    def is_constant(self) -> bool:
        return self.kind == CONSTANT

    def generate(self, rng: random.Random, strict: bool = True) -> List[Value]:
        """Generate a feature sequence of ``self.count`` values."""
        if self.count == 0:
            return []
        if self.kind == CONSTANT:
            return [self.constant] * self.count
        assert self.chain is not None
        states = (
            self.chain.generate_strict(rng)
            if strict
            else self.chain.generate_sampled(rng)
        )
        if self.order == 1:
            return states
        # Decode overlapping windows back into the value sequence: the
        # first window in full, then the trailing element of each next.
        decoded = list(states[0])
        decoded.extend(window[-1] for window in states[1:])
        return decoded

    # -- serialization support -------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind, "count": self.count}
        if self.order != 1:
            data["order"] = self.order
        if self.kind == CONSTANT:
            data["constant"] = self.constant
        else:
            assert self.chain is not None
            data["chain"] = self.chain.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "McCModel":
        order = data.get("order", 1)
        if data["kind"] == CONSTANT:
            return cls(CONSTANT, data["count"], constant=data.get("constant"))
        chain = MarkovChain.from_dict(data["chain"])
        if order != 1:
            # JSON turns tuple states into lists; restore tuples.
            chain = MarkovChain(
                tuple(chain.initial_state),
                {
                    tuple(source): type(row)(
                        {tuple(target): count for target, count in row.items()}
                    )
                    for source, row in chain.transitions.items()
                },
                chain.length,
            )
        return cls(MARKOV, data["count"], chain=chain, order=order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, McCModel):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.count == other.count
            and self.constant == other.constant
            and self.chain == other.chain
            and self.order == other.order
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == CONSTANT:
            return f"McCModel(constant={self.constant!r}, count={self.count})"
        return f"McCModel(markov, count={self.count})"
