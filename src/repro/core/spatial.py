"""Spatial partitioning of memory requests.

Two schemes (paper Sec. III-A):

* **Fixed-size**: requests are grouped by the block their start address
  falls in (HALO-style 4KB regions).
* **Dynamic** (the paper's novel contribution, Alg. 1): byte ranges of
  requests are sorted and merged whenever they overlap or are adjacent,
  yielding variable-sized memory regions that tightly cover the accessed
  bytes. *Lonely* requests (regions containing a single request) are
  merged with other lonely requests; runs of lonely requests with a
  common stride become a single partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .request import AddressRange, MemoryRequest


@dataclass
class SpatialPartition:
    """A group of requests covering one memory region.

    ``requests`` keep their original time order. ``region`` is the byte
    range the partition is allowed to generate addresses in: tight for
    dynamic partitions, block-aligned for fixed partitions.
    """

    region: AddressRange
    requests: List[MemoryRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def is_lonely(self) -> bool:
        return len(self.requests) == 1


def partition_fixed(
    requests: Sequence[MemoryRequest], block_size: int
) -> List[SpatialPartition]:
    """Group requests into fixed-size, block-aligned regions.

    A request is assigned to the block containing its start address.
    Partitions are returned in ascending address order.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    by_block: dict = {}
    for request in requests:
        block = request.address // block_size
        by_block.setdefault(block, []).append(request)
    partitions = []
    for block in sorted(by_block):
        region = AddressRange(block * block_size, (block + 1) * block_size)
        partitions.append(SpatialPartition(region, by_block[block]))
    return partitions


def _merge_ranges(requests: Sequence[MemoryRequest]) -> List[AddressRange]:
    """Alg. 1: sort request byte ranges and merge overlapping/adjacent ones."""
    ranges = sorted(
        (AddressRange.of_request(r) for r in requests), key=lambda a: (a.start, a.end)
    )
    merged: List[AddressRange] = []
    group = ranges[0]
    for candidate in ranges[1:]:
        if candidate.intersects(group):
            group = group.expand(candidate)
        else:
            merged.append(group)
            group = candidate
    merged.append(group)
    return merged


def _assign_requests(
    requests: Sequence[MemoryRequest], regions: Sequence[AddressRange]
) -> List[SpatialPartition]:
    """Assign each request (in time order) to the region containing it."""
    import bisect

    starts = [region.start for region in regions]
    partitions = [SpatialPartition(region) for region in regions]
    for request in requests:
        index = bisect.bisect_right(starts, request.address) - 1
        partitions[index].requests.append(request)
    return partitions


def _group_lonely(lonely: List[SpatialPartition]) -> List[SpatialPartition]:
    """Merge lonely partitions per the paper.

    Lonely requests are sorted by address. Runs of three or more
    equally-spaced lonely requests (constant stride) are grouped into a
    single partition each; every remaining lonely request is merged into
    one catch-all partition so that no model covers a single request.
    """
    lonely = sorted(lonely, key=lambda p: p.region.start)
    grouped: List[SpatialPartition] = []
    leftovers: List[SpatialPartition] = []

    index = 0
    while index < len(lonely):
        run_end = index + 1
        if run_end < len(lonely):
            stride = lonely[run_end].region.start - lonely[index].region.start
            while (
                run_end < len(lonely)
                and lonely[run_end].region.start - lonely[run_end - 1].region.start == stride
            ):
                run_end += 1
        run = lonely[index:run_end]
        if len(run) >= 3:
            region = run[0].region
            for partition in run[1:]:
                region = region.expand(partition.region)
            requests = sorted(
                (r for partition in run for r in partition.requests),
                key=lambda r: r.timestamp,
            )
            grouped.append(SpatialPartition(region, requests))
        else:
            leftovers.extend(run)
        index = run_end

    if len(leftovers) == 1:
        # A single lonely request with no peers keeps its own partition;
        # there is nothing to merge it with.
        grouped.extend(leftovers)
    elif leftovers:
        region = leftovers[0].region
        for partition in leftovers[1:]:
            region = region.expand(partition.region)
        requests = sorted(
            (r for partition in leftovers for r in partition.requests),
            key=lambda r: r.timestamp,
        )
        grouped.append(SpatialPartition(region, requests))
    return grouped


# -- columnar (vectorized) variants -------------------------------------------
#
# The functions below replicate partition_fixed / partition_dynamic as
# whole-column passes over int64 numpy arrays. They operate on *index
# arrays* rather than request objects: each partition comes back as
# ``(region, indices)`` where ``indices`` select the partition's requests
# (in time order) from the caller's columns. Bit-identity with the scalar
# functions — same regions, same per-partition request order, same
# partition order including sort-tie behaviour — is load-bearing: the
# columnar profiler builds byte-identical profiles through these.


def merge_ranges_columnar(np, starts, ends) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized Alg. 1 over int64 start/end columns.

    Returns ``(region_starts, region_ends)``; regions are disjoint,
    non-adjacent and sorted by start, exactly as :func:`_merge_ranges`
    produces them.
    """
    order = np.lexsort((ends, starts))
    sorted_starts = starts[order]
    sorted_ends = ends[order]
    # Running max of ends = the current merge group's end. A new group
    # opens where a range starts strictly past it (adjacency merges,
    # matching AddressRange.intersects).
    running_end = np.maximum.accumulate(sorted_ends)
    breaks = np.flatnonzero(sorted_starts[1:] > running_end[:-1]) + 1
    first = np.concatenate((np.zeros(1, dtype=np.int64), breaks))
    last = np.concatenate((breaks - 1, np.asarray([len(sorted_starts) - 1], dtype=np.int64)))
    return sorted_starts[first], running_end[last]


def partition_fixed_columnar(
    np, addresses, block_size: int
) -> List[Tuple[AddressRange, "np.ndarray"]]:
    """Vectorized :func:`partition_fixed` over an int64 address column."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if not len(addresses):
        return []
    blocks = addresses // block_size
    order = np.argsort(blocks, kind="stable")
    unique_blocks, counts = np.unique(blocks, return_counts=True)
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))
    return [
        (
            AddressRange(int(block) * block_size, (int(block) + 1) * block_size),
            order[offsets[i] : offsets[i + 1]],
        )
        for i, block in enumerate(unique_blocks)
    ]


def _merge_lonely_run_columnar(np, run, timestamps):
    """Merge one run of lonely (region, indices) partitions into one."""
    region = run[0][0]
    for partition_region, _ in run[1:]:
        region = region.expand(partition_region)
    indices = np.concatenate([indices for _, indices in run])
    # Stable sort by timestamp over the region-start concatenation order
    # mirrors the scalar sorted(..., key=timestamp).
    indices = indices[np.argsort(timestamps[indices], kind="stable")]
    return (region, indices)


def _group_lonely_columnar(np, lonely, timestamps):
    """Columnar :func:`_group_lonely`: same runs, same catch-all rules."""
    lonely = sorted(lonely, key=lambda p: p[0].start)
    grouped = []
    leftovers = []

    index = 0
    while index < len(lonely):
        run_end = index + 1
        if run_end < len(lonely):
            stride = lonely[run_end][0].start - lonely[index][0].start
            while (
                run_end < len(lonely)
                and lonely[run_end][0].start - lonely[run_end - 1][0].start == stride
            ):
                run_end += 1
        run = lonely[index:run_end]
        if len(run) >= 3:
            grouped.append(_merge_lonely_run_columnar(np, run, timestamps))
        else:
            leftovers.extend(run)
        index = run_end

    if len(leftovers) == 1:
        grouped.extend(leftovers)
    elif leftovers:
        grouped.append(_merge_lonely_run_columnar(np, leftovers, timestamps))
    return grouped


def partition_dynamic_columnar(
    np, addresses, sizes, timestamps, merge_lonely: bool = True
) -> List[Tuple[AddressRange, "np.ndarray"]]:
    """Vectorized :func:`partition_dynamic` over int64 columns.

    ``addresses``/``sizes``/``timestamps`` are parallel int64 columns in
    time order. Partitions come back ordered by region start with each
    partition's indices in time order — bit-identical structure to the
    scalar path.
    """
    if not len(addresses):
        return []
    ends = addresses + sizes
    region_starts, region_ends = merge_ranges_columnar(np, addresses, ends)
    # Region starts are strictly increasing, so bisect_right - 1 is a
    # searchsorted over them.
    assign = np.searchsorted(region_starts, addresses, side="right") - 1
    order = np.argsort(assign, kind="stable")
    counts = np.bincount(assign, minlength=len(region_starts))
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))
    partitions = [
        (
            AddressRange(int(region_starts[i]), int(region_ends[i])),
            order[offsets[i] : offsets[i + 1]],
        )
        for i in range(len(region_starts))
    ]
    if not merge_lonely:
        return partitions

    lonely = [p for p in partitions if len(p[1]) == 1]
    crowded = [p for p in partitions if len(p[1]) != 1]
    if len(lonely) <= 1:
        return partitions
    merged = crowded + _group_lonely_columnar(np, lonely, timestamps)
    # Stable sort; starts are distinct original region starts, and the
    # crowded-then-grouped concatenation order matches the scalar path.
    merged.sort(key=lambda p: p[0].start)
    return merged


def partition_dynamic(
    requests: Sequence[MemoryRequest], merge_lonely: bool = True
) -> List[SpatialPartition]:
    """Dynamic spatial partitioning (paper Alg. 1 + lonely-request merge).

    Returns partitions ordered by region start address. Each partition's
    region tightly covers the bytes its requests touch, so address
    synthesis can stay within a narrow range (key to Mocktails beating
    fixed 4KB partitions in Sec. V).
    """
    requests = list(requests)
    if not requests:
        return []
    regions = _merge_ranges(requests)
    partitions = _assign_requests(requests, regions)
    if not merge_lonely:
        return partitions

    lonely = [p for p in partitions if p.is_lonely]
    crowded = [p for p in partitions if not p.is_lonely]
    if len(lonely) <= 1:
        return partitions
    merged = crowded + _group_lonely(lonely)
    merged.sort(key=lambda p: p.region.start)
    return merged
