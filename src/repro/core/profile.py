"""The Mocktails statistical profile.

A profile is a collection of independent leaf models plus a description
of the hierarchy that produced them (paper Sec. III-B). The profile is
the artifact industry would distribute instead of a proprietary trace:
it contains Markov transition counts and constants, never the original
request sequence.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .leaf import LeafModel


class Profile:
    """A collection of leaf models forming one workload's statistical profile."""

    def __init__(
        self,
        leaves: Sequence[LeafModel],
        hierarchy: str = "",
        name: str = "",
    ):
        """Args:
        leaves: The independent leaf models.
        hierarchy: Human-readable hierarchy description (for provenance).
        name: Workload name (for provenance; may be left blank to
            avoid leaking workload identity).
        """
        self._leaves: List[LeafModel] = list(leaves)
        self.hierarchy = hierarchy
        self.name = name

    def __len__(self) -> int:
        return len(self._leaves)

    def __iter__(self) -> Iterator[LeafModel]:
        return iter(self._leaves)

    def __getitem__(self, index: int) -> LeafModel:
        return self._leaves[index]

    @property
    def leaves(self) -> Sequence[LeafModel]:
        return self._leaves

    @property
    def total_requests(self) -> int:
        """Number of requests a (strict) synthesis run will produce."""
        return sum(leaf.count for leaf in self._leaves)

    def constant_model_count(self) -> int:
        """How many feature models are constants (metadata-size driver, Fig. 17)."""
        count = 0
        for leaf in self._leaves:
            count += leaf.delta_time_model.is_constant
            count += leaf.size_model.is_constant
            address_model = getattr(leaf.address_model, "stride_model", None)
            if address_model is not None:
                count += address_model.is_constant
            operation_model = getattr(leaf.operation_model, "model", None)
            if operation_model is not None:
                count += operation_model.is_constant
        return count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self._leaves == other._leaves and self.hierarchy == other.hierarchy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Profile({len(self._leaves)} leaves, {self.total_requests} requests, "
            f"hierarchy={self.hierarchy!r})"
        )
