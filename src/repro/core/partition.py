"""Temporal partitioning of memory requests.

The paper (Sec. III-A) supports two styles of fixed-size temporal
partitions, both drawn from prior art:

* ``request_count`` intervals: at most N requests per interval (STM [3]
  uses 100,000 requests).
* ``cycle_count`` intervals: fixed number of cycles per interval
  (SynFull [4] uses 500,000-cycle macro phases). Intervals that contain
  no requests produce no partition.
"""

from __future__ import annotations

from typing import List, Sequence

from .request import MemoryRequest


def partition_by_request_count(
    requests: Sequence[MemoryRequest], max_requests: int
) -> List[List[MemoryRequest]]:
    """Split ``requests`` into consecutive chunks of at most ``max_requests``.

    Requests must already be in time order; the chunking preserves order.
    """
    if max_requests <= 0:
        raise ValueError(f"max_requests must be positive, got {max_requests}")
    requests = list(requests)
    return [requests[i : i + max_requests] for i in range(0, len(requests), max_requests)]


def partition_by_cycle_count(
    requests: Sequence[MemoryRequest], cycles_per_interval: int
) -> List[List[MemoryRequest]]:
    """Split ``requests`` into fixed-duration intervals.

    Intervals are aligned to the timestamp of the first request. Empty
    intervals (idle phases) are skipped — they contribute no partitions,
    which is how burst/idle behaviour surfaces as leaves with distant
    start times.
    """
    if cycles_per_interval <= 0:
        raise ValueError(f"cycles_per_interval must be positive, got {cycles_per_interval}")
    requests = list(requests)
    if not requests:
        return []

    origin = requests[0].timestamp
    partitions: List[List[MemoryRequest]] = []
    current: List[MemoryRequest] = []
    current_bin = 0
    previous = origin
    for request in requests:
        if request.timestamp < previous:
            raise ValueError(
                "requests must be sorted by timestamp: "
                f"{request.timestamp} follows {previous}"
            )
        previous = request.timestamp
        bin_index = (request.timestamp - origin) // cycles_per_interval
        if bin_index != current_bin and current:
            partitions.append(current)
            current = []
        current_bin = bin_index
        current.append(request)
    if current:
        partitions.append(current)
    return partitions
