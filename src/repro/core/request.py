"""Memory request primitives.

Mocktails models the four request features visible at the interface
between a compute device and the memory system (paper Sec. III):
*timestamp* (cycle the request is injected), *address*, *operation*
(read or write) and *size* (bytes requested).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Operation(enum.IntEnum):
    """The operation feature of a memory request."""

    READ = 0
    WRITE = 1

    @property
    def is_read(self) -> bool:
        return self is Operation.READ

    @property
    def is_write(self) -> bool:
        return self is Operation.WRITE

    @classmethod
    def parse(cls, text: str) -> "Operation":
        """Parse an operation from a trace-file token (``R``/``W`` etc.)."""
        token = text.strip().upper()
        if token in ("R", "READ", "0"):
            return cls.READ
        if token in ("W", "WRITE", "1"):
            return cls.WRITE
        raise ValueError(f"unknown operation token: {text!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "R" if self is Operation.READ else "W"


@dataclass(order=False)
class MemoryRequest:
    """A single memory request.

    Attributes:
        timestamp: Injection time in cycles.
        address: Byte address of the first byte accessed.
        operation: Read or write.
        size: Number of bytes requested (must be positive).
    """

    __slots__ = ("timestamp", "address", "operation", "size")

    timestamp: int
    address: int
    operation: Operation
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")

    @property
    def end_address(self) -> int:
        """One past the last byte touched by this request."""
        return self.address + self.size

    @property
    def is_read(self) -> bool:
        return self.operation is Operation.READ

    @property
    def is_write(self) -> bool:
        return self.operation is Operation.WRITE

    def overlaps(self, other: "MemoryRequest") -> bool:
        """True when the byte ranges of two requests intersect or touch.

        Adjacency counts as overlap because dynamic spatial partitioning
        (paper Alg. 1) merges requests that access *overlapping or
        adjacent* memory regions.
        """
        return self.address <= other.end_address and other.address <= self.end_address

    def copy(self) -> "MemoryRequest":
        return MemoryRequest(self.timestamp, self.address, self.operation, self.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryRequest(t={self.timestamp}, addr=0x{self.address:x}, "
            f"op={self.operation}, size={self.size})"
        )


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[start, end)`` used by spatial partitioning."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"empty/negative range: [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def intersects(self, other: "AddressRange") -> bool:
        """True when ranges overlap *or are adjacent* (Alg. 1 semantics)."""
        return self.start <= other.end and other.start <= self.end

    def expand(self, other: "AddressRange") -> "AddressRange":
        """The smallest range covering both ranges."""
        return AddressRange(min(self.start, other.start), max(self.end, other.end))

    @classmethod
    def of_request(cls, request: MemoryRequest) -> "AddressRange":
        return cls(request.address, request.end_address)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AddressRange(0x{self.start:x}, 0x{self.end:x})"
