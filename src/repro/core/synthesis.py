"""Request synthesis: statistical profile -> synthetic request stream.

Every leaf model generates a *partial order* of requests; a priority
queue sorted by timestamp merges them into the total order (paper
Sec. III-C, Fig. 5). Bursts are recreated naturally: leaves with similar
start times overlap in the queue.

Simulator feedback (Sec. III-C "Simulator Feedback"): when the consumer
cannot accept a request due to backpressure, the accumulated delay is
added to the timestamps of everything still in the queue. Use
:class:`FeedbackSynthesizer` for that tightly-coupled mode (Fig. 1,
Option B); :func:`synthesize` produces a plain synthetic trace
(Option A).
"""

from __future__ import annotations

import heapq
import random
from typing import Iterator, List, Optional, Union

from .. import obs
from .profile import Profile
from .request import MemoryRequest
from .trace import Trace


def _make_rng(seed_or_rng: Union[int, random.Random, None]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(0 if seed_or_rng is None else seed_or_rng)


def synthesize_stream(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Iterator[MemoryRequest]:
    """Yield synthetic requests in timestamp order (priority-queue merge).

    Ties between leaves are broken by leaf index so output is
    deterministic for a given seed.
    """
    rng = _make_rng(seed)
    registry = obs.active()
    emitted = registry.counter("synthesis.requests_emitted") if registry else None
    heap: List[tuple] = []
    streams = []
    for leaf_index, leaf in enumerate(profile):
        generated = leaf.generate(rng, strict=strict)
        stream = iter(generated)
        streams.append(stream)
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (first.timestamp, leaf_index, first))
    if registry is not None:
        registry.counter("synthesis.streams").inc()
        registry.counter("synthesis.leaves").inc(len(streams))
    while heap:
        _, leaf_index, request = heapq.heappop(heap)
        if emitted is not None:
            emitted.inc()
        yield request
        nxt = next(streams[leaf_index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.timestamp, leaf_index, nxt))


def synthesize(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Trace:
    """Synthesize a complete trace from a profile (Fig. 1, Option A)."""
    return Trace(synthesize_stream(profile, seed=seed, strict=strict))


def synthesize_to_file(
    profile: Profile,
    path,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
    block_requests: int = 8192,
) -> int:
    """Synthesize straight to a trace file, one column block at a time.

    Byte-identical to ``synthesize(...).save_binary(path)`` (or
    ``save_csv``, by suffix), but peak memory is O(block): the merge
    stream is chunked into :class:`~repro.core.columnar.ColumnarTrace`
    blocks and written through the crash-safe
    :class:`~repro.stream.writer.TraceBlockWriter`. The leaf counts fix
    the total up front, so the binary header never needs back-patching
    and a short stream is rejected. Returns the number of requests
    written.
    """
    from ..stream.writer import TraceBlockWriter
    from .columnar import ColumnarTrace

    if block_requests <= 0:
        raise ValueError(f"block_requests must be positive, got {block_requests}")
    expected = sum(leaf.count for leaf in profile)
    timestamps: List[int] = []
    addresses: List[int] = []
    sizes: List[int] = []
    ops: List[int] = []
    with TraceBlockWriter(path, expected_requests=expected) as writer:
        for request in synthesize_stream(profile, seed=seed, strict=strict):
            timestamps.append(request.timestamp)
            addresses.append(request.address)
            sizes.append(request.size)
            ops.append(int(request.operation))
            if len(timestamps) >= block_requests:
                writer.write_block(ColumnarTrace(timestamps, addresses, sizes, ops))
                timestamps, addresses, sizes, ops = [], [], [], []
        if timestamps:
            writer.write_block(ColumnarTrace(timestamps, addresses, sizes, ops))
    return writer.requests_written


class FeedbackSynthesizer:
    """Coupled synthesis with backpressure feedback (Fig. 1, Option B).

    The simulator pulls requests one at a time. When it could not inject
    the previous request on time, it reports the extra latency via
    :meth:`report_backpressure`; the accumulated delay is added to the
    timestamps of all requests still in the queue, letting synthesis
    adapt to contention in the interconnect and memory hierarchy.
    """

    def __init__(
        self,
        profile: Profile,
        seed: Union[int, random.Random, None] = 0,
        strict: bool = True,
    ):
        self._stream = synthesize_stream(profile, seed=seed, strict=strict)
        self._accumulated_delay = 0
        self._exhausted = False
        self._obs = obs.active()

    @property
    def accumulated_delay(self) -> int:
        return self._accumulated_delay

    def report_backpressure(self, delay: int) -> None:
        """Accumulate ``delay`` cycles of backpressure from the simulator."""
        if delay < 0:
            raise ValueError(f"backpressure delay must be non-negative, got {delay}")
        self._accumulated_delay += delay
        registry = self._obs
        if registry is not None and delay:
            registry.counter("synthesis.backpressure_events").inc()
            registry.counter("synthesis.backpressure_delay_cycles").inc(delay)
            registry.gauge("synthesis.accumulated_delay_cycles").set(self._accumulated_delay)

    def next_request(self) -> Optional[MemoryRequest]:
        """The next request with backpressure delay applied, or ``None``."""
        if self._exhausted:
            return None
        request = next(self._stream, None)
        if request is None:
            self._exhausted = True
            return None
        if self._accumulated_delay:
            request = MemoryRequest(
                request.timestamp + self._accumulated_delay,
                request.address,
                request.operation,
                request.size,
            )
        return request

    def __iter__(self) -> Iterator[MemoryRequest]:
        while True:
            request = self.next_request()
            if request is None:
                return
            yield request


class _DecrementalWeights:
    """Weighted index sampling with O(log n) decrements (Fenwick tree).

    Draw-for-draw compatible with ``rng.choices(range(n), weights)``: one
    ``rng.random()`` call per choice, resolved with the same
    insertion-point semantics over the exact integer cumulative weights
    (comparisons pit the float threshold against exact integer prefix
    sums, so no float accumulation error can flip a boundary). Replaces
    rebuilding the full weight list on every draw.
    """

    __slots__ = ("_tree", "_size", "_top", "_total")

    def __init__(self, weights: List[int]):
        size = len(weights)
        tree = [0] * (size + 1)
        for index, weight in enumerate(weights, start=1):
            tree[index] += weight
            parent = index + (index & -index)
            if parent <= size:
                tree[parent] += tree[index]
        self._tree = tree
        self._size = size
        top = 1
        while (top << 1) <= size:
            top <<= 1
        self._top = top
        self._total = sum(weights)

    @property
    def total(self) -> int:
        return self._total

    def choose(self, rng: random.Random) -> int:
        """Sample an index proportionally to the current weights."""
        # random.choices picks the insertion point of random()*total in
        # the cumulative weights, clamped to the last index.
        threshold = rng.random() * self._total
        tree = self._tree
        position = 0
        prefix = 0
        bit = self._top
        while bit:
            probe = position + bit
            if probe <= self._size and prefix + tree[probe] <= threshold:
                position = probe
                prefix += tree[probe]
            bit >>= 1
        return min(position, self._size - 1)

    def decrement(self, index: int) -> None:
        """Subtract 1 from ``weights[index]``."""
        self._total -= 1
        position = index + 1
        tree = self._tree
        while position <= self._size:
            tree[position] -= 1
            position += position & -position


def synthesize_transition_based(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Trace:
    """Ablation: interleave leaves with a sampled transition process.

    The paper reports that modeling transitions *between* leaf models
    (instead of using start times + a priority queue) "leads to random
    behaviour". This injector reproduces that alternative: at each step
    the next leaf is sampled proportionally to its remaining request
    count, and timestamps are reassigned cumulatively from the chosen
    leaf's delta times. Kept for the ablation benchmark.
    """
    rng = _make_rng(seed)
    pending: List[List[MemoryRequest]] = [leaf.generate(rng, strict=strict) for leaf in profile]
    positions = [0] * len(pending)
    requests: List[MemoryRequest] = []
    clock = min((leaf.start_time for leaf in profile), default=0)
    weights = _DecrementalWeights([len(batch) for batch in pending])
    while weights.total:
        index = weights.choose(rng)
        batch, position = pending[index], positions[index]
        request = batch[position]
        if position > 0:
            clock += max(0, request.timestamp - batch[position - 1].timestamp)
        requests.append(MemoryRequest(clock, request.address, request.operation, request.size))
        positions[index] += 1
        weights.decrement(index)
    return Trace(requests)
