"""Request synthesis: statistical profile -> synthetic request stream.

Every leaf model generates a *partial order* of requests; a priority
queue sorted by timestamp merges them into the total order (paper
Sec. III-C, Fig. 5). Bursts are recreated naturally: leaves with similar
start times overlap in the queue.

Simulator feedback (Sec. III-C "Simulator Feedback"): when the consumer
cannot accept a request due to backpressure, the accumulated delay is
added to the timestamps of everything still in the queue. Use
:class:`FeedbackSynthesizer` for that tightly-coupled mode (Fig. 1,
Option B); :func:`synthesize` produces a plain synthetic trace
(Option A).
"""

from __future__ import annotations

import heapq
import random
from typing import Iterator, List, Optional, Union

from .profile import Profile
from .request import MemoryRequest
from .trace import Trace


def _make_rng(seed_or_rng: Union[int, random.Random, None]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(0 if seed_or_rng is None else seed_or_rng)


def synthesize_stream(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Iterator[MemoryRequest]:
    """Yield synthetic requests in timestamp order (priority-queue merge).

    Ties between leaves are broken by leaf index so output is
    deterministic for a given seed.
    """
    rng = _make_rng(seed)
    heap: List[tuple] = []
    streams = []
    for leaf_index, leaf in enumerate(profile):
        generated = leaf.generate(rng, strict=strict)
        stream = iter(generated)
        streams.append(stream)
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (first.timestamp, leaf_index, first))
    while heap:
        _, leaf_index, request = heapq.heappop(heap)
        yield request
        nxt = next(streams[leaf_index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.timestamp, leaf_index, nxt))


def synthesize(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Trace:
    """Synthesize a complete trace from a profile (Fig. 1, Option A)."""
    return Trace(synthesize_stream(profile, seed=seed, strict=strict))


class FeedbackSynthesizer:
    """Coupled synthesis with backpressure feedback (Fig. 1, Option B).

    The simulator pulls requests one at a time. When it could not inject
    the previous request on time, it reports the extra latency via
    :meth:`report_backpressure`; the accumulated delay is added to the
    timestamps of all requests still in the queue, letting synthesis
    adapt to contention in the interconnect and memory hierarchy.
    """

    def __init__(
        self,
        profile: Profile,
        seed: Union[int, random.Random, None] = 0,
        strict: bool = True,
    ):
        self._stream = synthesize_stream(profile, seed=seed, strict=strict)
        self._accumulated_delay = 0
        self._exhausted = False

    @property
    def accumulated_delay(self) -> int:
        return self._accumulated_delay

    def report_backpressure(self, delay: int) -> None:
        """Accumulate ``delay`` cycles of backpressure from the simulator."""
        if delay < 0:
            raise ValueError(f"backpressure delay must be non-negative, got {delay}")
        self._accumulated_delay += delay

    def next_request(self) -> Optional[MemoryRequest]:
        """The next request with backpressure delay applied, or ``None``."""
        if self._exhausted:
            return None
        request = next(self._stream, None)
        if request is None:
            self._exhausted = True
            return None
        if self._accumulated_delay:
            request = MemoryRequest(
                request.timestamp + self._accumulated_delay,
                request.address,
                request.operation,
                request.size,
            )
        return request

    def __iter__(self) -> Iterator[MemoryRequest]:
        while True:
            request = self.next_request()
            if request is None:
                return
            yield request


def synthesize_transition_based(
    profile: Profile,
    seed: Union[int, random.Random, None] = 0,
    strict: bool = True,
) -> Trace:
    """Ablation: interleave leaves with a sampled transition process.

    The paper reports that modeling transitions *between* leaf models
    (instead of using start times + a priority queue) "leads to random
    behaviour". This injector reproduces that alternative: at each step
    the next leaf is sampled proportionally to its remaining request
    count, and timestamps are reassigned cumulatively from the chosen
    leaf's delta times. Kept for the ablation benchmark.
    """
    rng = _make_rng(seed)
    pending: List[List[MemoryRequest]] = [leaf.generate(rng, strict=strict) for leaf in profile]
    positions = [0] * len(pending)
    requests: List[MemoryRequest] = []
    clock = min((leaf.start_time for leaf in profile), default=0)
    remaining = sum(len(batch) for batch in pending)
    while remaining:
        weights = [len(batch) - pos for batch, pos in zip(pending, positions)]
        index = rng.choices(range(len(pending)), weights=weights, k=1)[0]
        batch, position = pending[index], positions[index]
        request = batch[position]
        if position > 0:
            clock += max(0, request.timestamp - batch[position - 1].timestamp)
        requests.append(MemoryRequest(clock, request.address, request.operation, request.size))
        positions[index] += 1
        remaining -= 1
    return Trace(requests)
