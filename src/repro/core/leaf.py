"""Leaf models: the per-partition models a Mocktails profile is made of.

Each leaf of the hierarchy is modeled independently (paper Sec. III-B).
A :class:`LeafModel` stores per-leaf metadata (start time, starting
address, address range, request count) plus one model per request
feature. Delta time and size always use McC; the address and operation
features are pluggable so the STM baseline can replace them
(Sec. IV: ``2L-TS (STM)``).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .mcc import McCModel
from .request import AddressRange, MemoryRequest, Operation


class AddressModel:
    """Generates the address sequence of a leaf."""

    MODEL_TYPE = "abstract"

    def generate(self, rng: random.Random, strict: bool = True) -> List[int]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


class OperationModel:
    """Generates the operation sequence of a leaf."""

    MODEL_TYPE = "abstract"

    def generate(self, rng: random.Random, strict: bool = True) -> List[Operation]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


def wrap_address(address: int, region: AddressRange) -> int:
    """Modulo an out-of-range address back into the leaf's memory region.

    Synthesis checks every generated address against the leaf's region and
    wraps it back to preserve spatial locality (paper Sec. III-C).
    """
    span = region.size
    if span <= 0:
        return region.start
    if region.contains(address):
        return address
    return region.start + ((address - region.start) % span)


class McCAddressModel(AddressModel):
    """Address generation from a McC stride model, wrapped into the region."""

    MODEL_TYPE = "mcc"

    def __init__(self, start_address: int, region: AddressRange, stride_model: McCModel):
        self.start_address = start_address
        self.region = region
        self.stride_model = stride_model

    @classmethod
    def fit(cls, addresses: Sequence[int], region: AddressRange) -> "McCAddressModel":
        if not addresses:
            raise ValueError("cannot fit an address model to zero addresses")
        strides = [b - a for a, b in zip(addresses, addresses[1:])]
        return cls(addresses[0], region, McCModel.fit(strides))

    def generate(self, rng: random.Random, strict: bool = True) -> List[int]:
        addresses = [self.start_address]
        for stride in self.stride_model.generate(rng, strict=strict):
            addresses.append(wrap_address(addresses[-1] + stride, self.region))
        return addresses

    def to_dict(self) -> dict:
        return {
            "type": self.MODEL_TYPE,
            "start_address": self.start_address,
            "region": [self.region.start, self.region.end],
            "stride_model": self.stride_model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "McCAddressModel":
        return cls(
            data["start_address"],
            AddressRange(*data["region"]),
            McCModel.from_dict(data["stride_model"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, McCAddressModel):
            return NotImplemented
        return (
            self.start_address == other.start_address
            and self.region == other.region
            and self.stride_model == other.stride_model
        )


class McCOperationModel(OperationModel):
    """Operation generation from a McC model over read/write values."""

    MODEL_TYPE = "mcc"

    def __init__(self, model: McCModel):
        self.model = model

    @classmethod
    def fit(cls, operations: Sequence[Operation]) -> "McCOperationModel":
        return cls(McCModel.fit([int(op) for op in operations]))

    def generate(self, rng: random.Random, strict: bool = True) -> List[Operation]:
        return [Operation(value) for value in self.model.generate(rng, strict=strict)]

    def to_dict(self) -> dict:
        return {"type": self.MODEL_TYPE, "model": self.model.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "McCOperationModel":
        return cls(McCModel.from_dict(data["model"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, McCOperationModel):
            return NotImplemented
        return self.model == other.model


class LeafModel:
    """The statistical model of one leaf partition.

    Attributes:
        start_time: Cycle the leaf begins injecting requests (paper: each
            model provides a start time so concurrent streams can overlap,
            which is how bursts are recreated).
        count: Number of requests the leaf regenerates.
        region: Address range synthesis is confined to.
        delta_time_model: McC over inter-arrival times (``count - 1`` values).
        size_model: McC over request sizes (``count`` values).
        address_model: Pluggable address generator (``count`` addresses).
        operation_model: Pluggable operation generator (``count`` values).
    """

    def __init__(
        self,
        start_time: int,
        count: int,
        region: AddressRange,
        delta_time_model: McCModel,
        size_model: McCModel,
        address_model: AddressModel,
        operation_model: OperationModel,
    ):
        if count <= 0:
            raise ValueError("a leaf model must cover at least one request")
        self.start_time = start_time
        self.count = count
        self.region = region
        self.delta_time_model = delta_time_model
        self.size_model = size_model
        self.address_model = address_model
        self.operation_model = operation_model

    @classmethod
    def fit(
        cls,
        requests: Sequence[MemoryRequest],
        region: AddressRange,
        order: int = 1,
    ) -> "LeafModel":
        """Fit the default (all-McC) leaf model to a leaf partition.

        ``order`` > 1 fits higher-order Markov chains for every feature
        (an ablation knob; the paper uses memoryless chains).
        """
        requests = list(requests)
        if not requests:
            raise ValueError("cannot fit a leaf model to zero requests")
        times = [r.timestamp for r in requests]
        deltas = [b - a for a, b in zip(times, times[1:])]
        addresses = [r.address for r in requests]
        strides = [b - a for a, b in zip(addresses, addresses[1:])]
        return cls(
            start_time=times[0],
            count=len(requests),
            region=region,
            delta_time_model=McCModel.fit(deltas, order=order),
            size_model=McCModel.fit([r.size for r in requests], order=order),
            address_model=McCAddressModel(
                addresses[0], region, McCModel.fit(strides, order=order)
            ),
            operation_model=McCOperationModel(
                McCModel.fit([int(r.operation) for r in requests], order=order)
            ),
        )


    def generate(self, rng: random.Random, strict: bool = True) -> List[MemoryRequest]:
        """Synthesize this leaf's requests (a *partial order*, Sec. III-C)."""
        deltas = self.delta_time_model.generate(rng, strict=strict)
        sizes = self.size_model.generate(rng, strict=strict)
        addresses = self.address_model.generate(rng, strict=strict)
        operations = self.operation_model.generate(rng, strict=strict)
        if not (len(sizes) == len(addresses) == len(operations) == self.count):
            raise RuntimeError("feature models disagree on leaf request count")
        if len(deltas) != self.count - 1:
            raise RuntimeError("delta-time model must generate count-1 values")

        requests = []
        timestamp = self.start_time
        for index in range(self.count):
            if index > 0:
                timestamp += max(0, deltas[index - 1])
            requests.append(
                MemoryRequest(timestamp, addresses[index], operations[index], sizes[index])
            )
        return requests

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeafModel):
            return NotImplemented
        return (
            self.start_time == other.start_time
            and self.count == other.count
            and self.region == other.region
            and self.delta_time_model == other.delta_time_model
            and self.size_model == other.size_model
            and self.address_model == other.address_model
            and self.operation_model == other.operation_model
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeafModel(start={self.start_time}, count={self.count}, "
            f"region=[{self.region.start:#x}, {self.region.end:#x}))"
        )


def make_leaf_factory(order: int = 1):
    """A leaf factory fitting order-``order`` McC models (ablation knob)."""

    def factory(requests: Sequence[MemoryRequest], region: AddressRange) -> LeafModel:
        return LeafModel.fit(requests, region, order=order)

    return factory
