"""Downstream consumers of value streams (paper Sec. VI motivation).

The paper motivates value modeling with "memory hierarchy research that
exploits data value locality, such as: approximate computing, value
prediction, and compression". Two standard proxies:

* **last-value prediction rate** — fraction of accesses whose value a
  per-location last-value predictor gets right (Lipasti et al. [26]);
* **BDI compressibility** — fraction of 8-word blocks encodable as
  base + small deltas (Pekhimenko et al. [34], simplified).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence

from ..core.trace import Trace


def last_value_prediction_rate(trace: Trace, values: Sequence[int]) -> float:
    """Hit rate of a per-64B-location last-value predictor."""
    if len(values) != len(trace):
        raise ValueError("values must align with the trace")
    if not values:
        return 0.0
    last: Dict[int, int] = {}
    hits = 0
    predictions = 0
    for request, value in zip(trace, values):
        key = request.address // 64
        if key in last:
            predictions += 1
            hits += last[key] == value
        last[key] = value
    return hits / predictions if predictions else 0.0


def bdi_compressibility(values: Sequence[int], block_words: int = 8) -> float:
    """Fraction of blocks compressible with base+delta (|delta| < 2^16)."""
    if not values:
        return 0.0
    blocks = [
        values[i : i + block_words] for i in range(0, len(values), block_words)
    ]
    compressible = 0
    for block in blocks:
        base = block[0]
        if all(abs(value - base) < (1 << 16) for value in block):
            compressible += 1
    return compressible / len(blocks)


def value_entropy(values: Sequence[int]) -> float:
    """Shannon entropy (bits) of the value distribution."""
    if not values:
        return 0.0
    counts = Counter(values)
    total = len(values)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )
