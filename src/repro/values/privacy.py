"""Differential privacy for value histograms.

A profile that ships exact value-delta counts can leak data content.
Following the paper's suggestion (Dwork's ε-differential privacy [14]),
each histogram count is perturbed with Laplace noise of scale ``1/ε``
before it enters the profile: the presence or absence of any single
observation changes a count by at most 1 (sensitivity 1), so the noised
histogram satisfies ε-DP with respect to individual values.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Hashable


def laplace_sample(rng: random.Random, scale: float) -> float:
    """Draw from Laplace(0, scale) by inverse transform."""
    uniform = rng.random() - 0.5
    return -scale * math.copysign(math.log(1.0 - 2.0 * abs(uniform)), uniform)


def laplace_noise_histogram(
    counts: Counter,
    epsilon: float,
    rng: random.Random,
) -> Counter:
    """Return an ε-DP noised copy of a count histogram.

    Counts receive Laplace(1/ε) noise, are rounded, and negatives are
    clipped to zero. If everything clips to zero the largest original
    bin is kept at 1 so the histogram stays usable for synthesis.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    scale = 1.0 / epsilon
    noised: Counter = Counter()
    for value, count in counts.items():
        perturbed = int(round(count + laplace_sample(rng, scale)))
        if perturbed > 0:
            noised[value] = perturbed
    if not noised and counts:
        top_value, _ = max(counts.items(), key=lambda item: item[1])
        noised[top_value] = 1
    return noised


def histogram_distance(a: Counter, b: Counter) -> float:
    """Total-variation distance between two (count) histograms."""
    total_a = sum(a.values()) or 1
    total_b = sum(b.values()) or 1
    keys = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(key, 0) / total_a - b.get(key, 0) / total_b) for key in keys
    )
