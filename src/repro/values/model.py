"""Per-leaf value models riding on the Mocktails hierarchy.

Values are modeled the way Mocktails models every other feature: the
trace is partitioned with a hierarchical configuration, and each leaf
gets an independent model of its *value deltas* (difference between
consecutive values within the leaf). Deltas, not raw values, carry the
value-locality structure (paper Sec. III-B models delta time and stride
the same way).

For privacy, the per-leaf delta histograms are Laplace-noised (ε-DP,
:mod:`repro.values.privacy`) before they are stored; synthesis samples
from the noised histograms. The first value of each leaf is quantized
to ``first_value_quantum`` so exact payloads never enter the profile.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..core.hierarchy import HierarchyConfig, build_leaves, two_level_ts
from ..core.trace import Trace
from .privacy import laplace_noise_histogram
from .workloads import VALUE_MASK


class LeafValueModel:
    """ε-DP delta histogram + quantized value range for one leaf.

    Like address synthesis, generated values are wrapped back into the
    leaf's (quantized) observed value range, so sampling deltas i.i.d.
    cannot drift the stream away from the original magnitude class.
    """

    def __init__(
        self,
        start_value: int,
        delta_counts: Counter,
        count: int,
        value_min: int = 0,
        value_max: int = VALUE_MASK,
    ):
        if value_max < value_min:
            raise ValueError("value_max must be >= value_min")
        self.start_value = start_value
        self.delta_counts = delta_counts
        self.count = count
        self.value_min = value_min
        self.value_max = value_max

    @classmethod
    def fit(
        cls,
        values: Sequence[int],
        epsilon: Optional[float],
        rng: random.Random,
        first_value_quantum: int = 16,
    ) -> "LeafValueModel":
        if not values:
            raise ValueError("cannot fit a value model to zero values")
        deltas = Counter(b - a for a, b in zip(values, values[1:]))
        if epsilon is not None:
            deltas = laplace_noise_histogram(deltas, epsilon, rng)
        quantum = first_value_quantum
        start = (values[0] // quantum) * quantum
        value_min = (min(values) // quantum) * quantum
        value_max = ((max(values) // quantum) + 1) * quantum
        return cls(start, deltas, len(values), value_min, value_max)

    def _wrap(self, value: int) -> int:
        span = self.value_max - self.value_min
        if span <= 0:
            return self.value_min & VALUE_MASK
        if self.value_min <= value <= self.value_max:
            return value & VALUE_MASK
        return (self.value_min + ((value - self.value_min) % span)) & VALUE_MASK

    def generate(self, rng: random.Random) -> List[int]:
        values = [self._wrap(self.start_value)]
        if self.delta_counts:
            deltas = sorted(self.delta_counts.keys())
            weights = [self.delta_counts[d] for d in deltas]
            for _ in range(self.count - 1):
                delta = rng.choices(deltas, weights=weights, k=1)[0]
                values.append(self._wrap(values[-1] + delta))
        else:
            values.extend([values[0]] * (self.count - 1))
        return values

    def to_dict(self) -> dict:
        return {
            "start_value": self.start_value,
            "delta_counts": sorted(self.delta_counts.items()),
            "count": self.count,
            "value_min": self.value_min,
            "value_max": self.value_max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LeafValueModel":
        return cls(
            data["start_value"],
            Counter(dict((int(k), int(v)) for k, v in data["delta_counts"])),
            data["count"],
            data.get("value_min", 0),
            data.get("value_max", VALUE_MASK),
        )


class ValueProfile:
    """One value model per hierarchy leaf, aligned with the leaf order."""

    def __init__(self, leaves: Sequence[LeafValueModel], epsilon: Optional[float]):
        self._leaves = list(leaves)
        self.epsilon = epsilon

    def __len__(self) -> int:
        return len(self._leaves)

    def __iter__(self):
        return iter(self._leaves)

    def __getitem__(self, index: int) -> LeafValueModel:
        return self._leaves[index]

    @property
    def total_values(self) -> int:
        return sum(leaf.count for leaf in self._leaves)

    def generate(self, seed: int = 0) -> List[int]:
        """One value per request, in the per-leaf concatenated order."""
        rng = random.Random(seed)
        values: List[int] = []
        for leaf in self._leaves:
            values.extend(leaf.generate(rng))
        return values

    def to_dict(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "leaves": [leaf.to_dict() for leaf in self._leaves],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValueProfile":
        return cls(
            [LeafValueModel.from_dict(leaf) for leaf in data["leaves"]],
            data.get("epsilon"),
        )

    def save(self, path) -> int:
        """Write a gzip-compressed value profile; returns bytes written.

        Byte-deterministic (``mtime=0``) and atomic, like every other
        artifact writer in the repo.
        """
        import gzip
        import json

        from ..store.atomic import atomic_write_bytes

        payload = gzip.compress(
            json.dumps(self.to_dict(), separators=(",", ":")).encode("ascii"),
            mtime=0,
        )
        return atomic_write_bytes(path, payload)

    @classmethod
    def load(cls, path) -> "ValueProfile":
        import gzip
        import json
        from pathlib import Path

        payload = gzip.decompress(Path(path).read_bytes())
        return cls.from_dict(json.loads(payload.decode("ascii")))


def synthesize_with_values(
    profile,
    value_profile: ValueProfile,
    seed: int = 0,
    strict: bool = True,
):
    """Synthesize a trace and aligned values from matching profiles.

    Both profiles must come from the same trace and hierarchy config so
    their leaves line up 1:1. Returns ``(trace, values)`` with one value
    per synthetic request, in the merged time order.

    Args:
        profile: A :class:`repro.core.profile.Profile`.
        value_profile: The matching :class:`ValueProfile`.
    """
    import heapq

    from ..core.trace import Trace

    if len(profile) != len(value_profile):
        raise ValueError(
            f"profiles disagree: {len(profile)} request leaves vs "
            f"{len(value_profile)} value leaves"
        )
    request_rng = random.Random(seed)
    heap = []
    streams = []
    for index, (leaf, value_leaf) in enumerate(zip(profile, value_profile)):
        requests = leaf.generate(request_rng, strict=strict)
        values = value_leaf.generate(random.Random((seed << 8) ^ index))
        if len(requests) != len(values):
            raise ValueError("leaf request/value counts disagree")
        stream = iter(zip(requests, values))
        streams.append(stream)
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (first[0].timestamp, index, first))
    ordered_requests = []
    ordered_values = []
    while heap:
        _, index, (request, value) = heapq.heappop(heap)
        ordered_requests.append(request)
        ordered_values.append(value)
        nxt = next(streams[index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0].timestamp, index, nxt))
    return Trace(ordered_requests), ordered_values


def build_value_profile(
    trace: Trace,
    values: Sequence[int],
    config: Optional[HierarchyConfig] = None,
    epsilon: Optional[float] = 1.0,
    seed: int = 0,
) -> ValueProfile:
    """Fit a value profile over the same hierarchy Mocktails uses.

    Args:
        trace: The request trace (time-sorted).
        values: One value per request, aligned with ``trace``.
        config: Hierarchy; defaults to the paper's 2L-TS.
        epsilon: ε for the Laplace mechanism; ``None`` disables noising
            (for ablations only — a real exchange should keep DP on).
        seed: RNG seed for the privacy noise.
    """
    if len(values) != len(trace):
        raise ValueError(
            f"need one value per request: {len(values)} values, {len(trace)} requests"
        )
    if config is None:
        config = two_level_ts()

    # Recover each request's position so leaf values can be looked up.
    index_of: Dict[int, int] = {id(request): i for i, request in enumerate(trace)}
    rng = random.Random(seed)
    leaf_models = []
    for leaf in build_leaves(trace.requests, config):
        leaf_values = [values[index_of[id(request)]] for request in leaf.requests]
        leaf_models.append(LeafValueModel.fit(leaf_values, epsilon, rng))
    return ValueProfile(leaf_models, epsilon)
