"""Data-value modeling with differential privacy.

The paper's Sec. VI names this as future work: "Another important
feature not modeled by Mocktails is the data being communicated.
Modeling data may give rise to privacy concerns; however we envision
that techniques such as differential privacy could be applied...
Mocktails' hierarchical partitioning can complement future models by
uncovering patterns in the data feature once differential privacy has
been applied."

This subpackage implements that extension:

* :mod:`repro.values.workloads` — synthetic per-request payloads with
  device-plausible value locality;
* :mod:`repro.values.model` — a per-leaf value-delta model reusing the
  Mocktails hierarchy;
* :mod:`repro.values.privacy` — Laplace-noised histograms (ε-DP at the
  profile level);
* :mod:`repro.values.metrics` — downstream consumers from the paper's
  motivation (value prediction, compressibility).
"""

from .metrics import bdi_compressibility, last_value_prediction_rate, value_entropy
from .model import (
    LeafValueModel,
    ValueProfile,
    build_value_profile,
    synthesize_with_values,
)
from .privacy import histogram_distance, laplace_noise_histogram, laplace_sample
from .workloads import attach_values

__all__ = [
    "LeafValueModel",
    "ValueProfile",
    "attach_values",
    "bdi_compressibility",
    "build_value_profile",
    "histogram_distance",
    "laplace_noise_histogram",
    "laplace_sample",
    "last_value_prediction_rate",
    "synthesize_with_values",
    "value_entropy",
]
