"""Synthetic per-request data values with device-plausible locality.

Values are 32-bit words associated 1:1 with the requests of a trace.
Three generators cover the value-locality styles the paper's motivation
cites (approximate computing, value prediction, compression):

* ``pixels`` — spatially smooth values (neighbouring addresses carry
  similar values), as in frame buffers;
* ``counters`` — small-delta monotonic values, as in pointer/index
  structures;
* ``sparse`` — mostly-zero payloads with occasional dense words, as in
  compressed or zero-initialized data.
"""

from __future__ import annotations

import random
from typing import List

from ..core.trace import Trace

VALUE_MASK = 0xFFFF_FFFF

_KINDS = ("pixels", "counters", "sparse")


def attach_values(trace: Trace, kind: str = "pixels", seed: int = 0) -> List[int]:
    """Generate one 32-bit value per request of ``trace``."""
    if kind not in _KINDS:
        raise ValueError(f"unknown value kind {kind!r}; expected one of {_KINDS}")
    rng = random.Random(seed)
    if kind == "pixels":
        return _pixels(trace, rng)
    if kind == "counters":
        return _counters(trace, rng)
    return _sparse(trace, rng)


def _pixels(trace: Trace, rng: random.Random) -> List[int]:
    """Smooth gradient over the address space plus small noise."""
    values = []
    for request in trace:
        base = (request.address >> 6) & 0xFF  # slowly varying with address
        pixel = (base << 16) | (base << 8) | base
        # Pixels are stable: most re-reads see the identical value, with
        # occasional small dithering.
        noise = rng.randint(-3, 3) if rng.random() < 0.25 else 0
        values.append((pixel + noise) & VALUE_MASK)
    return values


def _counters(trace: Trace, rng: random.Random) -> List[int]:
    """Per-64B-location counters that mostly increment."""
    counters = {}
    values = []
    for request in trace:
        key = request.address // 64
        current = counters.get(key, rng.randint(0, 1000))
        current = (current + rng.choice((0, 1, 1, 2, 4))) & VALUE_MASK
        counters[key] = current
        values.append(current)
    return values


def _sparse(trace: Trace, rng: random.Random) -> List[int]:
    """~70% zero words; the rest uniformly random."""
    values = []
    for _ in trace:
        if rng.random() < 0.7:
            values.append(0)
        else:
            values.append(rng.randint(1, VALUE_MASK))
    return values
