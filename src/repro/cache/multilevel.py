"""N-level cache hierarchies.

The paper's Sec. V uses two levels ("modern CPUs contain L3s, but as we
recreate requests between the CPU and the L1, an L3 is irrelevant to our
analysis"); this generalization supports the cache-depth studies the
paper's Sec. VI proposes ("research into appropriate cache sizes, the
number of levels in a cache hierarchy, and replacement policies").

Semantics per level (all write-back, write-allocate, non-inclusive):
a miss at level *i* is filled from level *i+1*; a dirty victim at level
*i* is written into level *i+1*; misses at the last level count as
memory accesses.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.request import MemoryRequest, Operation
from .cache import AccessResult, Cache, CacheConfig


class MultiLevelCache:
    """A stack of write-back caches of arbitrary depth."""

    def __init__(self, configs: Sequence[CacheConfig]):
        if not configs:
            raise ValueError("need at least one cache level")
        block_sizes = {config.block_size for config in configs}
        if len(block_sizes) > 1:
            raise ValueError("all levels must share a block size")
        self.levels: List[Cache] = [
            Cache(config, obs_label=f"l{index}")
            for index, config in enumerate(configs, start=1)
        ]
        self.block_size = configs[0].block_size
        self.memory_reads = 0
        self.memory_writes = 0

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_stats(self, index: int):
        return self.levels[index].stats

    def access(self, request: MemoryRequest) -> None:
        is_write = request.operation is Operation.WRITE
        first = request.address // self.block_size
        last = (request.end_address - 1) // self.block_size
        for block in range(first, last + 1):
            self._access_block(0, block, is_write)

    def _access_block(self, level: int, block: int, is_write: bool) -> None:
        if level >= self.depth:
            # Missed everywhere: goes to memory.
            if is_write:
                self.memory_writes += 1
            else:
                self.memory_reads += 1
            return
        result: AccessResult = self.levels[level].access_block(block, is_write)
        if result.hit:
            return
        if result.writeback_address is not None:
            # Dirty victim propagates one level down as a write.
            self._access_block(level + 1, result.writeback_address, True)
        # The fill reads the block from the next level.
        self._access_block(level + 1, block, False)

    def run(self, requests: Iterable[MemoryRequest]) -> None:
        for request in requests:
            self.access(request)

    def miss_rates(self) -> List[float]:
        return [cache.stats.miss_rate for cache in self.levels]
