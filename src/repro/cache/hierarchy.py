"""A two-level cache hierarchy in atomic mode (paper Sec. V-A).

The default configuration matches the paper: a write-back L1 of varying
size/associativity in front of a 256KB 8-way L2, 64B blocks everywhere.
On an L1 miss the L2 is accessed; an L1 dirty eviction is written back
into the L2 (a write access at the victim's address).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.request import MemoryRequest, Operation
from .cache import AccessResult, Cache, CacheConfig, CacheStats


def paper_l1_config(size: int = 32 * 1024, associativity: int = 4) -> CacheConfig:
    """An L1 configuration from the paper's sweep (default 32KB 4-way)."""
    return CacheConfig(size=size, associativity=associativity, block_size=64)


def paper_l2_config() -> CacheConfig:
    """The fixed 256KB 8-way L2 used throughout Sec. V."""
    return CacheConfig(size=256 * 1024, associativity=8, block_size=64)


class CacheHierarchy:
    """L1 + L2, accessed in program order (timestamps ignored)."""

    def __init__(
        self,
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
    ):
        self.l1 = Cache(l1_config if l1_config is not None else paper_l1_config(), obs_label="l1")
        self.l2 = Cache(l2_config if l2_config is not None else paper_l2_config(), obs_label="l2")
        if self.l1.config.block_size != self.l2.config.block_size:
            raise ValueError("L1 and L2 must share a block size")

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats

    def access(self, request: MemoryRequest) -> None:
        """Send one CPU request through L1, forwarding misses to L2."""
        block_size = self.l1.config.block_size
        is_write = request.operation is Operation.WRITE
        first = request.address // block_size
        last = (request.end_address - 1) // block_size
        for block in range(first, last + 1):
            result = self.l1.access_block(block, is_write)
            self._handle_l1_result(block, result)

    def _handle_l1_result(self, block: int, result: AccessResult) -> None:
        if result.hit:
            return
        if result.writeback_address is not None:
            # Dirty L1 victim is written back into the L2.
            self.l2.access_block(result.writeback_address, True)
        # The fill itself reads the block from L2.
        self.l2.access_block(block, False)

    def run(self, requests: Iterable[MemoryRequest]) -> None:
        """Replay a whole request sequence (order only, atomic mode)."""
        for request in requests:
            self.access(request)
