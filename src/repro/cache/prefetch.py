"""Hardware prefetcher models for the cache substrate.

The paper's Sec. V validates that Mocktails clones preserve cache
behaviour; prefetching studies are a natural next consumer (the clone
must preserve the stream/stride structure a prefetcher keys on — which
is exactly what McC stride models capture). Two classic prefetchers:

* **next-line**: on a demand miss to block B, prefetch B+1..B+degree;
* **stride**: a per-region stride detector (confirmed after ``threshold``
  repeats) that prefetches ahead along the detected stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.request import MemoryRequest, Operation
from .cache import Cache, CacheConfig


class Prefetcher:
    """Predicts block addresses to prefetch after a demand access."""

    name = "abstract"

    def predict(self, block: int, was_miss: bool) -> List[int]:
        raise NotImplementedError


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks on a miss."""

    name = "next-line"

    def __init__(self, degree: int = 1):
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def predict(self, block: int, was_miss: bool) -> List[int]:
        if not was_miss:
            return []
        return [block + offset for offset in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Detect per-region strides; prefetch ahead once confirmed."""

    name = "stride"

    def __init__(self, degree: int = 2, threshold: int = 2, region_blocks: int = 64):
        if degree <= 0 or threshold <= 0 or region_blocks <= 0:
            raise ValueError("degree, threshold and region_blocks must be positive")
        self.degree = degree
        self.threshold = threshold
        self.region_blocks = region_blocks
        # region -> (last block, last stride, confirmations)
        self._table: Dict[int, List[int]] = {}

    def predict(self, block: int, was_miss: bool) -> List[int]:
        region = block // self.region_blocks
        entry = self._table.get(region)
        if entry is None:
            self._table[region] = [block, 0, 0]
            return []
        last_block, last_stride, confirmations = entry
        stride = block - last_block
        if stride != 0 and stride == last_stride:
            confirmations += 1
        elif stride != 0:
            confirmations = 0
        self._table[region] = [block, stride if stride else last_stride, confirmations]
        if stride and confirmations >= self.threshold:
            return [block + stride * step for step in range(1, self.degree + 1)]
        return []


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0  # prefetched lines later hit by demand
    late_or_useless: int = 0  # evicted before use

    @property
    def accuracy(self) -> float:
        finished = self.useful + self.late_or_useless
        return self.useful / finished if finished else 0.0


class PrefetchingCache:
    """A cache front end that drives a prefetcher alongside demand traffic.

    Prefetch fills do not count as demand accesses; a demand hit on a
    block brought in by the prefetcher counts as a *useful* prefetch.
    """

    def __init__(self, config: CacheConfig, prefetcher: Prefetcher):
        self.cache = Cache(config)
        self.prefetcher = prefetcher
        self.stats = PrefetchStats()
        self._prefetched: set = set()  # resident blocks owed to prefetches

    @property
    def demand_stats(self):
        return self.cache.stats

    def access_block(self, block: int, is_write: bool) -> bool:
        """One demand access; returns hit/miss. Trains the prefetcher."""
        result = self.cache.access_block(block, is_write)
        if result.hit and block in self._prefetched:
            self.stats.useful += 1
            self._prefetched.discard(block)
        if result.victim_address is not None:
            self._note_eviction(result.victim_address)
        for predicted in self.prefetcher.predict(block, not result.hit):
            self._prefetch(predicted)
        return result.hit

    def _prefetch(self, block: int) -> None:
        if self.cache.contains(block):
            return
        fill = self.cache.fill_block(block)
        if fill.victim_address is not None:
            self._note_eviction(fill.victim_address)
        self._prefetched.add(block)
        self.stats.issued += 1

    def _note_eviction(self, victim_block: int) -> None:
        if victim_block in self._prefetched:
            self._prefetched.discard(victim_block)
            self.stats.late_or_useless += 1

    def run(self, requests: Iterable[MemoryRequest]) -> None:
        block_size = self.cache.config.block_size
        for request in requests:
            first = request.address // block_size
            last = (request.end_address - 1) // block_size
            for block in range(first, last + 1):
                self.access_block(block, request.operation is Operation.WRITE)
