"""Batched two-level cache simulation over columnar traces.

The scalar :class:`~repro.cache.hierarchy.CacheHierarchy` walks one
request object at a time through per-way line scans and a separate
replacement-policy object. This module replays the same atomic-mode
semantics in chunks: requests stream in as column blocks, the block
expansion and set/tag decomposition are precomputed as whole-column
passes (vectorized under numpy), and each cache level is a list of
per-set ordered dicts mapping ``tag -> dirty``.

The dict representation is an exact LRU: insertion order is recency
order because a hit pops and reinserts its tag and a fill appends, so
``next(iter(set_dict))`` is always the least-recently-used way. Victim
selection among *invalid* ways differs from the scalar way-index scan
only in which physical way is filled — unobservable in statistics, which
is the contract: a batched run produces :class:`CacheStats` equal to the
scalar run's, field for field, including footprints.

Only LRU replacement is supported (the paper's Sec. V policy);
:func:`repro.sim.cache_driver.run_cache_trace` falls back to the scalar
hierarchy for FIFO/random sweeps and sanitized runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from .. import obs
from ..core.columnar import ColumnarTrace, numpy_or_none
from ..core.trace import Trace
from .cache import CacheConfig, CacheStats
from .hierarchy import paper_l1_config, paper_l2_config

_INT64_MAX = 2**63 - 1

#: Requests per streamed column block (bounds peak precompute memory).
DEFAULT_CHUNK_REQUESTS = 8192


class BatchedCacheHierarchy:
    """L1 + L2 dict-LRU caches replayed in column chunks."""

    __slots__ = (
        "l1_config",
        "l2_config",
        "l1_stats",
        "l2_stats",
        "_l1_sets",
        "_l2_sets",
        "_l1_misses",
        "_l1_write_misses",
        "_l1_replacements",
        "_l1_write_backs",
        "_l2_accesses",
        "_l2_write_accesses",
        "_l2_misses",
        "_l2_write_misses",
        "_l2_replacements",
        "_l2_write_backs",
    )

    def __init__(
        self,
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
    ):
        self.l1_config = l1_config if l1_config is not None else paper_l1_config()
        self.l2_config = l2_config if l2_config is not None else paper_l2_config()
        if self.l1_config.block_size != self.l2_config.block_size:
            raise ValueError("L1 and L2 must share a block size")
        for config in (self.l1_config, self.l2_config):
            if config.replacement != "lru":
                raise ValueError(
                    "batched cache simulation supports only LRU replacement, "
                    f"got {config.replacement!r}"
                )
        self.l1_stats = CacheStats()
        self.l2_stats = CacheStats()
        self._l1_sets: List[Dict[int, bool]] = [
            dict() for _ in range(self.l1_config.num_sets)
        ]
        self._l2_sets: List[Dict[int, bool]] = [
            dict() for _ in range(self.l2_config.num_sets)
        ]
        self._l1_misses = 0
        self._l1_write_misses = 0
        self._l1_replacements = 0
        self._l1_write_backs = 0
        self._l2_accesses = 0
        self._l2_write_accesses = 0
        self._l2_misses = 0
        self._l2_write_misses = 0
        self._l2_replacements = 0
        self._l2_write_backs = 0

    def run(
        self,
        trace: Union[Trace, ColumnarTrace],
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> None:
        """Replay a whole trace (order only, atomic mode)."""
        columns = (
            trace if isinstance(trace, ColumnarTrace) else ColumnarTrace.from_trace(trace)
        )
        self.run_blocks(columns.iter_blocks(chunk_requests))

    def run_blocks(self, blocks: Iterable[ColumnarTrace]) -> None:
        """Replay a stream of column blocks (order only, atomic mode).

        The out-of-core entry point: blocks may come straight from
        :func:`repro.stream.iter_blocks`, so peak memory is O(block) no
        matter the trace size. :meth:`run` is this over
        :meth:`ColumnarTrace.iter_blocks`.
        """
        before = tuple(
            (stats.hits, stats.misses, stats.write_backs)
            for stats in (self.l1_stats, self.l2_stats)
        )
        for block in blocks:
            expanded, writes = _expand_blocks(block, self.l1_config.block_size)
            self._replay_chunk(expanded, writes)
        self._publish(before)

    # -- chunk replay ---------------------------------------------------------

    def _replay_chunk(self, blocks: List[int], writes: List[bool]) -> None:
        l1 = self.l1_stats
        l1.accesses += len(blocks)
        write_count = sum(writes)
        l1.write_accesses += write_count
        l1.read_accesses += len(blocks) - write_count
        l1.footprint_blocks.update(blocks)

        l1_sets = self._l1_sets
        l1_num_sets = self.l1_config.num_sets
        l1_assoc = self.l1_config.associativity
        l2_access = self._l2_access
        misses = 0
        write_misses = 0
        replacements = 0
        write_backs = 0
        missing = _MISSING

        for block, is_write in zip(blocks, writes):
            set_index = block % l1_num_sets
            tag = block // l1_num_sets
            ways = l1_sets[set_index]
            dirty = ways.pop(tag, missing)
            if dirty is not missing:
                # Hit: reinsert to move the tag to most-recent.
                ways[tag] = dirty or is_write
                continue
            misses += 1
            if is_write:
                write_misses += 1
            if len(ways) == l1_assoc:
                victim_tag = next(iter(ways))
                victim_dirty = ways.pop(victim_tag)
                replacements += 1
                if victim_dirty:
                    write_backs += 1
                    # Dirty L1 victim is written back into the L2.
                    l2_access(victim_tag * l1_num_sets + set_index, True)
            ways[tag] = is_write
            # The fill itself reads the block from L2.
            l2_access(block, False)

        self._l1_misses += misses
        self._l1_write_misses += write_misses
        self._l1_replacements += replacements
        self._l1_write_backs += write_backs

    def _l2_access(self, block: int, is_write: bool) -> None:
        self._l2_accesses += 1
        if is_write:
            self._l2_write_accesses += 1
        self.l2_stats.footprint_blocks.add(block)
        num_sets = self.l2_config.num_sets
        set_index = block % num_sets
        tag = block // num_sets
        ways = self._l2_sets[set_index]
        dirty = ways.pop(tag, _MISSING)
        if dirty is not _MISSING:
            ways[tag] = dirty or is_write
            return
        self._l2_misses += 1
        if is_write:
            self._l2_write_misses += 1
        if len(ways) == self.l2_config.associativity:
            victim_dirty = ways.pop(next(iter(ways)))
            self._l2_replacements += 1
            if victim_dirty:
                self._l2_write_backs += 1
        ways[tag] = is_write

    # -- stats publication ----------------------------------------------------

    def _publish(self, before) -> None:
        """Fold accumulated tallies into the CacheStats and obs counters.

        Assignment (not accumulation) into the stats objects keeps
        repeated :meth:`run` calls correct. ``before`` holds each level's
        (hits, misses, write_backs) at run start; obs counters receive
        the per-run deltas, so batch totals equal the scalar path's
        per-access increments.
        """
        l1, l2 = self.l1_stats, self.l2_stats

        l1.misses = self._l1_misses
        l1.write_misses = self._l1_write_misses
        l1.read_misses = self._l1_misses - self._l1_write_misses
        l1.replacements = self._l1_replacements
        l1.write_backs = self._l1_write_backs

        l2.accesses = self._l2_accesses
        l2.write_accesses = self._l2_write_accesses
        l2.read_accesses = self._l2_accesses - self._l2_write_accesses
        l2.misses = self._l2_misses
        l2.write_misses = self._l2_write_misses
        l2.read_misses = self._l2_misses - self._l2_write_misses
        l2.replacements = self._l2_replacements
        l2.write_backs = self._l2_write_backs

        registry = obs.active()
        if registry is None:
            return
        for label, stats, (old_hits, old_misses, old_write_backs) in (
            ("l1", l1, before[0]),
            ("l2", l2, before[1]),
        ):
            # Touch every counter even on a zero delta: the scalar cache
            # registers all three at construction, and run manifests must
            # not differ by backend.
            registry.counter(f"cache.{label}.hits").inc(stats.hits - old_hits)
            registry.counter(f"cache.{label}.misses").inc(stats.misses - old_misses)
            registry.counter(f"cache.{label}.write_backs").inc(
                stats.write_backs - old_write_backs
            )


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _expand_blocks(columns: ColumnarTrace, block_size: int):
    """Per-block access streams for one column chunk.

    Returns ``(blocks, writes)`` as plain Python lists: every block each
    request touches, in request order (requests may straddle blocks),
    with the request's write flag repeated per block.
    """
    np = numpy_or_none()
    if np is not None and len(columns):
        addresses = columns.addresses
        sizes = columns.sizes
        if int(addresses.max()) + int(sizes.max()) <= _INT64_MAX:
            addr64 = addresses.astype(np.int64)
            size64 = sizes.astype(np.int64)
            firsts = addr64 // block_size
            lasts = (addr64 + size64 - 1) // block_size
            counts = lasts - firsts + 1
            is_write = columns.ops.astype(bool)
            if int(counts.max()) == 1:
                return firsts.tolist(), is_write.tolist()
            total = int(counts.sum())
            bases = np.repeat(firsts, counts)
            ends_before = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1])
            )
            within = np.arange(total, dtype=np.int64) - np.repeat(ends_before, counts)
            blocks = bases + within
            writes = np.repeat(is_write, counts)
            return blocks.tolist(), writes.tolist()

    blocks: List[int] = []
    writes: List[bool] = []
    append_block = blocks.append
    append_write = writes.append
    for address, op, size in zip(columns.addresses, columns.ops, columns.sizes):
        first = int(address) // block_size
        last = (int(address) + int(size) - 1) // block_size
        is_write = bool(op)
        for block in range(first, last + 1):
            append_block(block)
            append_write(is_write)
    return blocks, writes
