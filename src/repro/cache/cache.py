"""A set-associative, write-back, write-allocate cache (atomic mode).

Matches the paper's Sec. V methodology: gem5 atomic-mode simulation that
"disregards the timestamp feature, focusing only on the order requests
arrive". Statistics cover everything Figs. 14–16 report: miss rate,
replacements, write-backs and footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from .. import obs
from ..core.request import MemoryRequest, Operation
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class CacheConfig:
    size: int  # bytes
    associativity: int
    block_size: int = 64
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.block_size <= 0:
            raise ValueError("size, associativity and block_size must be positive")
        if self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a power of two")
        if self.size % (self.associativity * self.block_size):
            raise ValueError("size must be a multiple of associativity * block_size")

    @property
    def num_sets(self) -> int:
        return self.size // (self.associativity * self.block_size)


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    read_accesses: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    write_misses: int = 0
    replacements: int = 0
    write_backs: int = 0
    footprint_blocks: Set[int] = field(default_factory=set)

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Unique bytes touched, at block granularity."""
        return len(self.footprint_blocks)


@dataclass
class AccessResult:
    """Outcome of a single block access."""

    hit: bool
    writeback_address: Optional[int] = None  # dirty victim block address
    victim_address: Optional[int] = None  # any victim block address


class _Line:
    __slots__ = ("tag", "valid", "dirty")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False


class Cache:
    """One level of a write-back, write-allocate cache."""

    __slots__ = (
        "config",
        "stats",
        "_num_sets",
        "_lines",
        "_policy",
        "_obs",
        "_obs_hits",
        "_obs_misses",
        "_obs_write_backs",
    )

    def __init__(
        self,
        config: CacheConfig,
        policy: Optional[ReplacementPolicy] = None,
        obs_label: str = "cache",
    ):
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        self._lines: List[List[_Line]] = [
            [_Line() for _ in range(config.associativity)] for _ in range(self._num_sets)
        ]
        self._policy = (
            policy
            if policy is not None
            else make_policy(config.replacement, self._num_sets, config.associativity)
        )
        registry = obs.active()
        self._obs = registry
        if registry is not None:
            self._obs_hits = registry.counter(f"cache.{obs_label}.hits")
            self._obs_misses = registry.counter(f"cache.{obs_label}.misses")
            self._obs_write_backs = registry.counter(f"cache.{obs_label}.write_backs")

    def _locate(self, block_address: int):
        set_index = block_address % self._num_sets
        tag = block_address // self._num_sets
        return set_index, tag

    def access_block(self, block_address: int, is_write: bool) -> AccessResult:
        """Access one block; fills on miss, evicting (LRU) if needed."""
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1
        stats.footprint_blocks.add(block_address)

        set_index, tag = self._locate(block_address)
        ways = self._lines[set_index]
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                self._policy.touch(set_index, way)
                line.dirty = line.dirty or is_write
                if self._obs is not None:
                    self._obs_hits.inc()
                return AccessResult(hit=True)

        # Miss: allocate (write-allocate for both reads and writes).
        stats.misses += 1
        if self._obs is not None:
            self._obs_misses.inc()
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        victim_way = None
        for way, line in enumerate(ways):
            if not line.valid:
                victim_way = way
                break
        writeback_address = None
        victim_address = None
        if victim_way is None:
            victim_way = self._policy.victim(set_index)
            victim_line = ways[victim_way]
            victim_address = victim_line.tag * self._num_sets + set_index
            stats.replacements += 1
            if victim_line.dirty:
                stats.write_backs += 1
                writeback_address = victim_address
                if self._obs is not None:
                    self._obs_write_backs.inc()

        line = ways[victim_way]
        line.tag = tag
        line.valid = True
        line.dirty = is_write
        self._policy.touch(set_index, victim_way)
        return AccessResult(
            hit=False, writeback_address=writeback_address, victim_address=victim_address
        )

    def fill_block(self, block_address: int) -> AccessResult:
        """Insert a block without demand-access accounting (prefetch fill).

        Replacements and dirty write-backs are still counted — they are
        real traffic — but hits/misses/footprint are untouched. Filling a
        resident block is a no-op.
        """
        set_index, tag = self._locate(block_address)
        ways = self._lines[set_index]
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                return AccessResult(hit=True)
        victim_way = None
        for way, line in enumerate(ways):
            if not line.valid:
                victim_way = way
                break
        writeback_address = None
        victim_address = None
        if victim_way is None:
            victim_way = self._policy.victim(set_index)
            victim_line = ways[victim_way]
            victim_address = victim_line.tag * self._num_sets + set_index
            self.stats.replacements += 1
            if victim_line.dirty:
                self.stats.write_backs += 1
                writeback_address = victim_address
                if self._obs is not None:
                    self._obs_write_backs.inc()
        line = ways[victim_way]
        line.tag = tag
        line.valid = True
        line.dirty = False
        self._policy.touch(set_index, victim_way)
        return AccessResult(
            hit=False, writeback_address=writeback_address, victim_address=victim_address
        )

    def access(self, request: MemoryRequest) -> List[AccessResult]:
        """Access every block a request touches (requests may straddle blocks)."""
        block_size = self.config.block_size
        first = request.address // block_size
        last = (request.end_address - 1) // block_size
        return [
            self.access_block(block, request.operation is Operation.WRITE)
            for block in range(first, last + 1)
        ]

    def contains(self, block_address: int) -> bool:
        set_index, tag = self._locate(block_address)
        return any(line.valid and line.tag == tag for line in self._lines[set_index])
