"""Cache replacement policies.

The paper's Sec. V experiments use LRU ("a least-recently used
replacement policy"). The policy interface is pluggable so the cache can
also be driven with FIFO or random replacement for extension studies.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Tracks recency metadata for one cache and picks victims.

    Ways are identified by index within a set. ``touch`` is called on
    every hit or fill; ``victim`` must return the way to evict from a
    full set.
    """

    name = "abstract"

    def __init__(self, num_sets: int, associativity: int):
        self.num_sets = num_sets
        self.associativity = associativity

    def touch(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def victim(self, set_index: int) -> int:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the way touched longest ago."""

    name = "lru"

    def __init__(self, num_sets: int, associativity: int):
        super().__init__(num_sets, associativity)
        self._clock = 0
        self._last_touch: List[List[int]] = [
            [-1] * associativity for _ in range(num_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._last_touch[set_index][way] = self._clock

    def victim(self, set_index: int) -> int:
        touches = self._last_touch[set_index]
        return min(range(self.associativity), key=touches.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the way filled longest ago."""

    name = "fifo"

    def __init__(self, num_sets: int, associativity: int):
        super().__init__(num_sets, associativity)
        self._next_way: List[int] = [0] * num_sets

    def touch(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores reuse

    def victim(self, set_index: int) -> int:
        way = self._next_way[set_index]
        self._next_way[set_index] = (way + 1) % self.associativity
        return way


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (deterministic given the seed)."""

    name = "random"

    def __init__(self, num_sets: int, associativity: int, seed: int = 0):
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.associativity)


_POLICIES = {"lru": LRUPolicy, "fifo": FIFOPolicy, "random": RandomPolicy}


def make_policy(name: str, num_sets: int, associativity: int) -> ReplacementPolicy:
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; have {sorted(_POLICIES)}")
    return factory(num_sets, associativity)
