"""Set-associative write-back cache hierarchy (atomic mode)."""

from .cache import AccessResult, Cache, CacheConfig, CacheStats
from .hierarchy import CacheHierarchy, paper_l1_config, paper_l2_config
from .multilevel import MultiLevelCache
from .prefetch import (
    NextLinePrefetcher,
    PrefetchingCache,
    PrefetchStats,
    Prefetcher,
    StridePrefetcher,
)
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "FIFOPolicy",
    "LRUPolicy",
    "MultiLevelCache",
    "NextLinePrefetcher",
    "PrefetchStats",
    "Prefetcher",
    "PrefetchingCache",
    "RandomPolicy",
    "StridePrefetcher",
    "ReplacementPolicy",
    "make_policy",
    "paper_l1_config",
    "paper_l2_config",
]
