"""Event-driven DRAM memory-system model (gem5-minimal-controller style)."""

from .address_map import AddressMap, Burst, DramCoordinates
from .config import DRAMTiming, MemoryConfig
from .controller import MemoryController
from .memory_system import MemorySystem
from .stats import ControllerStats, MemorySystemStats

__all__ = [
    "AddressMap",
    "Burst",
    "ControllerStats",
    "DRAMTiming",
    "DramCoordinates",
    "MemoryConfig",
    "MemoryController",
    "MemorySystem",
    "MemorySystemStats",
]
