"""Memory system configuration (paper Table III + timing parameters).

Defaults mirror Table III: 4 channels, 1 rank per channel, 8 banks per
rank, 32-byte bursts, 32-entry read / 64-entry write queues, write-drain
thresholds at 85% (high) and 50% (low). Timing values are in controller
cycles and follow the relative magnitudes of gem5's DDR3 model; absolute
values differ from the paper's testbed, which affects latencies but not
metric *shapes* (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .chargecache import ChargeCacheConfig


@dataclass(frozen=True)
class DRAMTiming:
    """DRAM timing parameters in controller cycles."""

    t_rp: int = 15  # precharge
    t_rcd: int = 15  # activate (row to column delay)
    t_cl: int = 15  # CAS latency (read data return)
    t_burst: int = 4  # data bus occupancy per burst
    t_rtw: int = 8  # read-to-write bus turnaround
    t_wtr: int = 12  # write-to-read bus turnaround
    # Refresh: every t_refi cycles the whole channel pauses for t_rfc and
    # all rows close. t_refi = 0 disables refresh (the default, matching
    # the short windows of the paper's experiments).
    t_refi: int = 0
    t_rfc: int = 160

    def __post_init__(self) -> None:
        for name in ("t_rp", "t_rcd", "t_cl", "t_burst", "t_rtw", "t_wtr",
                     "t_refi", "t_rfc"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.t_burst <= 0:
            raise ValueError("t_burst must be positive")
        if self.t_refi and self.t_rfc >= self.t_refi:
            raise ValueError("t_rfc must be smaller than t_refi")


@dataclass(frozen=True)
class MemoryConfig:
    """Full memory-system configuration (Table III defaults)."""

    num_channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    burst_size: int = 32  # bytes
    row_size: int = 2048  # bytes per row per bank
    read_queue_size: int = 32  # bursts
    write_queue_size: int = 64  # bursts
    write_high_threshold: float = 0.85
    write_low_threshold: float = 0.50
    page_policy: str = "open_adaptive"  # or "open" (close only on conflict)
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    # Optional ChargeCache (Hassan et al., HPCA 2016) per controller —
    # the extension study the paper's Sec. VI proposes.
    charge_cache: Optional[ChargeCacheConfig] = None
    # Address interleaving: "ch_lo" interleaves channels at burst
    # granularity (default); "ch_hi" places channel bits above the bank.
    address_mapping: str = "ch_lo"

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.ranks_per_channel <= 0:
            raise ValueError("ranks_per_channel must be positive")
        if self.banks_per_rank <= 0:
            raise ValueError("banks_per_rank must be positive")
        if self.burst_size <= 0 or (self.burst_size & (self.burst_size - 1)):
            raise ValueError("burst_size must be a positive power of two")
        if self.row_size % self.burst_size:
            raise ValueError("row_size must be a multiple of burst_size")
        if self.read_queue_size <= 0 or self.write_queue_size <= 0:
            raise ValueError("queue sizes must be positive")
        if not 0.0 < self.write_low_threshold <= self.write_high_threshold <= 1.0:
            raise ValueError("need 0 < low <= high <= 1 for write thresholds")
        if self.page_policy not in ("open", "open_adaptive"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.address_mapping not in ("ch_lo", "ch_hi"):
            raise ValueError(f"unknown address mapping {self.address_mapping!r}")

    @property
    def banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def columns_per_row(self) -> int:
        return self.row_size // self.burst_size

    @property
    def write_high_watermark(self) -> int:
        """Write-queue occupancy that triggers a write drain."""
        return max(1, int(self.write_queue_size * self.write_high_threshold))

    @property
    def write_low_watermark(self) -> int:
        """Write-queue occupancy at which a drain stops."""
        return int(self.write_queue_size * self.write_low_threshold)
