"""ChargeCache: exploiting temporal row-access locality (Hassan et al.,
HPCA 2016).

The paper's Discussion (Sec. VI) singles this out as the kind of memory-
controller optimization Mocktails enables evaluating on heterogeneous
SoCs: "ChargeCache is evaluated for CPU workloads, but Mocktails enables
an evaluation with heterogeneous SoCs to determine if non-CPU devices
also benefit from the design."

Mechanism: a row that was recently closed still holds highly-charged
cells, so re-activating it can use a reduced tRCD. The controller keeps
a small LRU table of recently-closed (bank, row) pairs; entries expire
after the caching duration. An activation that hits a live entry saves
``t_rcd_saving`` cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class ChargeCacheConfig:
    """ChargeCache parameters (per memory controller)."""

    capacity: int = 128  # (bank, row) entries
    expiry_cycles: int = 1_000_000  # caching duration
    t_rcd_saving: int = 8  # activation cycles saved on a hit

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.expiry_cycles <= 0:
            raise ValueError("expiry_cycles must be positive")
        if self.t_rcd_saving < 0:
            raise ValueError("t_rcd_saving must be non-negative")


@dataclass
class ChargeCacheStats:
    lookups: int = 0
    hits: int = 0
    expired: int = 0
    insertions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ChargeCache:
    """An LRU table of recently-closed rows with expiry."""

    def __init__(self, config: ChargeCacheConfig):
        self.config = config
        self.stats = ChargeCacheStats()
        self._entries: "OrderedDict[tuple, int]" = OrderedDict()  # key -> closed_at

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, bank_id: int, row: int, now: int) -> None:
        """Record that (bank, row) was closed at time ``now``."""
        key = (bank_id, row)
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = now
        self.stats.insertions += 1
        while len(self._entries) > self.config.capacity:
            self._entries.popitem(last=False)

    def lookup(self, bank_id: int, row: int, now: int) -> bool:
        """True when the row was closed recently enough to stay charged."""
        self.stats.lookups += 1
        key = (bank_id, row)
        closed_at = self._entries.get(key)
        if closed_at is None:
            return False
        if now - closed_at > self.config.expiry_cycles:
            del self._entries[key]
            self.stats.expired += 1
            return False
        # Refresh LRU position on a hit.
        del self._entries[key]
        self._entries[key] = closed_at
        self.stats.hits += 1
        return True

    @property
    def activation_saving(self) -> int:
        return self.config.t_rcd_saving
