"""Statistics collected by the DRAM model.

Every metric the paper's evaluation reads off the memory controller is
collected here: burst counts (Fig. 6), queue lengths seen by arriving
requests (Figs. 7–8), row hits (Figs. 9–10), reads per turnaround
(Fig. 11), per-bank burst counts (Fig. 12) and memory access latency
(Fig. 13).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


def _mean(counter: Counter) -> float:
    total = sum(counter.values())
    if not total:
        return 0.0
    return sum(value * count for value, count in counter.items()) / total


@dataclass
class ControllerStats:
    """Per-channel memory controller statistics."""

    read_bursts: int = 0
    write_bursts: int = 0
    read_row_hits: int = 0
    write_row_hits: int = 0
    # Queue length observed by each arriving burst (paper Fig. 8:
    # "Queue Length Seen per Request").
    read_queue_len_seen: Counter = field(default_factory=Counter)
    write_queue_len_seen: Counter = field(default_factory=Counter)
    # Bursts serviced per bank (flat bank id -> count), split by op.
    per_bank_reads: Counter = field(default_factory=Counter)
    per_bank_writes: Counter = field(default_factory=Counter)
    # Reads issued between consecutive write drains.
    reads_per_turnaround: List[int] = field(default_factory=list)
    # Refresh windows taken (0 unless t_refi is configured).
    refreshes: int = 0
    # Data-bus occupancy for utilization accounting.
    data_bus_busy_cycles: int = 0
    first_issue_time: int = -1
    last_finish_time: int = 0

    @property
    def bus_utilization(self) -> float:
        """Fraction of the active window the data bus was transferring."""
        if self.first_issue_time < 0:
            return 0.0
        span = self.last_finish_time - self.first_issue_time
        return self.data_bus_busy_cycles / span if span else 1.0

    @property
    def avg_read_queue_length(self) -> float:
        return _mean(self.read_queue_len_seen)

    @property
    def avg_write_queue_length(self) -> float:
        return _mean(self.write_queue_len_seen)

    @property
    def read_row_hit_rate(self) -> float:
        return self.read_row_hits / self.read_bursts if self.read_bursts else 0.0

    @property
    def write_row_hit_rate(self) -> float:
        return self.write_row_hits / self.write_bursts if self.write_bursts else 0.0

    @property
    def avg_reads_per_turnaround(self) -> float:
        if not self.reads_per_turnaround:
            return 0.0
        return sum(self.reads_per_turnaround) / len(self.reads_per_turnaround)


@dataclass
class MemorySystemStats:
    """Aggregated statistics across all channels plus request latencies."""

    channels: List[ControllerStats]
    latency_sum: int = 0
    latency_count: int = 0
    backpressure_delay: int = 0

    @property
    def read_bursts(self) -> int:
        return sum(c.read_bursts for c in self.channels)

    @property
    def write_bursts(self) -> int:
        return sum(c.write_bursts for c in self.channels)

    @property
    def read_row_hits(self) -> int:
        return sum(c.read_row_hits for c in self.channels)

    @property
    def write_row_hits(self) -> int:
        return sum(c.write_row_hits for c in self.channels)

    @property
    def avg_read_queue_length(self) -> float:
        merged: Counter = Counter()
        for channel in self.channels:
            merged.update(channel.read_queue_len_seen)
        return _mean(merged)

    @property
    def avg_write_queue_length(self) -> float:
        merged: Counter = Counter()
        for channel in self.channels:
            merged.update(channel.write_queue_len_seen)
        return _mean(merged)

    @property
    def avg_access_latency(self) -> float:
        return self.latency_sum / self.latency_count if self.latency_count else 0.0

    @property
    def avg_bus_utilization(self) -> float:
        """Mean data-bus utilization across channels (active windows)."""
        utilizations = [c.bus_utilization for c in self.channels]
        return sum(utilizations) / len(utilizations) if utilizations else 0.0

    def total_bytes(self, burst_size: int = 32) -> int:
        """Bytes transferred given the configured burst size."""
        return (self.read_bursts + self.write_bursts) * burst_size

    def per_bank_counts(self, operation: str = "read") -> Dict[int, Counter]:
        """``channel -> Counter(bank -> bursts)`` for reads or writes."""
        if operation not in ("read", "write"):
            raise ValueError("operation must be 'read' or 'write'")
        result = {}
        for index, channel in enumerate(self.channels):
            result[index] = (
                channel.per_bank_reads if operation == "read" else channel.per_bank_writes
            )
        return result

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics, convenient for error comparison."""
        return {
            "read_bursts": self.read_bursts,
            "write_bursts": self.write_bursts,
            "read_row_hits": self.read_row_hits,
            "write_row_hits": self.write_row_hits,
            "avg_read_queue_length": self.avg_read_queue_length,
            "avg_write_queue_length": self.avg_write_queue_length,
            "avg_access_latency": self.avg_access_latency,
        }
