"""Multi-channel memory system front end.

Accepts whole memory requests, splits them into bursts, routes each
burst to its channel's controller and tracks per-request completion so
the average memory access latency (paper Fig. 13) can be reported.
Backpressure — a full read or write queue — delays acceptance; the
accumulated delay is reported back to the caller so coupled synthesis
(paper Sec. III-C, "Simulator Feedback") can shift its timestamps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.request import MemoryRequest
from .address_map import AddressMap
from .config import MemoryConfig
from .controller import MemoryController
from .stats import ControllerStats, MemorySystemStats


class MemorySystem:
    """The paper's Table III memory system: N channels behind one port."""

    def __init__(self, config: Optional[MemoryConfig] = None):
        self.config = config if config is not None else MemoryConfig()
        self.address_map = AddressMap(self.config)
        self.controllers: List[MemoryController] = [
            MemoryController(self.config, channel, on_completion=self._complete_burst)
            for channel in range(self.config.num_channels)
        ]
        self.stats = MemorySystemStats(
            channels=[controller.stats for controller in self.controllers]
        )
        self._next_request_id = 0
        self._outstanding: Dict[int, List[int]] = {}  # id -> [remaining, submit, last_done]
        self._last_presented_time = 0
        self._last_submit_time = 0
        self.last_request_id: Optional[int] = None
        # Optional hook invoked as (request_id, latency) when a request's
        # final burst completes; used for per-device attribution.
        self.on_request_complete = None

    @property
    def last_accept_time(self) -> int:
        """Time the most recent request was accepted (0 if none)."""
        return self._last_submit_time

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        request: MemoryRequest,
        at_time: Optional[int] = None,
        injected_at: Optional[int] = None,
    ) -> int:
        """Present a request to the memory system.

        Requests must be submitted in non-decreasing time order. Returns
        the acceptance time: ``at_time`` unless backpressure (a full
        queue) forced the request to wait for space. ``injected_at``, when
        given, is the time the *device* issued the request (before any
        interconnect latency) and is used for latency accounting.
        """
        presented = request.timestamp if at_time is None else at_time
        if presented < self._last_presented_time:
            raise ValueError(
                f"requests must be submitted in time order "
                f"({presented} < {self._last_presented_time})"
            )
        self._last_presented_time = presented
        # The port is in-order: nothing can be presented to the memory
        # before the previous request was accepted (backpressure).
        time = max(presented, self._last_submit_time)

        request_id = self._next_request_id
        self._next_request_id += 1
        self.last_request_id = request_id
        bursts = self.address_map.split_request(request, request_id)
        # Latency is measured from the device's injection time, so both
        # interconnect traversal and backpressure waiting show up in the
        # average access latency.
        origin = presented if injected_at is None else injected_at
        self._outstanding[request_id] = [len(bursts), origin, 0]

        accept_time = time
        for burst in bursts:
            controller = self.controllers[burst.coordinates.channel]
            controller.service_until(accept_time)
            while controller.queue_full(burst.is_read):
                freed_at = controller.service_one()
                accept_time = max(accept_time, freed_at)
            burst.arrival_time = accept_time
            controller.enqueue(burst)
        delay = accept_time - presented
        self.stats.backpressure_delay += delay
        self._last_submit_time = accept_time
        return accept_time

    def _complete_burst(self, request_id: int, completion_time: int, is_read: bool) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None:  # pragma: no cover - defensive
            return
        entry[0] -= 1
        entry[2] = max(entry[2], completion_time)
        if entry[0] == 0:
            latency = entry[2] - entry[1]
            self.stats.latency_sum += latency
            self.stats.latency_count += 1
            del self._outstanding[request_id]
            if self.on_request_complete is not None:
                self.on_request_complete(request_id, latency)

    def drain(self) -> None:
        """Service every queued burst (call once after the last submit)."""
        for controller in self.controllers:
            controller.drain()

    # -- convenience ----------------------------------------------------------------

    def channel_stats(self, channel: int) -> ControllerStats:
        return self.controllers[channel].stats
