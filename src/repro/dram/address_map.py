"""DRAM address decoding and request-to-burst splitting.

Requests are divided into burst-sized packets to match the DRAM
interface (paper Sec. IV-A, "Read Bursts, Write Bursts"). Each burst is
decoded to a (channel, rank, bank, row, column) coordinate.

The mapping interleaves channels at burst granularity and places the
column below the bank (gem5's ``RoRaBaChCo`` spirit): a sequential
stream walks the columns of one row in one bank — maximizing row hits —
before moving to the next bank.

Two decode paths share the same arithmetic: the scalar
:meth:`AddressMap.decode` / :meth:`AddressMap.split_request` pair the
event loop uses per burst, and the vectorized
:meth:`AddressMap.decode_many` / :meth:`AddressMap.expand_many` pair the
batched replay engine (:mod:`repro.dram.batched`) runs over whole
address columns at once. Both produce identical coordinates for
identical addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.columnar import numpy_or_none
from ..core.request import MemoryRequest, Operation
from .config import MemoryConfig


@dataclass(frozen=True)
class DramCoordinates:
    """Decoded location of one burst."""

    __slots__ = ("channel", "rank", "bank", "row", "column")

    channel: int
    rank: int
    bank: int  # bank index within the rank
    row: int
    column: int

    @property
    def bank_id(self) -> int:
        """Flat bank index within the channel (rank-major)."""
        return self.rank * _BANK_STRIDE + self.bank

    # frozen + __slots__ needs explicit pickle support: the default
    # slot-state restore assigns through the (blocked) __setattr__.
    def __getstate__(self):
        return (self.channel, self.rank, self.bank, self.row, self.column)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


_BANK_STRIDE = 1 << 20  # large constant so bank_id never collides across ranks


@dataclass
class Burst:
    """One burst-sized DRAM packet derived from a memory request.

    ``request_id`` links bursts back to their originating request so the
    memory system can report per-request completion latency. ``bank_id``
    caches ``coordinates.bank_id``, which the controller's scheduler
    reads on every decision.
    """

    __slots__ = (
        "address",
        "operation",
        "coordinates",
        "arrival_time",
        "request_id",
        "bank_id",
    )

    address: int
    operation: Operation
    coordinates: DramCoordinates
    arrival_time: int
    request_id: int

    def __post_init__(self) -> None:
        self.bank_id = self.coordinates.bank_id

    @property
    def is_read(self) -> bool:
        return self.operation is Operation.READ


class DecodedBursts:
    """Column-wise decode of a burst address column (numpy int64 arrays).

    The vectorized twin of :class:`DramCoordinates`: parallel arrays of
    channel, rank, bank, row, column and the flat ``bank_id``, one entry
    per input address. Values equal :meth:`AddressMap.decode` element
    for element.
    """

    __slots__ = ("channel", "rank", "bank", "row", "column", "bank_id")

    def __init__(self, channel, rank, bank, row, column, bank_id) -> None:
        self.channel = channel
        self.rank = rank
        self.bank = bank
        self.row = row
        self.column = column
        self.bank_id = bank_id


class BurstColumns:
    """Vectorized request→burst expansion over address/size columns.

    ``request_index[k]`` is the request owning burst ``k``;
    ``addresses[k]`` is the aligned burst address; ``offsets`` has one
    entry per request plus a terminator, so request ``i`` owns bursts
    ``offsets[i]:offsets[i+1]``. Burst order equals the scalar
    :meth:`AddressMap.split_request` order over the request sequence.
    """

    __slots__ = ("request_index", "addresses", "offsets")

    def __init__(self, request_index, addresses, offsets) -> None:
        self.request_index = request_index
        self.addresses = addresses
        self.offsets = offsets

    def __len__(self) -> int:
        return len(self.addresses)


class AddressMap:
    """Decodes byte addresses into DRAM coordinates for a configuration."""

    __slots__ = ("config",)

    def __init__(self, config: MemoryConfig):
        self.config = config

    def decode(self, address: int) -> DramCoordinates:
        """Decode the burst containing ``address``."""
        config = self.config
        burst_number = address // config.burst_size
        if config.address_mapping == "ch_lo":
            # Channels interleaved at burst granularity (default).
            channel = burst_number % config.num_channels
            rest = burst_number // config.num_channels
        else:
            # "ch_hi": channel bits above the bank — contiguous memory
            # stays on one channel for a whole bank sweep.
            rest = burst_number
            channel = 0  # placed after bank/rank decode below
        column = rest % config.columns_per_row
        rest //= config.columns_per_row
        bank = rest % config.banks_per_rank
        rest //= config.banks_per_rank
        rank = rest % config.ranks_per_channel
        rest //= config.ranks_per_channel
        if config.address_mapping == "ch_hi":
            channel = rest % config.num_channels
            rest //= config.num_channels
        row = rest
        return DramCoordinates(channel, rank, bank, row, column)

    def decode_many(self, addresses) -> DecodedBursts:
        """Vectorized :meth:`decode` over a whole address column.

        ``addresses`` is a numpy ``uint64`` (or int64) array of byte
        addresses; the result holds ``int64`` coordinate columns equal
        to the scalar decode element for element. Requires numpy.
        """
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("decode_many requires numpy")
        config = self.config
        addresses = np.asarray(addresses, dtype=np.uint64)
        burst_number = addresses // np.uint64(config.burst_size)
        if config.address_mapping == "ch_lo":
            channel = burst_number % np.uint64(config.num_channels)
            rest = burst_number // np.uint64(config.num_channels)
        else:
            rest = burst_number
            channel = None  # placed after bank/rank decode below
        column = rest % np.uint64(config.columns_per_row)
        rest = rest // np.uint64(config.columns_per_row)
        bank = rest % np.uint64(config.banks_per_rank)
        rest = rest // np.uint64(config.banks_per_rank)
        rank = rest % np.uint64(config.ranks_per_channel)
        rest = rest // np.uint64(config.ranks_per_channel)
        if config.address_mapping == "ch_hi":
            channel = rest % np.uint64(config.num_channels)
            rest = rest // np.uint64(config.num_channels)
        row = rest
        channel = channel.astype(np.int64)
        rank = rank.astype(np.int64)
        bank = bank.astype(np.int64)
        return DecodedBursts(
            channel=channel,
            rank=rank,
            bank=bank,
            row=row.astype(np.int64),
            column=column.astype(np.int64),
            bank_id=rank * _BANK_STRIDE + bank,
        )

    def expand_many(self, addresses, sizes) -> BurstColumns:
        """Vectorized :meth:`split_request` over address/size columns.

        Returns the aligned burst addresses of every request in order,
        with the owning request index per burst — the columnar twin of
        building per-request ``Burst`` lists. Requires numpy.
        """
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("expand_many requires numpy")
        burst_size = self.config.burst_size
        addresses = np.asarray(addresses, dtype=np.uint64)
        sizes = np.asarray(sizes, dtype=np.uint64)
        first = addresses // np.uint64(burst_size)
        last = (addresses + sizes - np.uint64(1)) // np.uint64(burst_size)
        counts = (last - first + np.uint64(1)).astype(np.int64)
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        request_index = np.repeat(
            np.arange(len(counts), dtype=np.int64), counts
        )
        position = np.arange(int(offsets[-1]), dtype=np.int64) - offsets[request_index]
        burst_number = first[request_index] + position.astype(np.uint64)
        return BurstColumns(
            request_index=request_index,
            addresses=burst_number * np.uint64(burst_size),
            offsets=offsets,
        )

    def split_request(self, request: MemoryRequest, request_id: int) -> List[Burst]:
        """Split a request into aligned bursts covering its byte range."""
        config = self.config
        first = request.address // config.burst_size
        last = (request.end_address - 1) // config.burst_size
        bursts = []
        for burst_number in range(first, last + 1):
            address = burst_number * config.burst_size
            bursts.append(
                Burst(
                    address=address,
                    operation=request.operation,
                    coordinates=self.decode(address),
                    arrival_time=request.timestamp,
                    request_id=request_id,
                )
            )
        return bursts
