"""DRAM address decoding and request-to-burst splitting.

Requests are divided into burst-sized packets to match the DRAM
interface (paper Sec. IV-A, "Read Bursts, Write Bursts"). Each burst is
decoded to a (channel, rank, bank, row, column) coordinate.

The mapping interleaves channels at burst granularity and places the
column below the bank (gem5's ``RoRaBaChCo`` spirit): a sequential
stream walks the columns of one row in one bank — maximizing row hits —
before moving to the next bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.request import MemoryRequest, Operation
from .config import MemoryConfig


@dataclass(frozen=True)
class DramCoordinates:
    """Decoded location of one burst."""

    __slots__ = ("channel", "rank", "bank", "row", "column")

    channel: int
    rank: int
    bank: int  # bank index within the rank
    row: int
    column: int

    @property
    def bank_id(self) -> int:
        """Flat bank index within the channel (rank-major)."""
        return self.rank * _BANK_STRIDE + self.bank

    # frozen + __slots__ needs explicit pickle support: the default
    # slot-state restore assigns through the (blocked) __setattr__.
    def __getstate__(self):
        return (self.channel, self.rank, self.bank, self.row, self.column)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


_BANK_STRIDE = 1 << 20  # large constant so bank_id never collides across ranks


@dataclass
class Burst:
    """One burst-sized DRAM packet derived from a memory request.

    ``request_id`` links bursts back to their originating request so the
    memory system can report per-request completion latency. ``bank_id``
    caches ``coordinates.bank_id``, which the controller's scheduler
    reads on every decision.
    """

    __slots__ = (
        "address",
        "operation",
        "coordinates",
        "arrival_time",
        "request_id",
        "bank_id",
    )

    address: int
    operation: Operation
    coordinates: DramCoordinates
    arrival_time: int
    request_id: int

    def __post_init__(self) -> None:
        self.bank_id = self.coordinates.bank_id

    @property
    def is_read(self) -> bool:
        return self.operation is Operation.READ


class AddressMap:
    """Decodes byte addresses into DRAM coordinates for a configuration."""

    __slots__ = ("config",)

    def __init__(self, config: MemoryConfig):
        self.config = config

    def decode(self, address: int) -> DramCoordinates:
        """Decode the burst containing ``address``."""
        config = self.config
        burst_number = address // config.burst_size
        if config.address_mapping == "ch_lo":
            # Channels interleaved at burst granularity (default).
            channel = burst_number % config.num_channels
            rest = burst_number // config.num_channels
        else:
            # "ch_hi": channel bits above the bank — contiguous memory
            # stays on one channel for a whole bank sweep.
            rest = burst_number
            channel = 0  # placed after bank/rank decode below
        column = rest % config.columns_per_row
        rest //= config.columns_per_row
        bank = rest % config.banks_per_rank
        rest //= config.banks_per_rank
        rank = rest % config.ranks_per_channel
        rest //= config.ranks_per_channel
        if config.address_mapping == "ch_hi":
            channel = rest % config.num_channels
            rest //= config.num_channels
        row = rest
        return DramCoordinates(channel, rank, bank, row, column)

    def split_request(self, request: MemoryRequest, request_id: int) -> List[Burst]:
        """Split a request into aligned bursts covering its byte range."""
        config = self.config
        first = request.address // config.burst_size
        last = (request.end_address - 1) // config.burst_size
        bursts = []
        for burst_number in range(first, last + 1):
            address = burst_number * config.burst_size
            bursts.append(
                Burst(
                    address=address,
                    operation=request.operation,
                    coordinates=self.decode(address),
                    arrival_time=request.timestamp,
                    request_id=request_id,
                )
            )
        return bursts
