"""Event-driven DRAM memory controller.

Implements the gem5 minimal-controller semantics the paper's evaluation
relies on (Hansson et al. [17], paper Sec. IV-A):

* separate read and write queues holding burst-sized packets;
* FR-FCFS scheduling (first ready — i.e. row hit — first come first
  served) over the active queue;
* an open-adaptive page policy: after a column access the row stays
  open only if another queued burst targets the same row of that bank,
  otherwise it is precharged;
* write-drain mode: writes are buffered until the write queue reaches
  the high watermark (85%), then drained down to the low watermark
  (50%) — or serviced opportunistically when no reads are pending;
* read/write bus turnaround penalties.

The model is event-driven rather than cycle-ticked: each controller
tracks when its data bus and banks become free and issues one burst per
scheduling decision. That preserves every metric the paper reports
(row hits, queue occupancies, turnarounds, per-bank counts, latency)
at a fraction of the cost of a cycle-accurate loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, Optional, Tuple

from .. import obs
from .address_map import Burst
from .config import MemoryConfig
from .stats import ControllerStats

# A completion callback receives (request_id, completion_time, is_read).
CompletionCallback = Callable[[int, int, bool], None]


class _BankState:
    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0  # earliest time the next column access may start


class _BurstQueue:
    """FCFS burst queue with a per-(bank, row) index for FR-FCFS.

    Bursts must be enqueued in nondecreasing ``arrival_time`` order (the
    memory system accepts requests in time order), so the FIFO-oldest
    entry is also the earliest arrival — making the earliest-arrival
    lookup O(1) instead of a ``min()`` scan per scheduling decision.

    ``_entries`` maps a monotonically increasing sequence number to the
    queued burst (dict order == FIFO order; entries are only ever
    deleted, never reordered). ``_by_row`` maps (bank_id, row) to the
    sequence numbers of queued bursts targeting that row, so row-hit
    searches touch only the banks that currently hold an open row
    instead of scanning the whole queue. Because FR-FCFS only ever pops
    either a row-index head or the FIFO-oldest entry, popped sequence
    numbers are cleaned from their row deque eagerly and the index never
    accumulates stale entries beyond the live queue.
    """

    __slots__ = ("_entries", "_by_row", "_next_seq", "_last_arrival")

    def __init__(self) -> None:
        self._entries: Dict[int, Burst] = {}
        self._by_row: Dict[Tuple[int, int], Deque[int]] = {}
        self._next_seq = 0
        self._last_arrival = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Burst]:
        return iter(self._entries.values())

    def append(self, burst: Burst) -> None:
        arrival = burst.arrival_time
        if arrival < self._last_arrival:
            raise ValueError(
                f"bursts must be enqueued in arrival order "
                f"({arrival} < {self._last_arrival})"
            )
        self._last_arrival = arrival
        seq = self._next_seq
        self._next_seq = seq + 1
        self._entries[seq] = burst
        key = (burst.bank_id, burst.coordinates.row)
        row_queue = self._by_row.get(key)
        if row_queue is None:
            self._by_row[key] = deque((seq,))
        else:
            row_queue.append(seq)

    def oldest_seq(self) -> Optional[int]:
        """Sequence number of the FIFO-oldest queued burst."""
        if not self._entries:
            return None
        return next(iter(self._entries))

    def earliest_arrival(self) -> int:
        """Arrival time of the oldest queued burst (queue must be non-empty)."""
        return self._entries[next(iter(self._entries))].arrival_time

    def burst(self, seq: int) -> Burst:
        return self._entries[seq]

    def first_for_row(self, bank_id: int, row: int) -> Optional[int]:
        """Sequence number of the oldest queued burst hitting (bank, row)."""
        key = (bank_id, row)
        row_queue = self._by_row.get(key)
        if row_queue is None:
            return None
        entries = self._entries
        while row_queue and row_queue[0] not in entries:
            row_queue.popleft()
        if not row_queue:
            del self._by_row[key]
            return None
        return row_queue[0]

    def has_row(self, bank_id: int, row: int) -> bool:
        return self.first_for_row(bank_id, row) is not None

    def pop(self, seq: int) -> Burst:
        burst = self._entries.pop(seq)
        key = (burst.bank_id, burst.coordinates.row)
        row_queue = self._by_row.get(key)
        if row_queue is not None:
            entries = self._entries
            while row_queue and row_queue[0] not in entries:
                row_queue.popleft()
            if not row_queue:
                del self._by_row[key]
        return burst


@dataclass
class MemoryController:
    """One channel's memory controller."""

    config: MemoryConfig
    channel: int
    on_completion: Optional[CompletionCallback] = None

    stats: ControllerStats = field(default_factory=ControllerStats)

    def __post_init__(self) -> None:
        from .chargecache import ChargeCache

        self._read_queue = _BurstQueue()
        self._write_queue = _BurstQueue()
        self._banks: Dict[int, _BankState] = {}
        self._bus_free_at = 0
        self._last_was_write: Optional[bool] = None
        self._draining_writes = False
        self._reads_since_turnaround = 0
        self.charge_cache = (
            ChargeCache(self.config.charge_cache)
            if self.config.charge_cache is not None
            else None
        )
        timing = self.config.timing
        self._next_refresh_at: Optional[int] = timing.t_refi or None
        # Observability: capture the active registry once; all hot-path
        # sites reduce to one `is None` test when observability is off.
        registry = obs.active()
        self._obs = registry
        if registry is not None:
            prefix = f"dram.ch{self.channel}"
            self._obs_enqueued = registry.counter("dram.enqueued")
            self._obs_issued = registry.counter("dram.issued")
            self._obs_row_hits = registry.counter("dram.row_hits")
            self._obs_read_depth = registry.histogram(f"{prefix}.read_queue_depth")
            self._obs_write_depth = registry.histogram(f"{prefix}.write_queue_depth")

    # -- queue interface -------------------------------------------------------

    @property
    def read_queue_length(self) -> int:
        return len(self._read_queue)

    @property
    def write_queue_length(self) -> int:
        return len(self._write_queue)

    @property
    def pending(self) -> int:
        return len(self._read_queue) + len(self._write_queue)

    def queue_full(self, is_read: bool) -> bool:
        if is_read:
            return len(self._read_queue) >= self.config.read_queue_size
        return len(self._write_queue) >= self.config.write_queue_size

    def enqueue(self, burst: Burst) -> None:
        """Add an arriving burst, recording the queue length it observes."""
        if self.queue_full(burst.is_read):
            raise RuntimeError("enqueue on a full queue; call service first")
        if burst.is_read:
            self.stats.read_queue_len_seen[len(self._read_queue)] += 1
            self._read_queue.append(burst)
        else:
            self.stats.write_queue_len_seen[len(self._write_queue)] += 1
            self._write_queue.append(burst)
        registry = self._obs
        if registry is not None:
            self._obs_enqueued.inc()
            if burst.is_read:
                self._obs_read_depth.observe(len(self._read_queue))
            else:
                self._obs_write_depth.observe(len(self._write_queue))
            if registry.sink is not None:
                registry.event(
                    "dram.enqueue",
                    channel=self.channel,
                    bank=burst.bank_id,
                    row=burst.coordinates.row,
                    is_read=burst.is_read,
                    arrival=burst.arrival_time,
                    read_queue=len(self._read_queue),
                    write_queue=len(self._write_queue),
                )

    # -- scheduling ------------------------------------------------------------

    def _bank(self, burst: Burst) -> _BankState:
        bank = self._banks.get(burst.bank_id)
        if bank is None:
            self._banks[burst.bank_id] = bank = _BankState()
        return bank

    def _choose_direction(self) -> Optional[bool]:
        """Pick the queue to service next; returns is_write or None if idle."""
        if self._draining_writes:
            drained_enough = len(self._write_queue) <= self.config.write_low_watermark
            if not self._write_queue or (drained_enough and self._read_queue):
                self._draining_writes = False
            else:
                return True
        if len(self._write_queue) >= self.config.write_high_watermark:
            # High watermark reached: switch to writes even if reads wait.
            self._start_write_drain()
            return True
        if self._read_queue:
            return False
        if self._write_queue:
            # No reads pending: drain writes opportunistically.
            self._start_write_drain()
            return True
        return None

    def _start_write_drain(self) -> None:
        if not self._draining_writes:
            self._draining_writes = True
            self.stats.reads_per_turnaround.append(self._reads_since_turnaround)
            self._reads_since_turnaround = 0

    def _pick_burst(self, queue: _BurstQueue, decision_time: int) -> Optional[int]:
        """FR-FCFS: first arrived row-hit, else the oldest arrived burst.

        Returns the chosen burst's queue sequence number. Instead of
        scanning the queue, the row-hit search consults the queue's
        (bank, row) index for each bank that holds an open row — at most
        one candidate per bank. Because bursts arrive in FIFO order, the
        earliest row-hit candidate being un-arrived means every row-hit
        is un-arrived, and the FIFO-oldest entry is the oldest arrival.
        """
        best: Optional[int] = None
        for bank_id, bank in self._banks.items():
            if bank.open_row is None:
                continue
            seq = queue.first_for_row(bank_id, bank.open_row)
            if seq is not None and (best is None or seq < best):
                best = seq
        if best is not None and queue.burst(best).arrival_time <= decision_time:
            return best
        oldest = queue.oldest_seq()
        if oldest is not None and queue.burst(oldest).arrival_time <= decision_time:
            return oldest
        return None

    def _next_decision_time(self, queue: _BurstQueue) -> int:
        return max(self._bus_free_at, queue.earliest_arrival())

    def _apply_refresh(self, decision_time: int) -> int:
        """Stall for any refresh windows that expire before ``decision_time``."""
        timing = self.config.timing
        while self._next_refresh_at is not None and decision_time >= self._next_refresh_at:
            refresh_end = self._next_refresh_at + timing.t_rfc
            for bank in self._banks.values():
                bank.open_row = None  # refresh closes every row
                bank.ready_at = max(bank.ready_at, refresh_end)
            self._bus_free_at = max(self._bus_free_at, refresh_end)
            decision_time = max(decision_time, refresh_end)
            self._next_refresh_at += timing.t_refi
            self.stats.refreshes += 1
        return decision_time

    def _issue(self, queue: _BurstQueue, seq: int, decision_time: int) -> int:
        """Issue one burst; returns the time the data transfer finishes."""
        timing = self.config.timing
        decision_time = self._apply_refresh(decision_time)
        burst = queue.pop(seq)
        bank = self._bank(burst)
        row = burst.coordinates.row
        row_hit = bank.open_row == row

        start = max(decision_time, bank.ready_at)
        if self._last_was_write is not None and self._last_was_write != (not burst.is_read):
            penalty = timing.t_wtr if self._last_was_write else timing.t_rtw
            start = max(start, self._bus_free_at + penalty)
        if not row_hit:
            if bank.open_row is not None:
                start += timing.t_rp
                self._record_row_close(burst.bank_id, bank.open_row, start)
            activation = timing.t_rcd
            if self.charge_cache is not None and self.charge_cache.lookup(
                burst.bank_id, row, start
            ):
                # Recently-closed row still holds charge: faster activate.
                activation = max(0, activation - self.charge_cache.activation_saving)
            start += activation

        finish = start + timing.t_burst
        self._bus_free_at = finish
        self._last_was_write = not burst.is_read
        bank.open_row = row
        bank.ready_at = finish

        # Open-adaptive page policy: keep the row open only when another
        # queued burst will hit it; otherwise precharge right away.
        if self.config.page_policy == "open_adaptive" and not self._has_pending_row_hit(
            burst.bank_id, row
        ):
            bank.open_row = None
            bank.ready_at = finish + timing.t_rp
            self._record_row_close(burst.bank_id, row, finish + timing.t_rp)

        completion = finish + (timing.t_cl if burst.is_read else 0)
        self._record_issue(burst, row_hit)
        if self.on_completion is not None:
            self.on_completion(burst.request_id, completion, burst.is_read)
        return finish

    def _record_row_close(self, bank_id: int, row: int, now: int) -> None:
        if self.charge_cache is not None:
            self.charge_cache.insert(bank_id, row, now)

    def _has_pending_row_hit(self, bank_id: int, row: int) -> bool:
        return self._read_queue.has_row(bank_id, row) or self._write_queue.has_row(
            bank_id, row
        )

    def _record_issue(self, burst: Burst, row_hit: bool) -> None:
        stats = self.stats
        timing = self.config.timing
        if stats.first_issue_time < 0:
            stats.first_issue_time = self._bus_free_at - timing.t_burst
        stats.last_finish_time = self._bus_free_at
        stats.data_bus_busy_cycles += timing.t_burst
        bank_id = burst.bank_id
        if burst.is_read:
            stats.read_bursts += 1
            stats.read_row_hits += row_hit
            stats.per_bank_reads[bank_id] += 1
            self._reads_since_turnaround += 1
        else:
            stats.write_bursts += 1
            stats.write_row_hits += row_hit
            stats.per_bank_writes[bank_id] += 1
        registry = self._obs
        if registry is not None:
            self._obs_issued.inc()
            if row_hit:
                self._obs_row_hits.inc()
            if registry.sink is not None:
                registry.event(
                    "dram.issue",
                    channel=self.channel,
                    bank=bank_id,
                    is_read=burst.is_read,
                    row_hit=bool(row_hit),
                    finish=self._bus_free_at,
                )

    # -- driving ---------------------------------------------------------------

    def service_until(self, time_limit: int) -> None:
        """Issue every burst whose scheduling decision falls before ``time_limit``."""
        while self.pending:
            direction = self._choose_direction()
            if direction is None:
                return
            queue = self._write_queue if direction else self._read_queue
            decision_time = self._next_decision_time(queue)
            if decision_time >= time_limit:
                return
            seq = self._pick_burst(queue, decision_time)
            if seq is None:
                # Nothing in the active queue has arrived yet; re-evaluate at
                # the earliest arrival (handled by decision_time), so this
                # only happens when time_limit cuts in between.
                return
            self._issue(queue, seq, decision_time)

    def service_one(self) -> int:
        """Issue exactly one burst regardless of time (backpressure relief).

        Returns the time the issued burst's data transfer finishes.
        """
        direction = self._choose_direction()
        if direction is None:
            raise RuntimeError("service_one called with empty queues")
        queue = self._write_queue if direction else self._read_queue
        decision_time = self._next_decision_time(queue)
        seq = self._pick_burst(queue, decision_time)
        assert seq is not None  # decision_time >= some arrival by construction
        return self._issue(queue, seq, decision_time)

    def drain(self) -> None:
        """Service everything that is still queued."""
        registry = self._obs
        if registry is not None and registry.sink is not None and self.pending:
            registry.event("dram.drain", channel=self.channel, pending=self.pending)
        while self.pending:
            self.service_one()
