"""Event-driven DRAM memory controller.

Implements the gem5 minimal-controller semantics the paper's evaluation
relies on (Hansson et al. [17], paper Sec. IV-A):

* separate read and write queues holding burst-sized packets;
* FR-FCFS scheduling (first ready — i.e. row hit — first come first
  served) over the active queue;
* an open-adaptive page policy: after a column access the row stays
  open only if another queued burst targets the same row of that bank,
  otherwise it is precharged;
* write-drain mode: writes are buffered until the write queue reaches
  the high watermark (85%), then drained down to the low watermark
  (50%) — or serviced opportunistically when no reads are pending;
* read/write bus turnaround penalties.

The model is event-driven rather than cycle-ticked: each controller
tracks when its data bus and banks become free and issues one burst per
scheduling decision. That preserves every metric the paper reports
(row hits, queue occupancies, turnarounds, per-bank counts, latency)
at a fraction of the cost of a cycle-accurate loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .address_map import Burst
from .config import MemoryConfig
from .stats import ControllerStats

# A completion callback receives (request_id, completion_time, is_read).
CompletionCallback = Callable[[int, int, bool], None]


@dataclass
class _BankState:
    open_row: Optional[int] = None
    ready_at: int = 0  # earliest time the next column access may start


@dataclass
class MemoryController:
    """One channel's memory controller."""

    config: MemoryConfig
    channel: int
    on_completion: Optional[CompletionCallback] = None

    stats: ControllerStats = field(default_factory=ControllerStats)

    def __post_init__(self) -> None:
        from .chargecache import ChargeCache

        self._read_queue: List[Burst] = []
        self._write_queue: List[Burst] = []
        self._banks: Dict[int, _BankState] = {}
        self._bus_free_at = 0
        self._last_was_write: Optional[bool] = None
        self._draining_writes = False
        self._reads_since_turnaround = 0
        self.charge_cache = (
            ChargeCache(self.config.charge_cache)
            if self.config.charge_cache is not None
            else None
        )
        timing = self.config.timing
        self._next_refresh_at: Optional[int] = timing.t_refi or None

    # -- queue interface -------------------------------------------------------

    @property
    def read_queue_length(self) -> int:
        return len(self._read_queue)

    @property
    def write_queue_length(self) -> int:
        return len(self._write_queue)

    @property
    def pending(self) -> int:
        return len(self._read_queue) + len(self._write_queue)

    def queue_full(self, is_read: bool) -> bool:
        if is_read:
            return len(self._read_queue) >= self.config.read_queue_size
        return len(self._write_queue) >= self.config.write_queue_size

    def enqueue(self, burst: Burst) -> None:
        """Add an arriving burst, recording the queue length it observes."""
        if self.queue_full(burst.is_read):
            raise RuntimeError("enqueue on a full queue; call service first")
        if burst.is_read:
            self.stats.read_queue_len_seen[len(self._read_queue)] += 1
            self._read_queue.append(burst)
        else:
            self.stats.write_queue_len_seen[len(self._write_queue)] += 1
            self._write_queue.append(burst)

    # -- scheduling ------------------------------------------------------------

    def _bank(self, burst: Burst) -> _BankState:
        return self._banks.setdefault(burst.coordinates.bank_id, _BankState())

    def _choose_direction(self) -> Optional[bool]:
        """Pick the queue to service next; returns is_write or None if idle."""
        if self._draining_writes:
            drained_enough = len(self._write_queue) <= self.config.write_low_watermark
            if not self._write_queue or (drained_enough and self._read_queue):
                self._draining_writes = False
            else:
                return True
        if len(self._write_queue) >= self.config.write_high_watermark:
            # High watermark reached: switch to writes even if reads wait.
            self._start_write_drain()
            return True
        if self._read_queue:
            return False
        if self._write_queue:
            # No reads pending: drain writes opportunistically.
            self._start_write_drain()
            return True
        return None

    def _start_write_drain(self) -> None:
        if not self._draining_writes:
            self._draining_writes = True
            self.stats.reads_per_turnaround.append(self._reads_since_turnaround)
            self._reads_since_turnaround = 0

    def _pick_burst(self, queue: List[Burst], decision_time: int) -> Optional[int]:
        """FR-FCFS: first arrived row-hit, else the oldest arrived burst."""
        oldest: Optional[int] = None
        for index, burst in enumerate(queue):
            if burst.arrival_time > decision_time:
                continue
            if oldest is None:
                oldest = index
            bank = self._banks.get(burst.coordinates.bank_id)
            if bank is not None and bank.open_row == burst.coordinates.row:
                return index
        return oldest

    def _next_decision_time(self, queue: List[Burst]) -> int:
        earliest_arrival = min(burst.arrival_time for burst in queue)
        return max(self._bus_free_at, earliest_arrival)

    def _apply_refresh(self, decision_time: int) -> int:
        """Stall for any refresh windows that expire before ``decision_time``."""
        timing = self.config.timing
        while self._next_refresh_at is not None and decision_time >= self._next_refresh_at:
            refresh_end = self._next_refresh_at + timing.t_rfc
            for bank in self._banks.values():
                bank.open_row = None  # refresh closes every row
                bank.ready_at = max(bank.ready_at, refresh_end)
            self._bus_free_at = max(self._bus_free_at, refresh_end)
            decision_time = max(decision_time, refresh_end)
            self._next_refresh_at += timing.t_refi
            self.stats.refreshes += 1
        return decision_time

    def _issue(self, queue: List[Burst], index: int, decision_time: int) -> int:
        """Issue one burst; returns the time the data transfer finishes."""
        timing = self.config.timing
        decision_time = self._apply_refresh(decision_time)
        burst = queue.pop(index)
        bank = self._bank(burst)
        row = burst.coordinates.row
        row_hit = bank.open_row == row

        start = max(decision_time, bank.ready_at)
        if self._last_was_write is not None and self._last_was_write != (not burst.is_read):
            penalty = timing.t_wtr if self._last_was_write else timing.t_rtw
            start = max(start, self._bus_free_at + penalty)
        if not row_hit:
            if bank.open_row is not None:
                start += timing.t_rp
                self._record_row_close(burst.coordinates.bank_id, bank.open_row, start)
            activation = timing.t_rcd
            if self.charge_cache is not None and self.charge_cache.lookup(
                burst.coordinates.bank_id, row, start
            ):
                # Recently-closed row still holds charge: faster activate.
                activation = max(0, activation - self.charge_cache.activation_saving)
            start += activation

        finish = start + timing.t_burst
        self._bus_free_at = finish
        self._last_was_write = not burst.is_read
        bank.open_row = row
        bank.ready_at = finish

        # Open-adaptive page policy: keep the row open only when another
        # queued burst will hit it; otherwise precharge right away.
        if self.config.page_policy == "open_adaptive" and not self._has_pending_row_hit(
            burst.coordinates.bank_id, row
        ):
            bank.open_row = None
            bank.ready_at = finish + timing.t_rp
            self._record_row_close(burst.coordinates.bank_id, row, finish + timing.t_rp)

        completion = finish + (timing.t_cl if burst.is_read else 0)
        self._record_issue(burst, row_hit)
        if self.on_completion is not None:
            self.on_completion(burst.request_id, completion, burst.is_read)
        return finish

    def _record_row_close(self, bank_id: int, row: int, now: int) -> None:
        if self.charge_cache is not None:
            self.charge_cache.insert(bank_id, row, now)

    def _has_pending_row_hit(self, bank_id: int, row: int) -> bool:
        for queue in (self._read_queue, self._write_queue):
            for burst in queue:
                coords = burst.coordinates
                if coords.bank_id == bank_id and coords.row == row:
                    return True
        return False

    def _record_issue(self, burst: Burst, row_hit: bool) -> None:
        stats = self.stats
        timing = self.config.timing
        if stats.first_issue_time < 0:
            stats.first_issue_time = self._bus_free_at - timing.t_burst
        stats.last_finish_time = self._bus_free_at
        stats.data_bus_busy_cycles += timing.t_burst
        bank_id = burst.coordinates.bank_id
        if burst.is_read:
            stats.read_bursts += 1
            stats.read_row_hits += row_hit
            stats.per_bank_reads[bank_id] += 1
            self._reads_since_turnaround += 1
        else:
            stats.write_bursts += 1
            stats.write_row_hits += row_hit
            stats.per_bank_writes[bank_id] += 1

    # -- driving ---------------------------------------------------------------

    def service_until(self, time_limit: int) -> None:
        """Issue every burst whose scheduling decision falls before ``time_limit``."""
        while self.pending:
            direction = self._choose_direction()
            if direction is None:
                return
            queue = self._write_queue if direction else self._read_queue
            decision_time = self._next_decision_time(queue)
            if decision_time >= time_limit:
                return
            index = self._pick_burst(queue, decision_time)
            if index is None:
                # Nothing in the active queue has arrived yet; re-evaluate at
                # the earliest arrival (handled by decision_time), so this
                # only happens when time_limit cuts in between.
                return
            self._issue(queue, index, decision_time)

    def service_one(self) -> int:
        """Issue exactly one burst regardless of time (backpressure relief).

        Returns the time the issued burst's data transfer finishes.
        """
        direction = self._choose_direction()
        if direction is None:
            raise RuntimeError("service_one called with empty queues")
        queue = self._write_queue if direction else self._read_queue
        decision_time = self._next_decision_time(queue)
        index = self._pick_burst(queue, decision_time)
        assert index is not None  # decision_time >= some arrival by construction
        return self._issue(queue, index, decision_time)

    def drain(self) -> None:
        """Service everything that is still queued."""
        while self.pending:
            self.service_one()
