"""Batched open-loop memory-system replay (crossbar + FR-FCFS DRAM).

The scalar replay path (:class:`~repro.interconnect.crossbar.Crossbar`
feeding :class:`~repro.dram.memory_system.MemorySystem`) walks one
request at a time through Python method calls; profiling shows nearly
all of its cost is interpreter overhead — object construction,
per-burst method dispatch, ``_BurstQueue`` bookkeeping — not model
work. This module adds the columnar twin: :class:`BatchedReplay`
consumes :class:`~repro.core.columnar.ColumnarTrace` blocks and
replays them in regimes that are **bit-identical** to the scalar event
loop, field for field on :class:`~repro.dram.stats.MemorySystemStats`.

Epoch contract
--------------

The stream is processed in spans, and each span runs in one of two
tiers:

1. **Quiescent epochs** (every controller fully drained — a request
   arriving after that point starts a new epoch): when each burst is
   provably *alone* in its controller, the open-adaptive policy has
   closed form (every burst a row miss against a precharged bank,
   queue length 0, per-channel finishes follow the max-plus recurrence
   ``finish[k] = max(A[k], finish[k-1] + B[k])``) and whole columns
   commit via one ``cumsum``/``cummax`` scan per channel.
2. **Transcribed replay** everywhere else: a faithful transcription of
   the whole scalar loop — crossbar forward times,
   ``MemorySystem.submit`` (including queue-full backpressure relief)
   and the :class:`~repro.dram.controller.MemoryController` event loop
   (FR-FCFS pick, open-adaptive row retention, write-drain watermarks,
   turnaround records) — over primitive ints, dicts and lists instead
   of ``Burst`` objects and per-burst method dispatch. Backpressure is
   handled inline exactly as the scalar loop handles it, so the
   transcription never diverges and each span commits whole.

Span commits write queues, bank states, flags and statistics back into
the real objects, so both tiers interleave freely with each other and
with the final scalar drain.

Fallback matrix
---------------

The fast path disengages entirely (every request runs scalar) when any
of these hold; results stay identical, only speed changes:

* numpy is unavailable (stdlib ``array`` column store),
* refresh is enabled (``t_refi > 0``),
* a ChargeCache is attached,
* the page policy is not ``open`` or ``open_adaptive``,
* an observability event sink is attached (per-burst events cannot be
  replayed from columns),
* a per-request completion hook is installed on the memory system,
* timestamps exceed the int64 fast-path ceiling.

The tier-1 quiescent scan additionally requires ``open_adaptive`` and
``t_rp <= t_rcd + t_burst`` (the bank-locality argument that keeps its
recurrence first-order); spans failing those run the transcription.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..core.columnar import ColumnarTrace, numpy_or_none
from ..core.request import Operation
from ..interconnect.crossbar import Crossbar, CrossbarConfig
from .address_map import Burst
from .config import MemoryConfig
from .controller import _BankState, _BurstQueue
from .memory_system import MemorySystem
from .stats import MemorySystemStats

#: Minimum requests left in a span to justify a quiescent-scan attempt.
_MIN_ATTEMPT = 64
#: Quiescent commits smaller than this count as a failed attempt.
_MIN_COMMIT = 32
#: Requests to replay before retrying the quiescent scan after a failure.
_COOLDOWN = 256
#: Requests per quiescent-scan window.
_MAX_WINDOW = 65536
#: Requests per transcription span (tier-1 re-check granularity).
_SPAN = 4096
#: Timestamp ceiling for the int64 fast-path arithmetic.
_TIME_CEILING = 1 << 61


def batched_replay_supported(
    config: Optional[MemoryConfig] = None,
    crossbar_config: Optional[CrossbarConfig] = None,
) -> bool:
    """Whether the batched fast path can engage for this setup.

    ``False`` means batched replay would be pure pass-through — callers
    should keep the plain scalar loop. The checks mirror the fallback
    matrix in the module docstring; ``crossbar_config`` imposes no
    constraints today but participates in the signature so dispatch
    sites stay future-proof.
    """
    del crossbar_config  # no crossbar constraints; any latency/gap works
    if numpy_or_none() is None:
        return False
    config = config if config is not None else MemoryConfig()
    if config.timing.t_refi:
        return False
    if config.charge_cache is not None:
        return False
    if config.page_policy not in ("open", "open_adaptive"):
        return False
    registry = obs.active()
    if registry is not None and registry.sink is not None:
        return False
    return True


class BatchedReplay:
    """Open-loop replay engine over column blocks.

    Feed time-ordered :class:`ColumnarTrace` blocks with :meth:`feed`
    (pass ``final=True`` on the last one), then call :meth:`finish` to
    drain and read the statistics. The engine owns a real
    :class:`MemorySystem` + :class:`Crossbar`; every span commit
    writes queues, bank states, flags and statistics back into those
    objects, so fast spans and scalar interop mix seamlessly.
    """

    __slots__ = (
        "memory",
        "crossbar",
        "_np",
        "_fast_ok",
        "_cooldown",
        "_obs",
        "_obs_enqueued",
        "_obs_issued",
        "_obs_row_hits",
        "_obs_forwarded",
        "_obs_delay",
        "_obs_stalls",
        "_obs_stall_cycles",
        "_obs_read_depth",
        "_obs_write_depth",
    )

    def __init__(
        self,
        config: Optional[MemoryConfig] = None,
        crossbar_config: Optional[CrossbarConfig] = None,
    ) -> None:
        self.memory = MemorySystem(config)
        self.crossbar = Crossbar(self.memory, crossbar_config)
        self._np = numpy_or_none()
        self._fast_ok = batched_replay_supported(self.memory.config, self.crossbar.config)
        self._cooldown = 0
        registry = obs.active()
        self._obs = registry if registry is not None and registry.sink is None else None
        if self._obs is not None:
            self._obs_enqueued = registry.counter("dram.enqueued")
            self._obs_issued = registry.counter("dram.issued")
            self._obs_row_hits = registry.counter("dram.row_hits")
            self._obs_forwarded = registry.counter("crossbar.forwarded")
            self._obs_delay = registry.histogram("crossbar.delay_cycles")
            self._obs_stalls = registry.counter("crossbar.stalls")
            self._obs_stall_cycles = registry.counter("crossbar.stall_cycles")
            self._obs_read_depth = [
                registry.histogram(f"dram.ch{c}.read_queue_depth")
                for c in range(self.memory.config.num_channels)
            ]
            self._obs_write_depth = [
                registry.histogram(f"dram.ch{c}.write_queue_depth")
                for c in range(self.memory.config.num_channels)
            ]

    @property
    def stats(self) -> MemorySystemStats:
        return self.memory.stats

    # -- driving ---------------------------------------------------------------

    def feed(self, block: ColumnarTrace, final: bool = False) -> None:
        """Replay one column block (requests in time order).

        ``final=True`` asserts no further blocks follow, which lets the
        quiescent scan certify the last burst per channel instead of
        leaving it to the transcription.
        """
        n = len(block)
        if not n:
            return
        if self._fast_ok and self.memory.on_request_complete is None:
            np = self._np
            ts = np.asarray(block.timestamps, dtype=np.uint64)
            if int(ts.max()) <= _TIME_CEILING:
                self._feed_fast(block, ts.astype(np.int64), final)
                return
        send = self.crossbar.send
        for request in block.iter_requests():
            send(request)

    def finish(self) -> MemorySystemStats:
        """Drain every queued burst and return the system statistics."""
        self.memory.drain()
        return self.memory.stats

    # -- internals -------------------------------------------------------------

    def _feed_fast(self, block: ColumnarTrace, ts, final: bool) -> None:
        np = self._np
        n = len(block)
        address_map = self.memory.address_map
        expand = address_map.expand_many(block.addresses, block.sizes)
        decoded = address_map.decode_many(expand.addresses)
        ops = np.asarray(block.ops, dtype=np.int64)
        burst_write = ops[expand.request_index]
        controllers = self.memory.controllers
        quiescent_ok = (
            self.memory.config.page_policy == "open_adaptive"
            and self.memory.config.timing.t_rp
            <= self.memory.config.timing.t_rcd + self.memory.config.timing.t_burst
        )
        lists = None

        i = 0
        while i < n:
            if (
                quiescent_ok
                and self._cooldown <= 0
                and n - i >= _MIN_ATTEMPT
                and not any(c.pending for c in controllers)
            ):
                committed = self._attempt(
                    i, n, final, ts, expand, decoded.channel, decoded.bank_id,
                    burst_write,
                )
                if committed:
                    i += committed
                    if committed >= _MIN_COMMIT:
                        continue
                self._cooldown = _COOLDOWN
            if lists is None:
                lists = (
                    ts.tolist(),
                    expand.offsets.tolist(),
                    decoded.channel.tolist(),
                    decoded.bank_id.tolist(),
                    decoded.row.tolist(),
                    _tolist(block.ops),
                    expand.addresses,
                )
            end = min(n, i + _SPAN)
            self._run_span(i, end, lists)
            self._cooldown -= end - i
            i = end

    def _forward_times(self, t):
        """Crossbar forward times for a window, assuming no backpressure."""
        np = self._np
        crossbar = self.crossbar
        gap = crossbar.config.min_gap
        steps = np.arange(len(t), dtype=np.int64) * gap
        shifted = (t + crossbar.config.latency) - steps
        carry = crossbar._last_forward_time
        if carry is not None and carry + gap > int(shifted[0]):
            shifted[0] = carry + gap
        return np.maximum.accumulate(shifted) + steps

    # -- tier 2: transcribed replay --------------------------------------------

    def _run_span(self, i, end, lists) -> None:
        """Replay requests [i, end) as a transcription of the scalar loop.

        One pass over the span reproduces, over primitive ints, exactly
        what ``Crossbar.send`` + ``MemorySystem.submit`` + the
        controllers' ``service_until``/``service_one``/``enqueue`` do —
        including queue-full backpressure relief and every statistics
        side effect — then commits the resulting state into the real
        objects. Completion accounting mutates ``memory._outstanding``
        directly (the commit is unconditional, so no rollback is ever
        needed).
        """
        ts_l, off_l, chan_l, bank_l, row_l, ops_l, addresses = lists
        memory = self.memory
        crossbar = self.crossbar
        config = memory.config
        timing = config.timing
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_cl = timing.t_cl
        t_burst = timing.t_burst
        t_rtw = timing.t_rtw
        t_wtr = timing.t_wtr
        adaptive = config.page_policy == "open_adaptive"
        low = config.write_low_watermark
        high = config.write_high_watermark
        read_capacity = config.read_queue_size
        write_capacity = config.write_queue_size
        latency = crossbar.config.latency
        gap = crossbar.config.min_gap
        track = self._obs is not None

        # -- load carried state from the real objects ----------------------
        num_channels = config.num_channels
        controllers = memory.controllers
        banks_l = []
        busf_l = []
        lww_l = []
        drain_l = []
        rs_l = []
        rq_l = []
        wq_l = []
        byr_l = []
        byw_l = []
        rseq_l = []
        wseq_l = []
        for controller in controllers:
            banks_l.append(
                {
                    bank: [state.open_row, state.ready_at]
                    for bank, state in controller._banks.items()
                }
            )
            busf_l.append(controller._bus_free_at)
            lww_l.append(controller._last_was_write)
            drain_l.append(controller._draining_writes)
            rs_l.append(controller._reads_since_turnaround)
            for queue, store_q, store_by, store_seq in (
                (controller._read_queue, rq_l, byr_l, rseq_l),
                (controller._write_queue, wq_l, byw_l, wseq_l),
            ):
                entries = {}
                byrow = {}
                seq = 0
                for burst in queue:
                    row = burst.coordinates.row
                    entries[seq] = (
                        burst.arrival_time, burst.bank_id, row,
                        burst.request_id, burst,
                    )
                    byrow.setdefault((burst.bank_id, row), []).append(seq)
                    seq += 1
                store_q.append(entries)
                store_by.append(byrow)
                store_seq.append(seq)

        nr_l = [0] * num_channels
        nw_l = [0] * num_channels
        rh_l = [0] * num_channels
        wh_l = [0] * num_channels
        turn_l = [[] for _ in range(num_channels)]
        firstst_l = [-1] * num_channels
        lastf_l = [0] * num_channels
        rqseen_l = [{} for _ in range(num_channels)]
        wqseen_l = [{} for _ in range(num_channels)]
        pbr_l = [{} for _ in range(num_channels)]
        pbw_l = [{} for _ in range(num_channels)]
        depr_l = [[0, 0, None, None] for _ in range(num_channels)]
        depw_l = [[0, 0, None, None] for _ in range(num_channels)]

        outstanding = memory._outstanding
        lat = [0, 0]  # latency_sum delta, latency_count delta
        xb = [0, 0, None, None]  # crossbar delay count/total/min/max
        stalls = [0, 0]  # count, cycles
        bp_total = 0
        xb_total = 0
        carry = crossbar._last_forward_time
        last_submit = memory._last_submit_time
        next_id = memory._next_request_id
        presented = memory._last_presented_time

        def service(ch, limit):
            """``service_until(limit)``; ``limit=None`` = ``service_one``.

            Returns the issued burst's finish time in the ``service_one``
            case (the backpressure relief path), else 0.
            """
            banks = banks_l[ch]
            rq = rq_l[ch]
            wq = wq_l[ch]
            byr = byr_l[ch]
            byw = byw_l[ch]
            bus_free = busf_l[ch]
            last_was_write = lww_l[ch]
            draining = drain_l[ch]
            reads_since = rs_l[ch]
            turn = turn_l[ch]
            freed = 0
            while rq or wq:
                # _choose_direction (records turnarounds even when the
                # decision-time check below then cuts the issue off).
                if draining and wq and not (len(wq) <= low and rq):
                    direction = True
                else:
                    draining = False
                    if len(wq) >= high:
                        draining = True
                        turn.append(reads_since)
                        reads_since = 0
                        direction = True
                    elif rq:
                        direction = False
                    elif wq:
                        draining = True
                        turn.append(reads_since)
                        reads_since = 0
                        direction = True
                    else:
                        break
                if direction:
                    entries, byrow = wq, byw
                else:
                    entries, byrow = rq, byr
                earliest = entries[next(iter(entries))][0]
                decision = bus_free if bus_free > earliest else earliest
                if limit is not None and decision >= limit:
                    break
                # _pick_burst: first-arrived row hit, else the FIFO-oldest
                # (whose arrival never exceeds decision, by construction).
                best = None
                for bank_id, bank_state in banks.items():
                    open_row = bank_state[0]
                    if open_row is None:
                        continue
                    key = (bank_id, open_row)
                    row_queue = byrow.get(key)
                    if row_queue is None:
                        continue
                    while row_queue and row_queue[0] not in entries:
                        del row_queue[0]
                    if not row_queue:
                        del byrow[key]
                        continue
                    seq = row_queue[0]
                    if best is None or seq < best:
                        best = seq
                if best is not None and entries[best][0] <= decision:
                    seq = best
                else:
                    seq = next(iter(entries))
                # _issue
                _arrival, bank_id, row, rid, _payload = entries.pop(seq)
                key = (bank_id, row)
                row_queue = byrow.get(key)
                if row_queue is not None:
                    while row_queue and row_queue[0] not in entries:
                        del row_queue[0]
                    if not row_queue:
                        del byrow[key]
                bank_state = banks.get(bank_id)
                if bank_state is None:
                    banks[bank_id] = bank_state = [None, 0]
                row_hit = bank_state[0] == row
                start = decision if decision > bank_state[1] else bank_state[1]
                if last_was_write is not None and last_was_write != direction:
                    stalled = bus_free + (t_wtr if last_was_write else t_rtw)
                    if stalled > start:
                        start = stalled
                if not row_hit:
                    if bank_state[0] is not None:
                        start += t_rp
                    start += t_rcd
                finish = start + t_burst
                bus_free = finish
                last_was_write = direction
                bank_state[0] = row
                bank_state[1] = finish
                if adaptive:
                    # open-adaptive: precharge unless a queued burst
                    # (either queue) still targets this row.
                    pending_hit = False
                    for other_entries, other_byrow in ((rq, byr), (wq, byw)):
                        row_queue = other_byrow.get(key)
                        if row_queue is None:
                            continue
                        while row_queue and row_queue[0] not in other_entries:
                            del row_queue[0]
                        if row_queue:
                            pending_hit = True
                            break
                        del other_byrow[key]
                    if not pending_hit:
                        bank_state[0] = None
                        bank_state[1] = finish + t_rp
                # _record_issue + _complete_burst
                if firstst_l[ch] < 0:
                    firstst_l[ch] = start
                lastf_l[ch] = finish
                if direction:
                    nw_l[ch] += 1
                    wh_l[ch] += row_hit
                    per_bank = pbw_l[ch]
                    completion = finish
                else:
                    nr_l[ch] += 1
                    rh_l[ch] += row_hit
                    per_bank = pbr_l[ch]
                    reads_since += 1
                    completion = finish + t_cl
                per_bank[bank_id] = per_bank.get(bank_id, 0) + 1
                entry = outstanding[rid]
                entry[0] -= 1
                if completion > entry[2]:
                    entry[2] = completion
                if entry[0] == 0:
                    lat[0] += entry[2] - entry[1]
                    lat[1] += 1
                    del outstanding[rid]
                if limit is None:
                    freed = finish
                    break
            busf_l[ch] = bus_free
            lww_l[ch] = last_was_write
            drain_l[ch] = draining
            rs_l[ch] = reads_since
            return freed

        # -- the scalar outer loop: crossbar.send + memory.submit ----------
        for k in range(i, end):
            t_k = ts_l[k]
            forward = t_k + latency
            if carry is not None:
                shifted = carry + gap
                if shifted > forward:
                    forward = shifted
            presented = forward
            accept = presented if presented > last_submit else last_submit
            rid = next_id
            next_id += 1
            first_burst = off_l[k]
            last_burst = off_l[k + 1]
            outstanding[rid] = [last_burst - first_burst, t_k, 0]
            is_write = ops_l[k]
            for j in range(first_burst, last_burst):
                ch = chan_l[j]
                service(ch, accept)
                if is_write:
                    entries = wq_l[ch]
                    capacity = write_capacity
                else:
                    entries = rq_l[ch]
                    capacity = read_capacity
                while len(entries) >= capacity:
                    freed = service(ch, None)
                    if freed > accept:
                        accept = freed
                depth = len(entries)
                bank = bank_l[j]
                row = row_l[j]
                if is_write:
                    seen = wqseen_l[ch]
                    seq = wseq_l[ch]
                    wseq_l[ch] = seq + 1
                    byrow = byw_l[ch]
                else:
                    seen = rqseen_l[ch]
                    seq = rseq_l[ch]
                    rseq_l[ch] = seq + 1
                    byrow = byr_l[ch]
                seen[depth] = seen.get(depth, 0) + 1
                entries[seq] = (accept, bank, row, rid, j)
                row_queue = byrow.get((bank, row))
                if row_queue is None:
                    byrow[(bank, row)] = [seq]
                else:
                    row_queue.append(seq)
                if track:
                    depth += 1
                    dep = depw_l[ch] if is_write else depr_l[ch]
                    dep[0] += 1
                    dep[1] += depth
                    if dep[2] is None or depth < dep[2]:
                        dep[2] = depth
                    if dep[3] is None or depth > dep[3]:
                        dep[3] = depth
            bp_total += accept - presented
            last_submit = accept
            carry = accept
            delay = accept - (t_k + latency)
            xb_total += delay
            if track:
                xb[0] += 1
                xb[1] += delay
                if xb[2] is None or delay < xb[2]:
                    xb[2] = delay
                if xb[3] is None or delay > xb[3]:
                    xb[3] = delay
                if delay > 0:
                    stalls[0] += 1
                    stalls[1] += delay

        # -- commit back into the real objects -----------------------------
        enqueued = off_l[end] - off_l[i]
        issued_total = 0
        hits_total = 0
        address_map = memory.address_map
        for ch, controller in enumerate(controllers):
            stats = controller.stats
            issues = nr_l[ch] + nw_l[ch]
            issued_total += issues
            hits_total += rh_l[ch] + wh_l[ch]
            stats.read_bursts += nr_l[ch]
            stats.write_bursts += nw_l[ch]
            stats.read_row_hits += rh_l[ch]
            stats.write_row_hits += wh_l[ch]
            for length, count in rqseen_l[ch].items():
                stats.read_queue_len_seen[length] += count
            for length, count in wqseen_l[ch].items():
                stats.write_queue_len_seen[length] += count
            for bank, count in pbr_l[ch].items():
                stats.per_bank_reads[bank] += count
            for bank, count in pbw_l[ch].items():
                stats.per_bank_writes[bank] += count
            stats.reads_per_turnaround.extend(turn_l[ch])
            if issues:
                if stats.first_issue_time < 0:
                    stats.first_issue_time = firstst_l[ch]
                stats.last_finish_time = lastf_l[ch]
                stats.data_bus_busy_cycles += t_burst * issues
            real_banks = controller._banks
            for bank, state in banks_l[ch].items():
                real = real_banks.get(bank)
                if real is None:
                    real_banks[bank] = real = _BankState()
                real.open_row = state[0]
                real.ready_at = state[1]
            controller._bus_free_at = busf_l[ch]
            controller._last_was_write = lww_l[ch]
            controller._draining_writes = drain_l[ch]
            controller._reads_since_turnaround = rs_l[ch]
            controller._read_queue = _rebuild_queue(
                rq_l[ch], Operation.READ, addresses, address_map
            )
            controller._write_queue = _rebuild_queue(
                wq_l[ch], Operation.WRITE, addresses, address_map
            )
            if track:
                for summary, histogram in (
                    (depr_l[ch], self._obs_read_depth[ch]),
                    (depw_l[ch], self._obs_write_depth[ch]),
                ):
                    if summary[0]:
                        histogram.observe_summary(*summary)

        memory.stats.latency_sum += lat[0]
        memory.stats.latency_count += lat[1]
        memory.stats.backpressure_delay += bp_total
        memory._next_request_id = next_id
        memory.last_request_id = next_id - 1
        memory._last_presented_time = presented
        memory._last_submit_time = last_submit
        crossbar._last_forward_time = carry
        crossbar.total_delay += xb_total
        if track:
            if enqueued:
                self._obs_enqueued.inc(enqueued)
            if issued_total:
                self._obs_issued.inc(issued_total)
            if hits_total:
                self._obs_row_hits.inc(hits_total)
            self._obs_forwarded.inc(end - i)
            self._obs_delay.observe_summary(*xb)
            if stalls[0]:
                self._obs_stalls.inc(stalls[0])
                self._obs_stall_cycles.inc(stalls[1])

    # -- tier 1: quiescent-epoch vectorized scan -------------------------------

    def _attempt(self, i, n, final, ts, expand, chan, bankid, burst_write) -> int:
        """Vectorized scan over requests [i, min(i+window, n)) from a fully
        drained state. Returns the number of requests committed (0 = the
        alone-burst regime is not provable here)."""
        np = self._np
        end = min(n, i + _MAX_WINDOW)
        win_final = final and end == n
        m = end - i
        t = ts[i:end]
        forward = self._forward_times(t)

        b0 = int(expand.offsets[i])
        b1 = int(expand.offsets[end])
        req = expand.request_index[b0:b1] - i
        win_chan = chan[b0:b1]
        win_bank = bankid[b0:b1]
        win_write = burst_write[b0:b1]

        timing = self.memory.config.timing
        access = timing.t_rcd + timing.t_burst
        cap = m
        per_channel = []
        for index, controller in enumerate(self.memory.controllers):
            sel = np.nonzero(win_chan == index)[0]
            if not sel.size:
                per_channel.append(None)
                continue
            for state in controller._banks.values():
                if state.open_row is not None:  # pragma: no cover - defensive
                    return 0
            arrivals = forward[req[sel]]
            writes = win_write[sel]
            banks = win_bank[sel]
            count = sel.size

            previous = np.empty(count, dtype=np.int64)
            previous[1:] = writes[:-1]
            last_was_write = controller._last_was_write
            previous[0] = -1 if last_was_write is None else int(last_was_write)
            penalty = np.where(
                (previous >= 0) & (previous != writes),
                np.where(previous == 1, timing.t_wtr, timing.t_rtw),
                0,
            )
            same_bank = np.zeros(count, dtype=bool)
            same_bank[1:] = banks[1:] == banks[:-1]
            spacing = np.maximum(penalty, np.where(same_bank, timing.t_rp, 0)) + access

            window_start = arrivals + access
            unique_banks, first_seen = np.unique(banks, return_index=True)
            for bank, position in zip(unique_banks.tolist(), first_seen.tolist()):
                state = controller._banks.get(bank)
                if state is not None:
                    ready = state.ready_at + access
                    if ready > int(window_start[position]):
                        window_start[position] = ready
            totals = np.cumsum(spacing)
            slack = window_start - totals
            bus_free = controller._bus_free_at
            if bus_free > int(slack[0]):
                slack[0] = bus_free
            finish = np.maximum.accumulate(slack) + totals

            decision = np.empty(count, dtype=np.int64)
            decision[0] = max(int(arrivals[0]), bus_free)
            if count > 1:
                np.maximum(arrivals[1:], finish[:-1], out=decision[1:])
                invalid = np.nonzero(decision[:-1] >= arrivals[1:])[0]
                if invalid.size:
                    cap = min(cap, int(req[sel[int(invalid[0])]]))
            if not win_final:
                # The channel's last burst stays uncertain until the
                # next arrival on this channel is known.
                cap = min(cap, int(req[sel[-1]]))
            per_channel.append((sel, writes, banks, finish))

        if cap <= 0:
            return 0
        self._commit_attempt(i, cap, t, forward, expand, req, per_channel)
        return cap

    def _commit_attempt(self, i, committed, t, forward, expand, req, per_channel):
        """Apply a fully-valid alone-regime prefix as whole-column updates."""
        np = self._np
        memory = self.memory
        timing = memory.config.timing
        t_burst = timing.t_burst
        t_rp = timing.t_rp
        t_cl = timing.t_cl
        total_bursts = int(expand.offsets[i + committed] - expand.offsets[i])
        completions = np.empty(len(req), dtype=np.int64)

        for index, data in enumerate(per_channel):
            if data is None:
                continue
            sel, writes, banks, finish = data
            channel_requests = req[sel]
            issued = int(np.searchsorted(channel_requests, committed, side="left"))
            if not issued:
                continue
            controller = memory.controllers[index]
            stats = controller.stats
            writes_c = writes[:issued]
            banks_c = banks[:issued]
            finish_c = finish[:issued]
            write_count = int(writes_c.sum())
            read_count = issued - write_count

            stats.read_bursts += read_count
            stats.write_bursts += write_count
            if read_count:
                stats.read_queue_len_seen[0] += read_count
            if write_count:
                stats.write_queue_len_seen[0] += write_count
            bank_key = banks_c * 2 + writes_c
            unique_keys, key_counts = np.unique(bank_key, return_counts=True)
            for key, count in zip(unique_keys.tolist(), key_counts.tolist()):
                if key & 1:
                    stats.per_bank_writes[key >> 1] += count
                else:
                    stats.per_bank_reads[key >> 1] += count

            # Write-drain turnaround records: in the alone regime a
            # record lands exactly at each read→write transition of the
            # per-channel service order.
            previous_flag = np.empty(issued, dtype=np.int64)
            previous_flag[1:] = writes_c[:-1]
            previous_flag[0] = 1 if controller._draining_writes else 0
            reads_before = np.cumsum(1 - writes_c) - (1 - writes_c)
            transitions = np.nonzero((writes_c == 1) & (previous_flag == 0))[0]
            if transitions.size:
                values = reads_before[transitions]
                stats.reads_per_turnaround.append(
                    int(values[0]) + controller._reads_since_turnaround
                )
                if values.size > 1:
                    stats.reads_per_turnaround.extend(
                        int(v) for v in np.diff(values)
                    )
                controller._reads_since_turnaround = read_count - int(values[-1])
            else:
                controller._reads_since_turnaround += read_count
            controller._draining_writes = bool(writes_c[-1])

            if stats.first_issue_time < 0:
                stats.first_issue_time = int(finish_c[0]) - t_burst
            stats.last_finish_time = int(finish_c[-1])
            stats.data_bus_busy_cycles += t_burst * issued

            for bank in np.unique(banks_c).tolist():
                state = controller._banks.get(bank)
                if state is None:
                    controller._banks[bank] = state = _BankState()
                last_position = int(np.nonzero(banks_c == bank)[0][-1])
                state.open_row = None
                state.ready_at = int(finish_c[last_position]) + t_rp
            controller._bus_free_at = int(finish_c[-1])
            controller._last_was_write = bool(writes_c[-1])

            completions[sel[:issued]] = finish_c + t_cl * (1 - writes_c)
            if self._obs is not None:
                self._obs_enqueued.inc(issued)
                self._obs_issued.inc(issued)
                if read_count:
                    self._obs_read_depth[index].observe_many(1, read_count)
                if write_count:
                    self._obs_write_depth[index].observe_many(1, write_count)

        request_offsets = expand.offsets[i : i + committed] - expand.offsets[i]
        latencies = (
            np.maximum.reduceat(completions[:total_bursts], request_offsets)
            - t[:committed]
        )
        memory.stats.latency_sum += int(latencies.sum())
        memory.stats.latency_count += committed
        memory._next_request_id += committed
        memory.last_request_id = memory._next_request_id - 1
        accepted = int(forward[committed - 1])
        memory._last_presented_time = accepted
        memory._last_submit_time = accepted

        crossbar = self.crossbar
        delays = forward[:committed] - (t[:committed] + crossbar.config.latency)
        delay_total = int(delays.sum())
        crossbar._last_forward_time = accepted
        crossbar.total_delay += delay_total
        if self._obs is not None:
            self._obs_forwarded.inc(committed)
            self._obs_delay.observe_summary(
                committed, delay_total, int(delays.min()), int(delays.max())
            )
            stalled = int(np.count_nonzero(delays))
            if stalled:
                self._obs_stalls.inc(stalled)
                self._obs_stall_cycles.inc(delay_total)


def _rebuild_queue(records, operation, addresses, address_map):
    """Real ``_BurstQueue`` holding a span's leftover bursts.

    ``records`` is the span's primitive queue dict (insertion order ==
    FIFO order == arrival order). Block-born leftovers carry their
    global burst column index and are materialized here; carried-in
    ``Burst`` objects pass through untouched.
    """
    queue = _BurstQueue()
    for arrival, _bank, _row, request_id, payload in records.values():
        if type(payload) is int:
            address = int(addresses[payload])
            burst = Burst(
                address=address,
                operation=operation,
                coordinates=address_map.decode(address),
                arrival_time=arrival,
                request_id=request_id,
            )
        else:
            burst = payload  # carried in from before the span
        queue.append(burst)
    return queue


def _tolist(column):
    """Plain-int list from a numpy or stdlib-array column."""
    return [int(v) for v in column.tolist()]
