"""STM baseline (Awad & Solihin, HPCA 2014), adapted per the paper.

The paper's ``2L-TS (STM)`` configuration replaces the McC models for
the *address* and *operation* features with STM models inside the same
hierarchical partitioning (Sec. IV-A):

* Addresses come from a **stride pattern table** — a Markov-style table
  that predicts the next stride from a history of recent strides (at
  most the last 8) — combined with a 32-row **stack distance table**
  that reintroduces temporal reuse.
* The operation is modeled with **one probability value** (the read
  fraction). Strict convergence still guarantees the exact read/write
  counts, but the *order* of reads and writes is memoryless — exactly
  the weakness Figs. 9–11 expose.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..core.leaf import AddressModel, LeafModel, OperationModel, wrap_address
from ..core.mcc import McCModel
from ..core.request import AddressRange, MemoryRequest, Operation
from ..core.serialization import register_address_model, register_operation_model
from .reuse import COLD, ReuseHistogram, stack_distances

MAX_STRIDE_HISTORY = 8
STACK_DISTANCE_ROWS = 32


class StrideTable:
    """Variable-order stride pattern table with longest-match fallback.

    Rows map a history tuple of recent strides (length 1..max_history) to
    a counter of observed next strides. Generation consumes counts
    (strict convergence per row) and falls back to shorter histories —
    and finally to the global stride distribution — when a row is
    exhausted or unseen.
    """

    def __init__(
        self,
        rows: Dict[Tuple[int, ...], Counter],
        global_counts: Counter,
        max_history: int = MAX_STRIDE_HISTORY,
    ):
        self.rows = rows
        self.global_counts = global_counts
        self.max_history = max_history

    @classmethod
    def fit(cls, strides: Sequence[int], max_history: int = MAX_STRIDE_HISTORY) -> "StrideTable":
        rows: Dict[Tuple[int, ...], Counter] = {}
        global_counts: Counter = Counter(strides)
        for index in range(1, len(strides)):
            for history_length in range(1, max_history + 1):
                if history_length > index:
                    break
                history = tuple(strides[index - history_length : index])
                rows.setdefault(history, Counter())[strides[index]] += 1
        return cls(rows, global_counts, max_history)

    @staticmethod
    def _sample(counter: Counter, rng: random.Random) -> int:
        # Sorted keys keep sampling invariant to insertion order, so a
        # deserialized table generates the same stream for the same seed.
        values = sorted(counter.keys())
        weights = [counter[v] for v in values]
        return rng.choices(values, weights=weights, k=1)[0]

    def next_stride(self, history: Sequence[int], rng: random.Random) -> int:
        """Sample the next stride given recent history, consuming counts."""
        history = tuple(history[-self.max_history :])
        for start in range(len(history)):
            row = self.rows.get(history[start:])
            if row and sum(row.values()) > 0:
                stride = self._sample(row, rng)
                row[stride] -= 1
                if row[stride] <= 0:
                    del row[stride]
                return stride
        if self.global_counts:
            return self._sample(self.global_counts, rng)
        return 0

    def to_dict(self) -> dict:
        return {
            "max_history": self.max_history,
            "rows": [
                [list(history), sorted(counter.items())]
                for history, counter in sorted(self.rows.items())
            ],
            "global_counts": sorted(self.global_counts.items()),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StrideTable":
        rows = {
            tuple(history): Counter(dict(items)) for history, items in data["rows"]
        }
        return cls(rows, Counter(dict(data["global_counts"])), data["max_history"])


class STMAddressModel(AddressModel):
    """STM address synthesis: stride table + stack-distance reuse.

    At each step a stack distance is sampled from the 32-row table; a
    finite distance replays the address at that LRU depth (temporal
    reuse), a cold sample advances via the stride table. Generated
    addresses outside the leaf's region wrap back in, as in McC.
    """

    MODEL_TYPE = "stm"

    def __init__(
        self,
        start_address: int,
        region: AddressRange,
        count: int,
        stride_table: StrideTable,
        distance_histogram: ReuseHistogram,
    ):
        self.start_address = start_address
        self.region = region
        self.count = count
        self.stride_table = stride_table
        self.distance_histogram = distance_histogram

    @classmethod
    def fit(
        cls,
        addresses: Sequence[int],
        region: AddressRange,
        max_history: int = MAX_STRIDE_HISTORY,
        stack_rows: int = STACK_DISTANCE_ROWS,
    ) -> "STMAddressModel":
        if not addresses:
            raise ValueError("cannot fit an STM address model to zero addresses")
        strides = [b - a for a, b in zip(addresses, addresses[1:])]
        histogram = ReuseHistogram.fit(stack_distances(list(addresses))).clamped(stack_rows)
        return cls(
            addresses[0],
            region,
            len(addresses),
            StrideTable.fit(strides, max_history),
            histogram,
        )

    def generate(self, rng: random.Random, strict: bool = True) -> List[int]:
        # The stride table already consumes counts, so `strict` has no
        # extra effect here; the argument is accepted for interface parity.
        addresses = [self.start_address]
        lru: List[int] = [self.start_address]
        history: List[int] = []
        while len(addresses) < self.count:
            distance = self.distance_histogram.sample(rng)
            if distance != COLD and distance < len(lru) and len(lru) > 1:
                address = lru[distance]
                lru.remove(address)
            else:
                stride = self.stride_table.next_stride(history, rng)
                history.append(stride)
                address = wrap_address(addresses[-1] + stride, self.region)
                if address in lru:
                    lru.remove(address)
            addresses.append(address)
            lru.insert(0, address)
            del lru[STACK_DISTANCE_ROWS:]
        return addresses

    def to_dict(self) -> dict:
        return {
            "type": self.MODEL_TYPE,
            "start_address": self.start_address,
            "region": [self.region.start, self.region.end],
            "count": self.count,
            "stride_table": self.stride_table.to_dict(),
            "distance_histogram": self.distance_histogram.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "STMAddressModel":
        return cls(
            data["start_address"],
            AddressRange(*data["region"]),
            data["count"],
            StrideTable.from_dict(data["stride_table"]),
            ReuseHistogram.from_dict(data["distance_histogram"]),
        )


class STMOperationModel(OperationModel):
    """Single-probability operation model with exact read/write counts.

    Generation draws without replacement from the pool of profiled reads
    and writes (a hypergeometric shuffle): the marginal probability of a
    read at every step equals the profiled read fraction, but there is no
    order memory — reproducing STM's behaviour in the paper's Fig. 10/11
    analysis.
    """

    MODEL_TYPE = "stm"

    def __init__(self, read_count: int, write_count: int):
        if read_count < 0 or write_count < 0:
            raise ValueError("operation counts must be non-negative")
        self.read_count = read_count
        self.write_count = write_count

    @classmethod
    def fit(cls, operations: Sequence[Operation]) -> "STMOperationModel":
        reads = sum(1 for op in operations if op is Operation.READ)
        return cls(reads, len(operations) - reads)

    @property
    def read_probability(self) -> float:
        total = self.read_count + self.write_count
        return self.read_count / total if total else 0.0

    def generate(self, rng: random.Random, strict: bool = True) -> List[Operation]:
        reads, writes = self.read_count, self.write_count
        operations: List[Operation] = []
        if strict:
            while reads + writes > 0:
                if rng.random() < reads / (reads + writes):
                    operations.append(Operation.READ)
                    reads -= 1
                else:
                    operations.append(Operation.WRITE)
                    writes -= 1
        else:
            probability = self.read_probability
            for _ in range(reads + writes):
                operations.append(
                    Operation.READ if rng.random() < probability else Operation.WRITE
                )
        return operations

    def to_dict(self) -> dict:
        return {
            "type": self.MODEL_TYPE,
            "read_count": self.read_count,
            "write_count": self.write_count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "STMOperationModel":
        return cls(data["read_count"], data["write_count"])


def _leaf_with(
    requests: Sequence[MemoryRequest],
    region: AddressRange,
    stm_address: bool,
    stm_operation: bool,
) -> LeafModel:
    from ..core.leaf import McCAddressModel, McCOperationModel

    requests = list(requests)
    times = [r.timestamp for r in requests]
    deltas = [b - a for a, b in zip(times, times[1:])]
    addresses = [r.address for r in requests]
    operations = [r.operation for r in requests]
    return LeafModel(
        start_time=times[0],
        count=len(requests),
        region=region,
        delta_time_model=McCModel.fit(deltas),
        size_model=McCModel.fit([r.size for r in requests]),
        address_model=(
            STMAddressModel.fit(addresses, region)
            if stm_address
            else McCAddressModel.fit(addresses, region)
        ),
        operation_model=(
            STMOperationModel.fit(operations)
            if stm_operation
            else McCOperationModel.fit(operations)
        ),
    )


def stm_leaf_factory(
    requests: Sequence[MemoryRequest], region: AddressRange
) -> LeafModel:
    """Leaf factory for ``2L-TS (STM)``: STM address/operation, McC time/size."""
    return _leaf_with(requests, region, stm_address=True, stm_operation=True)


def stm_address_leaf_factory(
    requests: Sequence[MemoryRequest], region: AddressRange
) -> LeafModel:
    """Hybrid: STM addresses, McC operations — attributes error to the
    address feature in the McC-vs-STM comparison."""
    return _leaf_with(requests, region, stm_address=True, stm_operation=False)


def stm_operation_leaf_factory(
    requests: Sequence[MemoryRequest], region: AddressRange
) -> LeafModel:
    """Hybrid: McC addresses, STM's single-probability operations —
    attributes error to the operation feature (the paper's Fig. 10/11
    explanation)."""
    return _leaf_with(requests, region, stm_address=False, stm_operation=True)


register_address_model(STMAddressModel.MODEL_TYPE, STMAddressModel.from_dict)
register_operation_model(STMOperationModel.MODEL_TYPE, STMOperationModel.from_dict)
