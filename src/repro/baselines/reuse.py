"""Reuse/stack distance computation and histograms.

Stack distance (LRU stack processing, Mattson et al. [29]; Bennett &
Kruskal [7]) is the number of *unique* addresses referenced between
consecutive accesses to the same address. The STM and HRD baselines are
built on these profiles.

The scan uses a Fenwick (binary indexed) tree over access positions, the
standard O(n log n) formulation, so full SPEC-scale traces profile
quickly.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence

COLD = -1  # marker for an infinite (cold-miss) stack distance


class _FenwickTree:
    """Prefix-sum tree used to count distinct elements between positions."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def stack_distances(items: Sequence[Hashable]) -> List[int]:
    """Per-access LRU stack distances; ``COLD`` (-1) marks first touches.

    A distance of 0 means the immediately-preceding unique item was the
    same item (back-to-back reuse).
    """
    tree = _FenwickTree(len(items))
    last_position: Dict[Hashable, int] = {}
    distances: List[int] = []
    for position, item in enumerate(items):
        previous = last_position.get(item)
        if previous is None:
            distances.append(COLD)
        else:
            # Number of distinct items touched strictly between the two
            # accesses: each distinct item contributes one marker at its
            # most recent position.
            between = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(between)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[item] = position
    return distances


class LRUStack:
    """An LRU stack with O(log n) access, depth-selection and removal.

    Backed by a Fenwick tree over monotonically increasing time slots:
    the item in the highest occupied slot is the most-recently used.
    Used by HRD synthesis, where stack depths can reach the workload
    footprint (a plain list would make synthesis quadratic).
    """

    def __init__(self):
        self._slot_of: Dict[Hashable, int] = {}
        self._item_at: Dict[int, Hashable] = {}
        self._tree = _FenwickTree(1024)
        self._tree_size = 1024
        self._next_slot = 0

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._slot_of

    def _grow(self) -> None:
        new_size = self._tree_size * 2
        tree = _FenwickTree(new_size)
        for slot in self._item_at:
            tree.add(slot, 1)
        self._tree = tree
        self._tree_size = new_size

    def access(self, item: Hashable) -> None:
        """Move ``item`` to the front (inserting it if absent)."""
        old_slot = self._slot_of.pop(item, None)
        if old_slot is not None:
            del self._item_at[old_slot]
            self._tree.add(old_slot, -1)
        if self._next_slot >= self._tree_size:
            self._grow()
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of[item] = slot
        self._item_at[slot] = item
        self._tree.add(slot, 1)

    def remove(self, item: Hashable) -> None:
        slot = self._slot_of.pop(item)
        del self._item_at[slot]
        self._tree.add(slot, -1)

    def depth_of(self, item: Hashable) -> int:
        """Depth of ``item``: 0 means most-recently used."""
        slot = self._slot_of[item]
        occupied_up_to = self._tree.prefix_sum(slot)
        return len(self._slot_of) - occupied_up_to

    def at_depth(self, depth: int) -> Hashable:
        """The item at ``depth`` (0 = most recent)."""
        if not 0 <= depth < len(self._slot_of):
            raise IndexError(f"depth {depth} out of range for stack of {len(self._slot_of)}")
        # k-th occupied slot in ascending order, counting from the top.
        target_rank = len(self._slot_of) - depth
        low, high = 0, self._tree_size - 1
        while low < high:
            mid = (low + high) // 2
            if self._tree.prefix_sum(mid) >= target_rank:
                high = mid
            else:
                low = mid + 1
        return self._item_at[low]


class ReuseHistogram:
    """A discrete distribution of stack distances, including cold misses."""

    def __init__(self, counts: Optional[Counter] = None):
        self.counts: Counter = counts if counts is not None else Counter()

    @classmethod
    def fit(cls, distances: Sequence[int]) -> "ReuseHistogram":
        return cls(Counter(distances))

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def cold_count(self) -> int:
        return self.counts.get(COLD, 0)

    def cold_fraction(self) -> float:
        total = self.total
        return self.counts.get(COLD, 0) / total if total else 0.0

    def add(self, distance: int) -> None:
        self.counts[distance] += 1

    def sample(self, rng: random.Random) -> int:
        """Sample a distance (may return ``COLD``).

        Keys are sorted so sampling is invariant to insertion order
        (profiles must behave identically after serialization).
        """
        if not self.counts:
            return COLD
        distances = sorted(self.counts.keys())
        weights = [self.counts[d] for d in distances]
        return rng.choices(distances, weights=weights, k=1)[0]

    def clamped(self, max_rows: int) -> "ReuseHistogram":
        """Clamp finite distances into ``max_rows`` rows (STM uses 32).

        Distances >= max_rows are folded into the last row; COLD is kept.
        """
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        folded: Counter = Counter()
        for distance, count in self.counts.items():
            if distance == COLD:
                folded[COLD] += count
            else:
                folded[min(distance, max_rows - 1)] += count
        return ReuseHistogram(folded)

    def to_dict(self) -> dict:
        return {"counts": sorted(self.counts.items())}

    @classmethod
    def from_dict(cls, data: dict) -> "ReuseHistogram":
        return cls(Counter(dict((int(k), int(v)) for k, v in data["counts"])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReuseHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReuseHistogram({self.total} samples, {self.cold_count} cold)"
