"""HRD baseline (Maeda et al., HPCA 2017): hierarchical reuse distance.

HRD models a workload with reuse-distance histograms at two block
granularities: reuse is modeled at 64B first and, on a cold miss
(infinite reuse distance), at the 4KB granularity (paper Sec. V-A). A
multi-state operation model with explicit *clean* and *dirty* states
captures read/write behaviour. Matching the original work, HRD profiles
the whole trace globally (no temporal phases).

Synthesis replays the histograms against LRU stacks of generated blocks:
a finite 64B distance re-touches the block at that depth; a cold 64B
sample consults the 4KB histogram to pick (or allocate) a page and
touches a fresh block inside it.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core.request import MemoryRequest, Operation
from ..core.trace import Trace
from .reuse import COLD, LRUStack, ReuseHistogram, stack_distances

FINE_GRANULARITY = 64
COARSE_GRANULARITY = 4096


class CleanDirtyModel:
    """Multi-state operation model with explicit clean/dirty block states.

    Profiles, per state of the *referenced block* (new, clean, dirty),
    the probability that the access is a write. Synthesis tracks the
    clean/dirty state of generated blocks the same way.
    """

    STATES = ("new", "clean", "dirty")

    def __init__(self, write_counts: dict, total_counts: dict):
        self.write_counts = {state: int(write_counts.get(state, 0)) for state in self.STATES}
        self.total_counts = {state: int(total_counts.get(state, 0)) for state in self.STATES}

    @classmethod
    def fit(cls, blocks: Sequence[int], operations: Sequence[Operation]) -> "CleanDirtyModel":
        if len(blocks) != len(operations):
            raise ValueError("blocks and operations must be the same length")
        write_counts = {state: 0 for state in cls.STATES}
        total_counts = {state: 0 for state in cls.STATES}
        dirty: dict = {}
        for block, operation in zip(blocks, operations):
            if block not in dirty:
                state = "new"
            elif dirty[block]:
                state = "dirty"
            else:
                state = "clean"
            total_counts[state] += 1
            if operation is Operation.WRITE:
                write_counts[state] += 1
                dirty[block] = True
            else:
                dirty.setdefault(block, dirty.get(block, False))
                if state == "new":
                    dirty[block] = False
        return cls(write_counts, total_counts)

    def write_probability(self, state: str) -> float:
        total = self.total_counts.get(state, 0)
        if not total:
            # Fall back to the overall write fraction.
            writes = sum(self.write_counts.values())
            accesses = sum(self.total_counts.values())
            return writes / accesses if accesses else 0.0
        return self.write_counts[state] / total

    def sample(self, state: str, rng: random.Random) -> Operation:
        if rng.random() < self.write_probability(state):
            return Operation.WRITE
        return Operation.READ

    def to_dict(self) -> dict:
        return {"write_counts": self.write_counts, "total_counts": self.total_counts}

    @classmethod
    def from_dict(cls, data: dict) -> "CleanDirtyModel":
        return cls(data["write_counts"], data["total_counts"])


class HRDModel:
    """The full HRD profile: two reuse histograms + clean/dirty op model."""

    def __init__(
        self,
        fine_histogram: ReuseHistogram,
        coarse_histogram: ReuseHistogram,
        operation_model: CleanDirtyModel,
        count: int,
        request_size: int,
        base_address: int = 0,
    ):
        self.fine_histogram = fine_histogram
        self.coarse_histogram = coarse_histogram
        self.operation_model = operation_model
        self.count = count
        self.request_size = request_size
        self.base_address = base_address

    @classmethod
    def fit(cls, trace: Trace) -> "HRDModel":
        if not len(trace):
            raise ValueError("cannot fit HRD to an empty trace")
        fine_blocks = [r.address // FINE_GRANULARITY for r in trace]
        coarse_blocks = [r.address // COARSE_GRANULARITY for r in trace]
        fine_distances = stack_distances(fine_blocks)
        coarse_distances = stack_distances(coarse_blocks)
        # The 4KB histogram is consulted only on 64B cold misses, so it is
        # profiled from the coarse distances observed at those accesses.
        coarse_at_cold = [
            coarse for fine, coarse in zip(fine_distances, coarse_distances) if fine == COLD
        ]
        operations = [r.operation for r in trace]
        sizes = [r.size for r in trace]
        modal_size = max(set(sizes), key=sizes.count)
        return cls(
            fine_histogram=ReuseHistogram.fit(fine_distances),
            coarse_histogram=ReuseHistogram.fit(coarse_at_cold),
            operation_model=CleanDirtyModel.fit(fine_blocks, operations),
            count=len(trace),
            request_size=modal_size,
            base_address=min(r.address for r in trace),
        )

    def synthesize(self, seed: int = 0) -> Trace:
        """Generate a synthetic trace (order-only timestamps, as in Sec. V)."""
        rng = random.Random(seed)
        blocks_per_page = COARSE_GRANULARITY // FINE_GRANULARITY
        base_page = self.base_address // COARSE_GRANULARITY

        fine_lru = LRUStack()  # 64B block numbers
        page_lru = LRUStack()  # 4KB page numbers
        page_next_block: dict = {}  # page -> next fresh 64B slot index
        next_new_page = base_page
        dirty: dict = {}
        requests: List[MemoryRequest] = []

        for index in range(self.count):
            distance = self.fine_histogram.sample(rng)
            if distance != COLD and fine_lru:
                # A finite distance deeper than the current stack clamps to
                # the deepest entry — it is still a reuse, not a cold miss
                # (otherwise synthesis would inflate the footprint).
                block = fine_lru.at_depth(min(distance, len(fine_lru) - 1))
                state = "dirty" if dirty.get(block, False) else "clean"
            else:
                page_distance = self.coarse_histogram.sample(rng)
                if page_distance != COLD and page_lru:
                    page = page_lru.at_depth(min(page_distance, len(page_lru) - 1))
                    if page_next_block.get(page, 0) >= blocks_per_page:
                        # Every 64B block of this page has been touched; a
                        # cold fine-grained miss cannot land here, so the
                        # footprint grows with a fresh page instead.
                        page = next_new_page
                        next_new_page += 1
                else:
                    page = next_new_page
                    next_new_page += 1
                slot = page_next_block.get(page, 0)
                block = page * blocks_per_page + (slot % blocks_per_page)
                page_next_block[page] = slot + 1
                if block in dirty:
                    # Wrapped around inside a fully-touched page: reuse.
                    state = "dirty" if dirty[block] else "clean"
                else:
                    state = "new"
            operation = self.operation_model.sample(state, rng)
            dirty[block] = dirty.get(block, False) or operation is Operation.WRITE

            fine_lru.access(block)
            page_lru.access(block // blocks_per_page)

            requests.append(
                MemoryRequest(index, block * FINE_GRANULARITY, operation, self.request_size)
            )
        return Trace(requests)

    def to_dict(self) -> dict:
        return {
            "fine_histogram": self.fine_histogram.to_dict(),
            "coarse_histogram": self.coarse_histogram.to_dict(),
            "operation_model": self.operation_model.to_dict(),
            "count": self.count,
            "request_size": self.request_size,
            "base_address": self.base_address,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HRDModel":
        return cls(
            ReuseHistogram.from_dict(data["fine_histogram"]),
            ReuseHistogram.from_dict(data["coarse_histogram"]),
            CleanDirtyModel.from_dict(data["operation_model"]),
            data["count"],
            data["request_size"],
            data["base_address"],
        )
