"""Prior-art baseline models the paper compares against.

* :mod:`repro.baselines.stm` — STM (Awad & Solihin, HPCA 2014): stride
  pattern table + stack distance table, used as the leaf model in the
  ``2L-TS (STM)`` configuration of Sec. IV.
* :mod:`repro.baselines.hrd` — HRD (Maeda et al., HPCA 2017):
  hierarchical reuse distance at 64B/4KB granularities, the Sec. V
  comparison point.
* :mod:`repro.baselines.reuse` — shared stack-distance machinery.
"""

from .hrd import CleanDirtyModel, HRDModel
from .reuse import COLD, LRUStack, ReuseHistogram, stack_distances
from .stm import (
    STMAddressModel,
    STMOperationModel,
    StrideTable,
    stm_address_leaf_factory,
    stm_leaf_factory,
    stm_operation_leaf_factory,
)

__all__ = [
    "COLD",
    "CleanDirtyModel",
    "HRDModel",
    "LRUStack",
    "ReuseHistogram",
    "STMAddressModel",
    "STMOperationModel",
    "StrideTable",
    "stack_distances",
    "stm_address_leaf_factory",
    "stm_leaf_factory",
    "stm_operation_leaf_factory",
]
