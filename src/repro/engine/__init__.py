"""``repro.engine`` — the shared job engine.

The repo's expensive work decomposes into deterministic *jobs*: frozen
dataclasses whose fields completely describe one computation (one
DRAM-comparison trio, one profile build, one sampling report). Before
this package they lived inside ``repro.eval.parallel``, fused to the
experiment runners; ``repro.engine`` is that job model refactored into
a layer every front end shares:

* :mod:`repro.engine.jobs` — the job dataclasses, the type registry
  (executor / cache installer / wire adapter per type) and the
  dispatch helpers (:func:`execute_job`, :func:`install`,
  :func:`is_cached`, :func:`job_from_wire`, :func:`wire_payload`);
* :mod:`repro.engine.pool` — the repo-standard process pool
  (:func:`make_pool`, :func:`default_processes`);
* :mod:`repro.engine.prewarm` — batch fan-out with cross-run
  memoization and the per-key lock protocol (what ``--jobs N`` runs);
* :mod:`repro.engine.scheduler` — the long-running single-flight
  :class:`Scheduler` behind :mod:`repro.service`: bounded queue with
  backpressure, in-flight dedupe on canonical cache keys, worker-crash
  retry, per-job lifecycle events through :mod:`repro.obs`.

Canonical cache keys come from :func:`repro.store.memo.cache_key`, so
the scheduler's single-flight map, the prewarm lock protocol and the
persistent store all agree on what "the same job" means.
"""

from .jobs import (
    DramJob,
    Job,
    JobValidationError,
    ProfileJob,
    SampleJob,
    SizeJob,
    SpecJob,
    SynthesizeJob,
    execute_job,
    install,
    is_cached,
    job_from_wire,
    register_job_type,
    validate_job,
    wire_kinds,
    wire_payload,
)
from .pool import default_processes, make_pool
from .prewarm import prewarm
from .scheduler import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobFailed,
    JobHandle,
    QueueFull,
    Scheduler,
)

__all__ = [
    "DONE",
    "DramJob",
    "FAILED",
    "Job",
    "JobFailed",
    "JobHandle",
    "JobValidationError",
    "ProfileJob",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "SampleJob",
    "Scheduler",
    "SizeJob",
    "SpecJob",
    "SynthesizeJob",
    "default_processes",
    "execute_job",
    "install",
    "is_cached",
    "job_from_wire",
    "make_pool",
    "prewarm",
    "register_job_type",
    "validate_job",
    "wire_kinds",
    "wire_payload",
]
