"""Single-flight job scheduler: bounded queue, worker pool, retries.

This is the long-running half of :mod:`repro.engine` — the piece the
service front end (:mod:`repro.service`) submits to. Contracts:

* **Backpressure.** The submit queue is bounded (``queue_limit``);
  :meth:`Scheduler.submit` never blocks — a full queue raises
  :class:`QueueFull` so callers (the server) can reject with a clear
  response instead of stalling every client behind a burst.
* **Single-flight.** Identical jobs — same canonical cache key, via
  :func:`repro.store.memo.cache_key` — dedupe onto one computation:
  in-process through the ``_inflight`` map (late submitters get the
  same :class:`JobHandle`), and across processes through the store's
  per-key lockfiles (:mod:`repro.store.locks`), exactly the protocol
  ``prewarm`` uses.
* **Crash containment.** A worker process dying mid-job (OOM kill,
  segfault, ``kill -9``) breaks the process pool; the scheduler
  rebuilds the pool and retries the job once (``retries``), then marks
  it FAILED. Handles always reach a terminal state — a client waiting
  on a crashed job gets an error, never a hang.
* **Observability.** Always-on plain-int tallies (for ``stats()``)
  mirrored into :mod:`repro.obs` counters/events when a registry is
  active; queue depth and in-flight gauges ride the
  :class:`repro.obs.QueueGauges` pair captured at construction.

The job lifecycle is a small state machine::

    submit -> QUEUED -> RUNNING -> DONE
                 |          |-----> RUNNING (retry once, pool rebuilt)
                 |          `-----> FAILED
                 `(queue full: rejected, never enqueued)

Payloads arrive from three sources, recorded on the handle: computed
(this scheduler ran it), memoized (the cross-run store had it) or
deduped (another in-flight submission of the same key computed it).

Lock-ordering contract (checked by ``conc-lock-order`` and, at runtime,
by the opt-in lock-order sanitizer in :mod:`repro.lint.sanitize`):

* The scheduler's three locks — ``_state_lock`` (inflight map),
  ``_pool_lock`` (pool lifecycle), ``_tally_lock`` (tallies) — are
  *leaves*: never acquire any other lock, call back into user code, or
  touch the store while holding one.
* ``JobHandle._lock`` is also a leaf; listeners are invoked after it is
  released, so a listener may safely submit, subscribe or lock.
* The store's per-key :class:`~repro.store.locks.FileLock` is the
  *outermost* level: it is only taken with no in-process lock held
  (``_execute``), and the in-process locks above may be taken under it.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import BrokenExecutor
from typing import Any, Dict, List, Optional

from .. import obs, store
from .jobs import execute_job, install, job_type_of
from .pool import default_processes, make_pool

#: Job lifecycle states (wire-visible, so plain strings).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)


class QueueFull(RuntimeError):
    """The scheduler's bounded queue rejected a submission."""


class JobFailed(RuntimeError):
    """Raised by :meth:`JobHandle.result` for a FAILED job."""


class JobHandle:
    """One submitted job's lifecycle, shared by every duplicate submitter."""

    __slots__ = (
        "job", "key", "job_id", "state", "attempts", "waiters", "source",
        "error", "_payload", "_done", "_lock", "_listeners",
    )

    def __init__(self, job: Any, key: str, job_id: int):
        self.job = job
        self.key = key
        self.job_id = job_id
        self.state = QUEUED
        self.attempts = 0
        self.waiters = 1
        self.source: Optional[str] = None
        self.error: Optional[str] = None
        self._payload: Any = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._listeners: List[Any] = []

    def subscribe(self, listener) -> None:
        """Call ``listener(handle, state)`` on every later transition.

        A listener attached after the job reached a terminal state is
        fired immediately with that state — late subscribers never hang.
        """
        fire = None
        with self._lock:
            if self.state in _TERMINAL:
                fire = self.state
            else:
                self._listeners.append(listener)
        if fire is not None:
            listener(self, fire)

    def _transition(self, state: str) -> None:
        with self._lock:
            self.state = state
            listeners = list(self._listeners)
            if state in _TERMINAL:
                self._listeners.clear()
                # Inside the lock so a late subscriber that observes a
                # terminal state can rely on the event being set: every
                # listener invocation (direct or via subscribe) happens
                # after the handle is safely readable without blocking.
                self._done.set()
        for listener in listeners:
            listener(self, state)

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The payload; raises :class:`JobFailed` for a failed job."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still {self.state}")
        if self.state == FAILED:
            raise JobFailed(self.error or f"job {self.job_id} failed")
        return self._payload

    def result_nowait(self) -> Any:
        """The payload of an already-terminal handle, without blocking.

        For event-loop callers: listeners fire only after the handle is
        terminal (see :meth:`_transition`), so inside a transition
        callback this never raises — and never parks the loop the way
        ``result()``'s ``Event.wait`` would.
        """
        if not self._done.is_set():
            raise RuntimeError(
                f"job {self.job_id} still {self.state}; "
                "result_nowait() requires a terminal handle"
            )
        if self.state == FAILED:
            raise JobFailed(self.error or f"job {self.job_id} failed")
        return self._payload


_STOP = object()

_TALLY_KEYS = (
    "submitted", "deduped", "executed", "memoized", "failed", "retried",
    "rejected",
)


class Scheduler:
    """Bounded single-flight scheduler over the shared worker pool."""

    __slots__ = (
        "workers", "queue_limit", "backend", "retries", "tally",
        "_queue", "_inflight", "_state_lock", "_tally_lock", "_threads",
        "_pool", "_pool_lock", "_pool_generation", "_closed", "_ids",
        "_gauges",
    )

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = 64,
        backend: str = "process",
        retries: int = 1,
    ):
        if backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {backend!r}")
        self.workers = default_processes() if workers is None else max(1, workers)
        self.queue_limit = queue_limit
        self.backend = backend
        self.retries = retries
        self.tally: Dict[str, int] = {key: 0 for key in _TALLY_KEYS}
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, queue_limit))
        self._inflight: Dict[str, JobHandle] = {}
        self._state_lock = threading.Lock()
        self._tally_lock = threading.Lock()
        self._pool = None
        self._pool_lock = threading.Lock()
        self._pool_generation = 0
        self._closed = False
        self._ids = itertools.count(1)
        self._gauges = obs.queue_gauges("engine")
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"engine-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- instrumentation -----------------------------------------------------

    def _count(self, key: str) -> None:
        # Worker threads and the submitting thread tally concurrently;
        # ``+=`` on a dict slot is a read-modify-write that drops counts
        # when preempted. The obs counter is locked internally, so it
        # stays outside this leaf lock.
        with self._tally_lock:
            self.tally[key] += 1
        registry = obs.active()
        if registry is not None:
            registry.counter(f"engine.jobs.{key}").inc()

    def _event(self, event_type: str, handle: JobHandle, **fields: object) -> None:
        registry = obs.active()
        if registry is not None:
            registry.event(
                event_type,
                job_id=handle.job_id,
                kind=type(handle.job).__name__,
                key=handle.key[:16],
                **fields,
            )

    # -- submission ----------------------------------------------------------

    def submit(self, job: Any) -> JobHandle:
        """Enqueue ``job`` (or join the identical in-flight one).

        Raises :class:`QueueFull` when the bounded queue is at capacity
        and :class:`TypeError` for unregistered job types. Never blocks.
        """
        job_type_of(job)  # fail fast on unregistered types
        if self._closed:
            raise RuntimeError("scheduler is closed")
        key = store.cache_key(job)
        with self._state_lock:
            existing = self._inflight.get(key)
            if existing is None:
                handle = JobHandle(job, key, next(self._ids))
                self._inflight[key] = handle
            else:
                existing.waiters += 1
        if existing is not None:
            self._count("deduped")
            self._event("engine.job.deduped", existing)
            return existing
        try:
            self._queue.put_nowait(handle)
        except queue.Full:
            with self._state_lock:
                self._inflight.pop(key, None)
            self._count("rejected")
            raise QueueFull(
                f"queue limit {self.queue_limit} reached; retry later"
            ) from None
        self._count("submitted")
        if self._gauges is not None:
            self._gauges.enqueued()
        self._event("engine.job.queued", handle)
        return handle

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            handle = self._queue.get()
            if handle is _STOP:
                return
            self._run(handle)

    def _run(self, handle: JobHandle) -> None:
        handle._transition(RUNNING)
        if self._gauges is not None:
            self._gauges.started()
        self._event("engine.job.start", handle)
        timer = obs.job_timer(f"engine.job.{type(handle.job).__name__}")
        try:
            if timer is None:
                payload, source = self._execute(handle)
            else:
                with timer:
                    payload, source = self._execute(handle)
        except Exception as error:  # terminal: every failure path lands here
            self._finish(handle, None, None, error)
        else:
            self._finish(handle, payload, source, None)

    def _finish(
        self,
        handle: JobHandle,
        payload: Any,
        source: Optional[str],
        error: Optional[Exception],
        ran: bool = True,
    ) -> None:
        with self._state_lock:
            self._inflight.pop(handle.key, None)
        if self._gauges is not None:
            # A cancelled handle never reached RUNNING: it leaves the
            # queue gauge, not the inflight gauge.
            if ran:
                self._gauges.finished()
            else:
                self._gauges.dequeued()
        if error is not None:
            handle.error = f"{type(error).__name__}: {error}"
            self._count("failed")
            self._event("engine.job.failed", handle, error=handle.error)
            handle._transition(FAILED)
            return
        install(handle.job, payload)
        handle._payload = payload
        handle.source = source
        self._count(source)
        self._event("engine.job.finish", handle, source=source)
        handle._transition(DONE)

    def _execute(self, handle: JobHandle):
        """Compute or fetch the payload; returns ``(payload, source)``.

        ``source`` feeds the tallies: ``"executed"`` for payloads this
        scheduler computed, ``"memoized"`` for cross-run store hits.
        """
        job = handle.job
        memo = store.active_memo()
        if memo is None:
            return self._compute_with_retry(handle), "executed"
        payload = memo.fetch(job)
        if payload is not None:
            return payload, "memoized"
        lock = memo.lock(job)
        if lock.acquire(block=False):
            try:
                payload = self._compute_with_retry(handle)
                memo.store(job, payload)
            finally:
                lock.release()
            return payload, "executed"
        # Another process holds the compute lock: wait for its result
        # instead of duplicating the work (cross-process single-flight).
        lock.wait_released()
        payload = memo.fetch(job)
        if payload is not None:
            return payload, "memoized"
        # The other holder died or failed; compute under the lock so yet
        # another waiter does not duplicate the work.
        with memo.lock(job):
            payload = memo.fetch(job)
            if payload is None:
                payload = self._compute_with_retry(handle)
                memo.store(job, payload)
                return payload, "executed"
        return payload, "memoized"

    def _compute_with_retry(self, handle: JobHandle) -> Any:
        while True:
            handle.attempts += 1
            generation = self._pool_generation
            try:
                if self.backend == "thread":
                    return execute_job(handle.job)[1]
                future = self._ensure_pool().submit(execute_job, handle.job)
                return future.result()[1]
            except BrokenExecutor as error:
                # A worker died mid-job (kill -9, OOM, segfault). The
                # pool is unusable for everyone; rebuild it once per
                # break and retry this job up to ``retries`` times.
                self._rebuild_pool(generation)
                if handle.attempts > self.retries:
                    raise JobFailed(
                        f"worker crashed {handle.attempts} times running "
                        f"{type(handle.job).__name__} (retries exhausted): {error}"
                    ) from error
                self._count("retried")
                self._event("engine.job.retry", handle, attempts=handle.attempts)

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                # The pool is (re)built lazily from a *worker thread*,
                # after this scheduler has already started its own
                # threads — forking here would snapshot locks held by
                # sibling threads into the children (deadlock on first
                # contended acquire). forkserver forks from a clean
                # single-threaded daemon instead.
                self._pool = make_pool(self.workers, start_method="forkserver")
            return self._pool

    def _rebuild_pool(self, seen_generation: int) -> None:
        with self._pool_lock:
            if self._pool_generation != seen_generation:
                return  # another thread already replaced this pool
            broken, self._pool = self._pool, None
            self._pool_generation += 1
        if broken is not None:
            broken.shutdown(wait=False)

    # -- inspection / shutdown -----------------------------------------------

    def worker_pids(self) -> List[int]:
        """PIDs of live pool worker processes (empty for thread backend)."""
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return []
        return sorted(getattr(pool, "_processes", {}) or {})

    def stats(self) -> dict:
        with self._state_lock:
            inflight = len(self._inflight)
        with self._tally_lock:
            tally = dict(self.tally)
        return {
            "backend": self.backend,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "queued": self._queue.qsize(),
            "inflight": inflight,
            "pool_generation": self._pool_generation,
            "tally": tally,
        }

    def close(self, cancel_pending: bool = False) -> None:
        """Stop the workers and the pool.

        Running jobs finish first (their clients get results); with
        ``cancel_pending`` still-queued handles fail with a shutdown
        error instead of waiting for a worker.
        """
        self._closed = True
        if cancel_pending:
            while True:
                try:
                    handle = self._queue.get_nowait()
                except queue.Empty:
                    break
                if handle is _STOP:
                    continue
                self._finish(
                    handle, None, None, JobFailed("scheduler shut down"),
                    ran=False,
                )
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(cancel_pending=True)
