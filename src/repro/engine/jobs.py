"""The shared job model: canonical units of work behind every runner.

A *job* is a frozen dataclass whose fields are the complete input of a
deterministic computation — the same contract :mod:`repro.store.memo`
keys its cross-run cache on. This module owns the job types themselves
plus a small registry binding each type to:

* an **executor** — computes the payload (runs in whatever process the
  scheduler picked);
* an optional **installer** — merges a payload into the in-process
  caches a figure runner reads (the eval layer's types install into
  :mod:`repro.eval.comparison` / :mod:`repro.eval.experiments`);
* an optional **cached-check** — tells the scheduler the payload is
  already installed in-process;
* an optional **wire adapter** — the job's service-facing name, field
  validation for requests arriving over the network, and a
  JSON-serializable summary of its payload.

The four experiment job types (``DramJob``/``SpecJob``/``SizeJob``/
``SampleJob``) moved here from ``repro.eval.parallel`` (which re-exports
them, so existing imports and pickled pool traffic keep working); their
executors lazily import the eval layer, so ``repro.engine`` itself never
drags the experiment runners in at import time. ``ProfileJob`` and
``SynthesizeJob`` are new: the service-level "profile this workload" /
"synthesize a clone" units whose payloads are plain JSON-ready dicts.

Registering a new job type is one call::

    @dataclass(frozen=True)
    class MyJob:
        name: str

    register_job_type(MyJob, executor=my_compute, wire_kind="my-kind")

after which the scheduler, the memo store (``store.memo.cache_key``
works on any dataclass) and the service front end all handle it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

#: Mirrors repro.eval.comparison defaults without importing it here.
DEFAULT_REQUESTS = 20_000
DEFAULT_INTERVAL = 500_000


class JobValidationError(ValueError):
    """A job request whose parameters can never compute (bad workload
    name, non-positive scale, unknown field)."""


# ---------------------------------------------------------------------------
# Job dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DramJob:
    """One baseline/McC(/STM) DRAM simulation trio (Figs. 6-13).

    The executor replays through the backend-dispatched driver
    (:mod:`repro.sim.driver`), so pool workers — which inherit
    ``MOCKTAILS_BACKEND`` from the parent's environment — use the
    batched memory-system engine exactly when the parent would.
    """

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL
    include_stm: bool = True


@dataclass(frozen=True)
class SpecJob:
    """Baseline + three synthetic traces for one SPEC-like benchmark
    (Figs. 14-16)."""

    benchmark: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0


@dataclass(frozen=True)
class SizeJob:
    """Trace/profile on-disk size measurement for one benchmark (Fig. 17)."""

    benchmark: str
    num_requests: int = DEFAULT_REQUESTS


@dataclass(frozen=True)
class SampleJob:
    """One sampled-vs-full fidelity report (repro.sample estimator)."""

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL
    k: Optional[int] = None
    sample_seed: int = 0


@dataclass(frozen=True)
class ProfileJob:
    """Build one workload's statistical profile; payload is a summary
    dict (leaf count, request total, serialized size, content digest)."""

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL


@dataclass(frozen=True)
class SynthesizeJob:
    """Profile one workload and synthesize a clone; payload summarizes
    the synthetic trace (request count, op mix, content digest)."""

    name: str
    num_requests: int = DEFAULT_REQUESTS
    seed: int = 0
    interval: int = DEFAULT_INTERVAL
    synthesis_seed: int = 1


Job = Union[DramJob, SpecJob, SizeJob, SampleJob, ProfileJob, SynthesizeJob]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobType:
    """Everything the engine knows about one job dataclass."""

    cls: type
    executor: Callable[[Any], Any]
    installer: Optional[Callable[[Any, Any], None]] = None
    cached_check: Optional[Callable[[Any], bool]] = None
    wire_kind: Optional[str] = None
    validator: Optional[Callable[[Any], None]] = None
    wire_summary: Optional[Callable[[Any, Any], dict]] = None


_REGISTRY: Dict[type, JobType] = {}
_WIRE_KINDS: Dict[str, JobType] = {}


def register_job_type(
    cls: type,
    executor: Callable[[Any], Any],
    installer: Optional[Callable[[Any, Any], None]] = None,
    cached_check: Optional[Callable[[Any], bool]] = None,
    wire_kind: Optional[str] = None,
    validator: Optional[Callable[[Any], None]] = None,
    wire_summary: Optional[Callable[[Any, Any], dict]] = None,
) -> JobType:
    """Bind a frozen job dataclass to its executor (and optional hooks)."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"job types must be dataclasses, got {cls.__name__}")
    entry = JobType(
        cls=cls,
        executor=executor,
        installer=installer,
        cached_check=cached_check,
        wire_kind=wire_kind,
        validator=validator,
        wire_summary=wire_summary,
    )
    _REGISTRY[cls] = entry
    if wire_kind is not None:
        _WIRE_KINDS[wire_kind] = entry
    return entry


def job_type_of(job: Any) -> JobType:
    entry = _REGISTRY.get(type(job))
    if entry is None:
        raise TypeError(f"unknown job type: {job!r}")
    return entry


def wire_kinds() -> List[str]:
    """Service-facing job kinds, sorted."""
    return sorted(_WIRE_KINDS)


# ---------------------------------------------------------------------------
# Execution / cache-merge hooks (the scheduler's view)
# ---------------------------------------------------------------------------


def execute_job(job: Any) -> Tuple[Any, Any]:
    """Run one job (in whatever process this is) and return its payload.

    Returns ``(job, payload)`` so process pools can ``map`` it and
    re-associate results with their inputs.
    """
    return job, job_type_of(job).executor(job)


def install(job: Any, payload: Any) -> None:
    """Merge one payload into the in-process cache its runner reads."""
    installer = job_type_of(job).installer
    if installer is not None:
        installer(job, payload)


def is_cached(job: Any) -> bool:
    """Whether the payload is already installed in-process."""
    check = job_type_of(job).cached_check
    return check(job) if check is not None else False


def validate_job(job: Any) -> None:
    """Raise :class:`JobValidationError` if the job can never compute."""
    entry = job_type_of(job)
    if entry.validator is not None:
        entry.validator(job)


# ---------------------------------------------------------------------------
# Wire adaptation (the service's view)
# ---------------------------------------------------------------------------


def job_from_wire(kind: str, params: Optional[dict] = None) -> Any:
    """Construct (and validate) a job from a service request.

    ``params`` must be a flat dict of the dataclass's own fields; extra
    or mistyped fields raise :class:`JobValidationError` so the server
    can reject with a precise message instead of crashing a worker.
    """
    entry = _WIRE_KINDS.get(kind)
    if entry is None:
        raise JobValidationError(
            f"unknown job kind {kind!r} (expected one of: {', '.join(wire_kinds())})"
        )
    params = dict(params or {})
    fields = {field.name: field for field in dataclasses.fields(entry.cls)}
    unknown = sorted(set(params) - set(fields))
    if unknown:
        raise JobValidationError(
            f"{kind}: unknown parameter(s): {', '.join(unknown)}"
        )
    coerced = {}
    for name, value in params.items():
        # JSON gives us str/int/float/bool/None; ints must be real ints
        # (a float request count would silently truncate somewhere deep).
        if isinstance(value, bool) and fields[name].type not in ("bool", bool):
            raise JobValidationError(f"{kind}: parameter {name!r} must not be a bool")
        if isinstance(value, float) and not value.is_integer():
            raise JobValidationError(f"{kind}: parameter {name!r} must be an integer")
        coerced[name] = int(value) if isinstance(value, float) else value
    try:
        job = entry.cls(**coerced)
    except TypeError as error:
        raise JobValidationError(f"{kind}: {error}") from None
    validate_job(job)
    return job


def wire_payload(job: Any, payload: Any) -> dict:
    """The payload as a JSON-serializable summary for the wire."""
    entry = job_type_of(job)
    if entry.wire_summary is not None:
        return entry.wire_summary(job, payload)
    return {"repr": repr(payload)}


# ---------------------------------------------------------------------------
# Built-in job types
# ---------------------------------------------------------------------------


def _require_positive(job: Any, *field_names: str) -> None:
    for name in field_names:
        value = getattr(job, name)
        if value is not None and value <= 0:
            raise JobValidationError(f"{name} must be positive, got {value}")


def _require_workload(name: str) -> None:
    from ..workloads.registry import available_workloads

    if name not in available_workloads():
        raise JobValidationError(f"unknown workload: {name!r}")


def _validate_named(job: Any) -> None:
    _require_workload(job.name)
    _require_positive(job, "num_requests", "interval")


def _execute_dram(job: DramJob) -> Any:
    from ..eval import comparison

    return comparison.dram_comparison(
        job.name,
        job.num_requests,
        seed=job.seed,
        interval=job.interval,
        include_stm=job.include_stm,
    )


def _dram_cache_key(job: DramJob) -> Tuple:
    return (job.name, job.num_requests, job.seed, job.interval, job.include_stm, None)


def _install_dram(job: DramJob, payload: Any) -> None:
    from ..eval import comparison

    comparison._run_cache[_dram_cache_key(job)] = payload


def _cached_dram(job: DramJob) -> bool:
    from ..eval import comparison

    return _dram_cache_key(job) in comparison._run_cache


def _stats_summary(stats: Any) -> dict:
    """The Fig. 6/7/9 metric slice of one ``MemorySystemStats``."""
    return {
        "read_bursts": stats.read_bursts,
        "write_bursts": stats.write_bursts,
        "read_row_hits": stats.read_row_hits,
        "write_row_hits": stats.write_row_hits,
        "avg_read_queue_length": stats.avg_read_queue_length,
        "avg_write_queue_length": stats.avg_write_queue_length,
        "avg_access_latency": stats.avg_access_latency,
    }


def _wire_dram(job: DramJob, payload: Any) -> dict:
    result = {
        "name": payload.name,
        "device": payload.device,
        "num_requests": payload.num_requests,
        "interval": payload.interval,
        "baseline": _stats_summary(payload.baseline),
        "mcc": _stats_summary(payload.mcc),
    }
    if payload.stm is not None:
        result["stm"] = _stats_summary(payload.stm)
    return result


def _execute_spec(job: SpecJob) -> Any:
    from ..eval import experiments

    return experiments.spec_synthetics(job.benchmark, job.num_requests, job.seed)


def _install_spec(job: SpecJob, payload: Any) -> None:
    from ..eval import experiments

    experiments._SPEC_SYNTH_CACHE[(job.benchmark, job.num_requests, job.seed)] = payload


def _cached_spec(job: SpecJob) -> bool:
    from ..eval import experiments

    return (job.benchmark, job.num_requests, job.seed) in experiments._SPEC_SYNTH_CACHE


def _execute_size(job: SizeJob) -> Any:
    from ..eval import experiments

    return experiments.spec_size_record(job.benchmark, job.num_requests)


def _install_size(job: SizeJob, payload: Any) -> None:
    from ..eval import experiments

    experiments._SPEC_SIZE_CACHE[(job.benchmark, job.num_requests)] = payload


def _cached_size(job: SizeJob) -> bool:
    from ..eval import experiments

    return (job.benchmark, job.num_requests) in experiments._SPEC_SIZE_CACHE


def _sample_cache_key(job: SampleJob) -> Tuple:
    return (job.name, job.num_requests, job.seed, job.interval, job.k, job.sample_seed)


def _execute_sample(job: SampleJob) -> Any:
    from ..eval import experiments

    return experiments.sampling_report_for(
        job.name,
        job.num_requests,
        seed=job.seed,
        interval=job.interval,
        k=job.k,
        sample_seed=job.sample_seed,
    )


def _install_sample(job: SampleJob, payload: Any) -> None:
    from ..eval import experiments

    experiments._SAMPLING_CACHE[_sample_cache_key(job)] = payload


def _cached_sample(job: SampleJob) -> bool:
    from ..eval import experiments

    return _sample_cache_key(job) in experiments._SAMPLING_CACHE


def _validate_sample(job: SampleJob) -> None:
    _validate_named(job)
    _require_positive(job, "k")


def _wire_sample(job: SampleJob, payload: Any) -> dict:
    # sampling_report_for already returns a flat JSON-ready dict.
    return dict(payload)


def _profile_inputs(job: Union[ProfileJob, SynthesizeJob]) -> Tuple[Any, Any]:
    from ..core.hierarchy import two_level_ts
    from ..core.profiler import build_profile
    from ..eval.comparison import baseline_trace

    trace = baseline_trace(job.name, job.num_requests, job.seed)
    hierarchy = two_level_ts(cycles_per_interval=job.interval)
    return trace, build_profile(trace, hierarchy, name=job.name)


def _profile_digest(profile: Any) -> str:
    from ..core.serialization import profile_to_dict

    canonical = json.dumps(profile_to_dict(profile), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _execute_profile(job: ProfileJob) -> dict:
    from ..core.serialization import profile_size_bytes

    _, profile = _profile_inputs(job)
    leaves = list(profile)
    return {
        "name": job.name,
        "num_requests": job.num_requests,
        "interval": job.interval,
        "leaves": len(leaves),
        "profiled_requests": sum(leaf.count for leaf in leaves),
        "profile_bytes": profile_size_bytes(profile),
        "sha256": _profile_digest(profile),
    }


def _trace_digest(trace: Any) -> str:
    digest = hashlib.sha256()
    for request in trace:
        record = (
            f"{request.timestamp},{request.address},"
            f"{request.operation.value},{request.size}\n"
        )
        digest.update(record.encode("ascii"))
    return digest.hexdigest()


def _execute_synthesize(job: SynthesizeJob) -> dict:
    from ..core.synthesis import synthesize

    _, profile = _profile_inputs(job)
    synthetic = synthesize(profile, seed=job.synthesis_seed)
    requests = list(synthetic)
    reads = sum(1 for request in requests if request.operation.name == "READ")
    duration = requests[-1].timestamp - requests[0].timestamp if requests else 0
    return {
        "name": job.name,
        "num_requests": job.num_requests,
        "interval": job.interval,
        "synthesis_seed": job.synthesis_seed,
        "synthetic_requests": len(requests),
        "reads": reads,
        "writes": len(requests) - reads,
        "duration_cycles": duration,
        "sha256": _trace_digest(synthetic),
    }


def _wire_dict(job: Any, payload: dict) -> dict:
    return dict(payload)


register_job_type(
    DramJob,
    executor=_execute_dram,
    installer=_install_dram,
    cached_check=_cached_dram,
    wire_kind="evaluate",
    validator=_validate_named,
    wire_summary=_wire_dram,
)
register_job_type(
    SpecJob,
    executor=_execute_spec,
    installer=_install_spec,
    cached_check=_cached_spec,
)
register_job_type(
    SizeJob,
    executor=_execute_size,
    installer=_install_size,
    cached_check=_cached_size,
)
register_job_type(
    SampleJob,
    executor=_execute_sample,
    installer=_install_sample,
    cached_check=_cached_sample,
    wire_kind="sample",
    validator=_validate_sample,
    wire_summary=_wire_sample,
)
register_job_type(
    ProfileJob,
    executor=_execute_profile,
    wire_kind="profile",
    validator=_validate_named,
    wire_summary=_wire_dict,
)
register_job_type(
    SynthesizeJob,
    executor=_execute_synthesize,
    wire_kind="synthesize",
    validator=_validate_named,
    wire_summary=_wire_dict,
)
