"""Worker-pool construction shared by every fan-out in the repo.

Moved here from ``repro.eval.parallel`` so the streaming profiler's
shard fan-out, the experiment prewarm and the service scheduler all
build identical pools: fork-preferred (cheap workers), observability
disabled in children (their registries would die with the process and a
forked JSONL handle would interleave with the parent's stream).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional


def default_processes() -> int:
    """Worker count when none is given: all cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _worker_init() -> None:
    from .. import obs

    obs.disable()


def make_pool(
    processes: int, start_method: Optional[str] = None
) -> ProcessPoolExecutor:
    """A worker pool with the repo's standard setup (observability
    disabled in workers).

    ``start_method=None`` keeps the historical fork-preferred default —
    right for pools built from a single-threaded main (stream shards,
    prewarm). Multi-threaded callers (the scheduler) must pass
    ``"forkserver"`` or ``"spawn"``: forking a threaded process copies
    lock state mid-flight and the child can deadlock on first acquire.
    An unavailable requested method falls back to ``spawn``, which every
    platform supports.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        # fork (where available) keeps workers cheap; spawn works too
        # because jobs and payloads are plain picklable dataclasses.
        chosen = "fork" if "fork" in methods else "spawn"
    else:
        chosen = start_method if start_method in methods else "spawn"
    context = multiprocessing.get_context(chosen)
    return ProcessPoolExecutor(
        max_workers=processes, mp_context=context, initializer=_worker_init
    )
