"""Worker-pool construction shared by every fan-out in the repo.

Moved here from ``repro.eval.parallel`` so the streaming profiler's
shard fan-out, the experiment prewarm and the service scheduler all
build identical pools: fork-preferred (cheap workers), observability
disabled in children (their registries would die with the process and a
forked JSONL handle would interleave with the parent's stream).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor


def default_processes() -> int:
    """Worker count when none is given: all cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _worker_init() -> None:
    from .. import obs

    obs.disable()


def make_pool(processes: int) -> ProcessPoolExecutor:
    """A worker pool with the repo's standard setup (fork-preferred,
    observability disabled in workers)."""
    # fork (where available) keeps workers cheap; spawn works too because
    # jobs and payloads are plain picklable dataclasses.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(
        max_workers=processes, mp_context=context, initializer=_worker_init
    )
