"""Batch prewarm: fan a job list across the pool, merge into caches.

Moved from ``repro.eval.parallel`` (which remains the thin experiment
client re-exporting it): the logic is unchanged — same counters, same
events, same per-key lock protocol — but now dispatches through the
:mod:`repro.engine.jobs` registry, so any registered job type prewarms
the same way the experiment types do.

Determinism contract (inherited from the original module): every job
carries its seeds explicitly, so a worker process reproduces exactly
the computation the serial path would have run; figure results after a
parallel prewarm are bit-identical to serial execution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import obs, store
from .jobs import execute_job, install, is_cached
from .pool import default_processes, make_pool


def _fetch_memoized(jobs: List, memo) -> List:
    """Install disk-memoized results; returns the jobs still to compute."""
    registry = obs.active()
    remaining = []
    for job in jobs:
        payload = memo.fetch(job)
        if payload is None:
            remaining.append(job)
        else:
            install(job, payload)
            if registry is not None:
                registry.counter("eval.jobs.memoized").inc()
    return remaining


def _partition_by_lock(todo: List, memo) -> Tuple[List[Tuple], List]:
    """Try to claim each job's compute lock without blocking.

    Returns ``(claimed, contended)``: jobs whose lock we now hold (we
    compute them) and jobs another process is already computing (we wait
    for its result instead of duplicating the work).
    """
    claimed: List[Tuple] = []
    contended: List = []
    for job in todo:
        lock = memo.lock(job)
        if lock.acquire(block=False):
            claimed.append((job, lock))
        else:
            contended.append(job)
    return claimed, contended


def _execute_and_install(todo: List, processes: int, memo) -> None:
    """Run ``todo`` (serially or via the pool), installing and memoizing."""
    registry = obs.active()
    serial = processes <= 1 or len(todo) == 1
    if registry is not None:
        registry.counter("eval.jobs.executed").inc(len(todo))
        registry.event(
            "prewarm.start",
            total=len(todo),
            processes=1 if serial else min(processes, len(todo)),
        )
    if serial:
        results = map(execute_job, todo)
    else:
        pool = make_pool(min(processes, len(todo)))
        results = pool.map(execute_job, todo)
    try:
        completed = 0
        for job, payload in results:
            install(job, payload)
            if memo is not None:
                memo.store(job, payload)
            completed += 1
            if registry is not None:
                registry.event(
                    "worker.heartbeat",
                    completed=completed,
                    total=len(todo),
                    job=type(job).__name__,
                )
    finally:
        if not serial:
            pool.shutdown()
    if registry is not None:
        registry.event("prewarm.finish", total=len(todo))


def prewarm(jobs: Sequence, processes: Optional[int] = None) -> int:
    """Execute ``jobs`` and merge the results into the runner caches.

    With ``processes`` <= 1 the jobs run serially in this process (still
    warming the caches, so the figure call afterwards is identical
    either way). Returns the number of jobs actually executed — jobs
    whose results are already in the in-process caches, memoized on
    disk (:func:`repro.store.active_memo`), or computed concurrently by
    another process holding the per-key lock are skipped.
    """
    jobs = list(dict.fromkeys(jobs))
    todo = [job for job in jobs if not is_cached(job)]
    registry = obs.active()
    if registry is not None:
        registry.counter("eval.jobs.cached").inc(len(jobs) - len(todo))
    memo = store.active_memo()
    if todo and memo is not None:
        todo = _fetch_memoized(todo, memo)
    if not todo:
        return 0
    processes = default_processes() if processes is None else processes

    if memo is None:
        _execute_and_install(todo, processes, None)
        return len(todo)

    # Per-key lock protocol: claim what we can, compute only that, and
    # wait-then-fetch what a concurrent run is already computing.
    claimed, contended = _partition_by_lock(todo, memo)
    executed = 0
    try:
        if claimed:
            _execute_and_install([job for job, _ in claimed], processes, memo)
            executed += len(claimed)
    finally:
        for _, lock in claimed:
            lock.release()
    for job in contended:
        memo.lock(job).wait_released()
        payload = memo.fetch(job)
        if payload is not None:
            install(job, payload)
            continue
        # The other holder died or failed: compute it ourselves, under
        # the lock so yet another waiter doesn't duplicate the work.
        with memo.lock(job):
            payload = memo.fetch(job)
            if payload is None:
                _execute_and_install([job], 1, memo)
                executed += 1
            else:
                install(job, payload)
    return executed
