"""SoC tool: run a multi-device simulation from the command line.

Examples::

    python -m repro.tools.soc run --device cpu=crypto1 --device gpu=trex1 \\
        --requests 8000 --seed 1
    python -m repro.tools.soc run --device dpu=fbc-linear1 --chargecache \\
        --channels 2

Devices may also be profile files: ``--device ip=path/to/profile.mprof.gz``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..core.profiler import build_profile
from ..core.serialization import load_profile
from ..dram.chargecache import ChargeCacheConfig
from ..dram.config import MemoryConfig
from ..eval.reporting import format_table
from ..sim.multi_device import run_soc
from ..workloads.registry import available_workloads, workload_trace


def _parse_device(spec: str):
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"device spec must be name=workload-or-profile, got {spec!r}"
        )
    name, source = spec.split("=", 1)
    if not name:
        raise argparse.ArgumentTypeError("device name must be non-empty")
    return name, source


def _resolve_source(source: str, requests: int, seed: int):
    if source in available_workloads():
        trace = workload_trace(source, num_requests=requests, seed=seed)
        return build_profile(trace, name=source)
    path = Path(source)
    if path.exists():
        return load_profile(path)
    raise ValueError(
        f"{source!r} is neither a registered workload nor a profile file"
    )


def cmd_run(args: argparse.Namespace) -> int:
    if not args.device:
        print("at least one --device is required", file=sys.stderr)
        return 1
    try:
        devices = {
            name: _resolve_source(source, args.requests, args.seed + index)
            for index, (name, source) in enumerate(args.device)
        }
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1

    config = MemoryConfig(
        num_channels=args.channels,
        charge_cache=ChargeCacheConfig() if args.chargecache else None,
    )
    result = run_soc(devices, config=config, seed=args.seed)

    shares = result.bandwidth_share()
    rows = [
        [
            name,
            stats.requests,
            stats.reads,
            stats.writes,
            stats.avg_access_latency,
            shares[name] * 100,
        ]
        for name, stats in sorted(result.devices.items())
    ]
    print(format_table(
        ["device", "requests", "reads", "writes", "avg latency", "bw %"], rows
    ))
    memory = result.memory
    print(
        f"\nmemory: {memory.read_bursts:,} rd bursts ({memory.read_row_hits:,} row hits), "
        f"{memory.write_bursts:,} wr bursts ({memory.write_row_hits:,} row hits), "
        f"avg latency {memory.avg_access_latency:,.1f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.soc",
        description="Run a multi-device SoC simulation from profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run a SoC simulation")
    run.add_argument(
        "--device", action="append", type=_parse_device, default=[],
        metavar="NAME=SOURCE",
        help="a device: NAME=<workload name or profile path>; repeatable",
    )
    run.add_argument("--requests", type=int, default=8_000,
                     help="requests per device for workload sources")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--channels", type=int, default=4)
    run.add_argument("--chargecache", action="store_true",
                     help="enable the ChargeCache extension")
    run.set_defaults(func=cmd_run)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
