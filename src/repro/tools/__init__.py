"""Command-line tools: the boxes of the paper's Fig. 1.

* ``python -m repro.tools.trace`` — the *Trace Generator*: create,
  inspect and convert trace files.
* ``python -m repro.tools.profile`` — the *Model Generator* (and its
  academia-side counterpart): build profiles from traces, inspect them,
  synthesize traces from them.
"""
