"""Profile tool: build, inspect and replay statistical profiles.

Examples::

    python -m repro.tools.profile create hevc1.mtr.gz hevc1.mprof.gz \\
        --interval 500000 --spatial dynamic --anonymous
    python -m repro.tools.profile info hevc1.mprof.gz
    python -m repro.tools.profile synthesize hevc1.mprof.gz clone.mtr.gz --seed 7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..baselines.stm import stm_leaf_factory
from ..core.hierarchy import two_level_rs, two_level_ts
from ..core.inspect import format_summary, summarize_profile
from ..core.leaf import LeafModel
from ..core.profiler import build_profile
from ..core.serialization import load_profile, save_profile
from ..core.synthesis import synthesize
from .trace import load_any, save_any


def _hierarchy(args: argparse.Namespace):
    if args.temporal == "cycle_count":
        return two_level_ts(args.interval, spatial=args.spatial, block_size=args.block_size)
    return two_level_rs(args.interval, spatial=args.spatial, block_size=args.block_size)


def cmd_create(args: argparse.Namespace) -> int:
    trace = load_any(Path(args.trace))
    factory = stm_leaf_factory if args.leaf_model == "stm" else LeafModel.fit
    name = "" if args.anonymous else Path(args.trace).stem
    profile = build_profile(trace, _hierarchy(args), leaf_factory=factory, name=name)
    size = save_profile(profile, args.output)
    print(
        f"profiled {len(trace):,} requests into {len(profile):,} leaves "
        f"-> {args.output} ({size:,} bytes)"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    print(format_summary(summarize_profile(profile)))
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    trace = synthesize(profile, seed=args.seed, strict=not args.no_strict)
    size = save_any(trace, Path(args.output))
    print(f"synthesized {len(trace):,} requests -> {args.output} ({size:,} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.profile",
        description="Build, inspect and replay Mocktails profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    create = sub.add_parser("create", help="profile a trace")
    create.add_argument("trace")
    create.add_argument("output")
    create.add_argument("--temporal", choices=("cycle_count", "request_count"),
                        default="cycle_count")
    create.add_argument("--interval", type=int, default=500_000)
    create.add_argument("--spatial", choices=("dynamic", "fixed"), default="dynamic")
    create.add_argument("--block-size", type=int, default=4096)
    create.add_argument("--leaf-model", choices=("mcc", "stm"), default="mcc")
    create.add_argument("--anonymous", action="store_true",
                        help="do not record the workload name in the profile")
    create.set_defaults(func=cmd_create)

    info = sub.add_parser("info", help="summarize a profile")
    info.add_argument("profile")
    info.set_defaults(func=cmd_info)

    synthesize_cmd = sub.add_parser("synthesize", help="profile -> synthetic trace")
    synthesize_cmd.add_argument("profile")
    synthesize_cmd.add_argument("output")
    synthesize_cmd.add_argument("--seed", type=int, default=0)
    synthesize_cmd.add_argument("--no-strict", action="store_true",
                                help="disable strict convergence (sampled mode)")
    synthesize_cmd.set_defaults(func=cmd_synthesize)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
