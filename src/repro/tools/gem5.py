"""gem5 traffic-generator interop.

The paper's validation platform feeds traces into gem5's traffic
generator (Sec. IV-A, footnote 2: "our trace generator takes the
Mocktails profile and makes a synthetic trace that gets fed into gem5").
gem5's ``TrafficGen`` TRACE mode consumes a plain-text stream of

    <tick> <r|w> <address> <size>

lines (ticks in simulator time, one request per line). These helpers
export any :class:`Trace` — baseline or synthetic — to that format and
read it back, so this reproduction's profiles can drive a real gem5 run
unchanged (Fig. 1, Option A).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

from ..core.request import MemoryRequest, Operation
from ..core.trace import Trace

DEFAULT_TICKS_PER_CYCLE = 1000  # 1 GHz clock under gem5's 1 ps tick


def _open_text(path: Path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_gem5_trace(
    trace: Trace,
    path: Union[str, Path],
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE,
) -> int:
    """Write a gem5 TrafficGen TRACE-mode file; returns request count."""
    if ticks_per_cycle <= 0:
        raise ValueError("ticks_per_cycle must be positive")
    path = Path(path)
    count = 0
    with _open_text(path, "w") as handle:
        for request in trace:
            command = "r" if request.is_read else "w"
            handle.write(
                f"{request.timestamp * ticks_per_cycle} {command} "
                f"{request.address} {request.size}\n"
            )
            count += 1
    return count


def load_gem5_trace(
    path: Union[str, Path],
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE,
) -> Trace:
    """Read a gem5 TrafficGen TRACE-mode file back into a Trace."""
    if ticks_per_cycle <= 0:
        raise ValueError("ticks_per_cycle must be positive")
    requests = []
    with _open_text(Path(path), "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 4:
                raise ValueError(
                    f"{path}:{line_number}: expected 'tick cmd addr size', got {line!r}"
                )
            tick, command, address, size = fields
            if command not in ("r", "w"):
                raise ValueError(f"{path}:{line_number}: unknown command {command!r}")
            requests.append(
                MemoryRequest(
                    timestamp=int(tick) // ticks_per_cycle,
                    address=int(address),
                    operation=Operation.READ if command == "r" else Operation.WRITE,
                    size=int(size),
                )
            )
    return Trace(requests)
