"""Trace tool: generate, inspect and convert trace files.

Examples::

    python -m repro.tools.trace generate hevc1 hevc1.mtr.gz --requests 50000
    python -m repro.tools.trace info hevc1.mtr.gz
    python -m repro.tools.trace convert hevc1.mtr.gz hevc1.csv.gz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..core.trace import Trace
from ..workloads.registry import available_workloads, workload_trace


_CSV_SUFFIXES = (".csv", ".csv.gz")
_BINARY_SUFFIXES = (".mtr", ".mtr.gz")


def _unknown_suffix(path: Path) -> ValueError:
    known = ", ".join(_CSV_SUFFIXES + _BINARY_SUFFIXES)
    return ValueError(
        f"{path}: unrecognized trace suffix; expected one of: {known}"
    )


def load_any(path: Path) -> Trace:
    """Load a trace in either on-disk format, keyed by file suffix."""
    name = str(path)
    if name.endswith(_CSV_SUFFIXES):
        return Trace.load_csv(path)
    if name.endswith(_BINARY_SUFFIXES):
        return Trace.load_binary(path)
    raise _unknown_suffix(path)


def save_any(trace: Trace, path: Path) -> int:
    """Save in the format named by the suffix; returns bytes written."""
    name = str(path)
    if name.endswith(_CSV_SUFFIXES):
        return trace.save_csv(path)
    if name.endswith(_BINARY_SUFFIXES):
        return trace.save_binary(path)
    raise _unknown_suffix(path)


def cmd_generate(args: argparse.Namespace) -> int:
    if args.workload not in available_workloads():
        print(f"unknown workload {args.workload!r}; use 'list'", file=sys.stderr)
        return 1
    trace = workload_trace(args.workload, num_requests=args.requests, seed=args.seed)
    size = save_any(trace, Path(args.output))
    print(f"wrote {len(trace):,} requests to {args.output} ({size:,} bytes)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    trace = load_any(Path(args.trace))
    if not len(trace):
        print("empty trace")
        return 0
    address_range = trace.address_range()
    print(f"requests:    {len(trace):,}")
    print(f"reads:       {trace.read_count():,}")
    print(f"writes:      {trace.write_count():,}")
    print(f"bytes:       {trace.total_bytes():,}")
    print(f"duration:    {trace.duration:,} cycles")
    print(f"addresses:   0x{address_range.start:x} .. 0x{address_range.end:x}")
    print(f"sorted:      {trace.is_sorted()}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from ..workloads.characterize import characterize, format_character

    trace = load_any(Path(args.trace))
    print(format_character(characterize(trace)))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    trace = load_any(Path(args.input))
    size = save_any(trace, Path(args.output))
    print(f"converted {len(trace):,} requests -> {args.output} ({size:,} bytes)")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for name in available_workloads():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace",
        description="Generate, inspect and convert memory traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a workload trace")
    generate.add_argument("workload")
    generate.add_argument("output")
    generate.add_argument("--requests", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="print trace statistics")
    info.add_argument("trace")
    info.set_defaults(func=cmd_info)

    characterize = sub.add_parser(
        "characterize", help="print a Table II-style workload fingerprint"
    )
    characterize.add_argument("trace")
    characterize.set_defaults(func=cmd_characterize)

    convert = sub.add_parser(
        "convert", help="convert between .csv/.csv.gz and .mtr/.mtr.gz"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.set_defaults(func=cmd_convert)

    sub.add_parser("list", help="list available workloads").set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
