"""Trace tool: generate, inspect and convert trace files.

Examples::

    python -m repro.tools.trace generate hevc1 hevc1.mtr.gz --requests 50000
    python -m repro.tools.trace info hevc1.mtr.gz
    python -m repro.tools.trace convert hevc1.mtr.gz hevc1.csv.gz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..core.trace import Trace
from ..workloads.registry import available_workloads, workload_trace


_CSV_SUFFIXES = (".csv", ".csv.gz")
_BINARY_SUFFIXES = (".mtr", ".mtr.gz")


def _unknown_suffix(path: Path) -> ValueError:
    known = ", ".join(_CSV_SUFFIXES + _BINARY_SUFFIXES)
    return ValueError(
        f"{path}: unrecognized trace suffix; expected one of: {known}"
    )


def load_any(path: Path) -> Trace:
    """Load a trace in either on-disk format, keyed by file suffix."""
    name = str(path)
    if name.endswith(_CSV_SUFFIXES):
        return Trace.load_csv(path)
    if name.endswith(_BINARY_SUFFIXES):
        return Trace.load_binary(path)
    raise _unknown_suffix(path)


def save_any(trace: Trace, path: Path) -> int:
    """Save in the format named by the suffix; returns bytes written."""
    name = str(path)
    if name.endswith(_CSV_SUFFIXES):
        return trace.save_csv(path)
    if name.endswith(_BINARY_SUFFIXES):
        return trace.save_binary(path)
    raise _unknown_suffix(path)


def cmd_generate(args: argparse.Namespace) -> int:
    if args.workload not in available_workloads():
        print(f"unknown workload {args.workload!r}; use 'list'", file=sys.stderr)
        return 1
    trace = workload_trace(args.workload, num_requests=args.requests, seed=args.seed)
    size = save_any(trace, Path(args.output))
    print(f"wrote {len(trace):,} requests to {args.output} ({size:,} bytes)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    # One streamed pass (repro.stream): every statistic below is a
    # per-block reduction, so arbitrarily large traces fit in O(block).
    from ..stream import iter_blocks

    total = writes = total_bytes = 0
    start_time = end_time = None
    addr_lo = addr_hi = None
    is_sorted = True
    previous_ts = None
    for block in iter_blocks(Path(args.trace)):
        timestamps = block.timestamps.tolist()
        addresses = block.addresses.tolist()
        sizes = block.sizes.tolist()
        total += len(timestamps)
        writes += sum(block.ops.tolist())
        total_bytes += sum(sizes)
        lo, hi = min(timestamps), max(timestamps)
        start_time = lo if start_time is None else min(start_time, lo)
        end_time = hi if end_time is None else max(end_time, hi)
        block_lo = min(addresses)
        block_hi = max(a + s for a, s in zip(addresses, sizes))
        addr_lo = block_lo if addr_lo is None else min(addr_lo, block_lo)
        addr_hi = block_hi if addr_hi is None else max(addr_hi, block_hi)
        if is_sorted:
            if previous_ts is not None and timestamps[0] < previous_ts:
                is_sorted = False
            else:
                is_sorted = all(
                    timestamps[i] <= timestamps[i + 1]
                    for i in range(len(timestamps) - 1)
                )
        previous_ts = timestamps[-1]
    if not total:
        print("empty trace")
        return 0
    print(f"requests:    {total:,}")
    print(f"reads:       {total - writes:,}")
    print(f"writes:      {writes:,}")
    print(f"bytes:       {total_bytes:,}")
    print(f"duration:    {end_time - start_time:,} cycles")
    print(f"addresses:   0x{addr_lo:x} .. 0x{addr_hi:x}")
    print(f"sorted:      {is_sorted}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from ..workloads.characterize import characterize, format_character

    trace = load_any(Path(args.trace))
    print(format_character(characterize(trace)))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    # Block-by-block copy (repro.stream): output bytes are identical to
    # load-then-save, but peak memory stays O(block).
    from ..stream import TraceBlockWriter, iter_blocks

    with TraceBlockWriter(Path(args.output)) as writer:
        for block in iter_blocks(Path(args.input)):
            writer.write_block(block)
    print(
        f"converted {writer.requests_written:,} requests -> {args.output} "
        f"({writer.bytes_written:,} bytes)"
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for name in available_workloads():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace",
        description="Generate, inspect and convert memory traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a workload trace")
    generate.add_argument("workload")
    generate.add_argument("output")
    generate.add_argument("--requests", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="print trace statistics")
    info.add_argument("trace")
    info.set_defaults(func=cmd_info)

    characterize = sub.add_parser(
        "characterize", help="print a Table II-style workload fingerprint"
    )
    characterize.add_argument("trace")
    characterize.set_defaults(func=cmd_characterize)

    convert = sub.add_parser(
        "convert", help="convert between .csv/.csv.gz and .mtr/.mtr.gz"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.set_defaults(func=cmd_convert)

    sub.add_parser("list", help="list available workloads").set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
