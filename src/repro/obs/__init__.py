"""``repro.obs`` — observability for the simulation stack.

A lightweight metrics/tracing subsystem threaded through the hot layers
(synthesis, crossbar, DRAM controller, caches, the experiment runners):

* :class:`MetricsRegistry` — named counters, gauges, histograms and
  phase timers with context-manager scoping;
* :class:`JsonlEventSink` — optional structured-event stream (JSONL);
* :func:`build_manifest` / :func:`write_manifest` — run manifests
  (host info, seeds, scale, per-phase wall time, all registry values).

Observability is **off by default and zero-cost when off**: the
process-wide registry (:func:`active`) is ``None`` until :func:`enable`
is called, and every instrumentation site reduces to a single
``is None`` test on the disabled path. Enabling never perturbs
simulation results — instrumentation only reads state, so figure stats
are bit-identical either way.

Usage::

    from repro import obs

    registry = obs.enable(obs.JsonlEventSink("events.jsonl"))
    with registry.phase("fig6"):
        figure_6(20_000)
    obs.write_manifest("run.json", obs.build_manifest(registry))
    obs.disable()
"""

from .clock import wall_time
from .events import EventSink, JsonlEventSink, MemoryEventSink
from .manifest import build_manifest, host_info, write_manifest
from .memory import PeakMemoryTracker, measure_peak_memory
from .registry import (
    Counter,
    Gauge,
    Histogram,
    JobTimer,
    MetricsRegistry,
    QueueGauges,
    active,
    disable,
    enable,
    job_timer,
    phase,
    queue_gauges,
)

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JobTimer",
    "JsonlEventSink",
    "MemoryEventSink",
    "MetricsRegistry",
    "PeakMemoryTracker",
    "QueueGauges",
    "active",
    "build_manifest",
    "disable",
    "enable",
    "host_info",
    "job_timer",
    "measure_peak_memory",
    "phase",
    "queue_gauges",
    "wall_time",
    "write_manifest",
]
