"""Run manifests: one JSON document describing a whole run.

A manifest captures everything needed to interpret (and re-run) a run:
host information, the command and scale, the seeds, per-phase wall
times and every registry value. ``python -m repro.eval ...
--metrics-out run.json`` writes one; ``scripts/bench.sh`` records one
alongside ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Optional, Union

from ..store.atomic import atomic_write_text
from .registry import MetricsRegistry

MANIFEST_SCHEMA = 1


def host_info() -> dict:
    """Host facts that affect timings and parallel behaviour."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def build_manifest(
    registry: MetricsRegistry,
    command: Optional[str] = None,
    scale: Optional[dict] = None,
    seeds: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a manifest dict from a registry plus run context."""
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": "mocktails-run-manifest",
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_info(),
        "command": command,
        "scale": scale or {},
        "seeds": seeds or {},
        "phases_seconds": {
            name: round(seconds, 6) for name, seconds in sorted(registry.phases.items())
        },
        "metrics": registry.snapshot(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, Path], manifest: dict) -> Path:
    """Write a manifest as stable, human-diffable JSON; returns the path.

    The write is atomic (temp file + ``os.replace``), so a run killed
    mid-write never leaves a truncated manifest behind.
    """
    path = Path(path)
    atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
