"""Structured event sinks for the observability layer.

Events are flat JSON objects with at least a ``type`` key and a wall
clock ``t``; the JSONL sink streams one object per line so a run can be
tailed live (``tail -f events.jsonl | jq .``) and parsed with nothing
but the standard library.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, List, Optional, Union


class EventSink:
    """Interface: receive structured event dicts."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface default
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JsonlEventSink(EventSink):
    """Append events to a JSON-lines file, one flushed line per event.

    Each event is written with a single ``write`` call and flushed
    immediately, so a crashed or killed run keeps every event up to the
    failure point — the whole reason to stream instead of dumping at
    exit. Scheduler workers and the service loop share one sink, so
    ``emit`` serializes under a lock: without it two lines can
    interleave mid-buffer and the ``emitted`` tally drops updates.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        # Streaming sink: atomicity is meaningless for a tail-able log
        # that must survive a crash mid-run.
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")  # lint: ignore[io-atomic-write]
        self.emitted = 0
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            handle = self._handle
            if handle is None:
                raise ValueError(f"{self.path}: sink is closed")
            handle.write(line)
            handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class MemoryEventSink(EventSink):
    """Collect events in a list — for tests and in-process consumers.

    ``list.append`` is atomic under the GIL, so a lock-free sink stays
    correct for concurrent emitters; tests that assert on ordering run
    single-threaded.
    """

    def __init__(self) -> None:
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> List[dict]:
        return [event for event in self.events if event.get("type") == event_type]
