"""Metrics registry: counters, gauges, histograms and phase timers.

The registry is the in-process half of the observability layer
(``repro.obs``). Instrumented code grabs the *active* registry once (at
construction or at the top of a run) via :func:`active` and holds on to
handle objects; the handles are plain ``__slots__`` objects whose update
methods are one short critical section, so instrumentation stays cheap
when enabled while staying exact under the engine/service layer's
thread concurrency (``x += 1`` is a LOAD/ADD/STORE triple under the
GIL and loses updates when preempted mid-read).

When no registry is active, :func:`active` returns ``None`` and every
instrumentation site degrades to one ``is None`` test — the disabled
path allocates nothing and calls nothing, which is what keeps figure
stats bit-identical and the replay hot loop at full speed.

Structured events (see :mod:`repro.obs.events`) ride on the same
registry: :meth:`MetricsRegistry.event` forwards to the attached sink,
and is a no-op when no sink is attached.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Optional

from .events import EventSink


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins; deltas are exact)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        """Atomic read-modify-write; use for +=/-= style updates."""
        with self._lock:
            self.value += delta


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max).

    Keeps O(1) state rather than the raw samples: the consumers
    (manifest, dashboards) want distribution summaries, and the
    producers (queue-depth sampling per enqueued burst) are hot.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` observations of the same ``value`` at once.

        The batched replay engine's bulk twin of calling
        :meth:`observe` in a loop: identical resulting summary, one
        critical section.
        """
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += value * count
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def observe_summary(
        self, count: int, total: float, minimum: float, maximum: float
    ) -> None:
        """Merge a precomputed summary of ``count`` observations.

        Equivalent to observing each underlying sample individually as
        long as the caller's (count, total, min, max) are exact — which
        integer-valued columns below 2**53 guarantee.
        """
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += total
            if self.min is None or minimum < self.min:
                self.min = minimum
            if self.max is None or maximum > self.max:
                self.max = maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class QueueGauges:
    """Paired ``queue_depth``/``inflight`` gauges for one bounded queue.

    The service layer's two load signals as one handle: how many jobs
    are waiting (``<prefix>.queue_depth``) and how many are executing
    (``<prefix>.inflight``). Updates go through :meth:`Gauge.add` —
    the queue is fed from the submitting thread and drained by workers,
    so the read-modify-write must be atomic; construct via
    :func:`queue_gauges`, which returns ``None`` when observability is
    off (the zero-cost disabled path).
    """

    __slots__ = ("depth", "inflight")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self.depth = registry.gauge(f"{prefix}.queue_depth")
        self.inflight = registry.gauge(f"{prefix}.inflight")

    def enqueued(self) -> None:
        self.depth.add(1)

    def dequeued(self) -> None:
        """A queued item left without running (rejected late / cancelled)."""
        self.depth.add(-1)

    def started(self) -> None:
        self.depth.add(-1)
        self.inflight.add(1)

    def finished(self) -> None:
        self.inflight.add(-1)


class JobTimer:
    """Context manager timing one job: histogram + accumulated phase.

    Records the elapsed wall time into the ``<name>.seconds`` histogram
    (count/sum/min/max/mean across jobs of that name) and accumulates
    it into the ``<name>`` phase total, so both the distribution and
    the aggregate land in manifests without hand-rolled timing code.
    Construct via :func:`job_timer`, which returns ``None`` when
    observability is off.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "JobTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry.histogram(f"{self._name}.seconds").observe(elapsed)
        self._registry.add_phase_time(self._name, elapsed)


class _PhaseScope:
    """Context manager recording wall time for one phase entry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseScope":
        self._start = time.perf_counter()
        self._registry.event("phase.start", phase=self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry.add_phase_time(self._name, elapsed)
        self._registry.event("phase.end", phase=self._name, seconds=round(elapsed, 6))


class MetricsRegistry:
    """Named counters/gauges/histograms plus per-phase wall-clock timers.

    Get-or-create and phase accumulation are guarded by ``_lock`` — the
    scheduler's worker threads and the service's event loop both mint
    handles by name, and an unguarded ``dict.get``/store pair can hand
    two racing callers two different handles for the same name (one of
    which then silently drops every update).
    """

    __slots__ = ("sink", "_counters", "_gauges", "_histograms", "_phases",
                 "_started_at", "_lock")

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self.sink = sink
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phases: Dict[str, float] = {}
        self._started_at = time.time()
        self._lock = threading.Lock()

    # -- handles ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            handle = self._counters.get(name)
            if handle is None:
                self._counters[name] = handle = Counter()
        return handle

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            handle = self._gauges.get(name)
            if handle is None:
                self._gauges[name] = handle = Gauge()
        return handle

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            handle = self._histograms.get(name)
            if handle is None:
                self._histograms[name] = handle = Histogram()
        return handle

    # -- phases -------------------------------------------------------------

    def phase(self, name: str) -> _PhaseScope:
        """Context manager accumulating wall time under ``name``."""
        return _PhaseScope(self, name)

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Record externally measured wall time (e.g. bench timings)."""
        with self._lock:
            self._phases[name] = self._phases.get(name, 0.0) + seconds

    @property
    def phases(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._phases)

    # -- events -------------------------------------------------------------

    def event(self, event_type: str, **fields: object) -> None:
        """Emit a structured event to the sink; no-op without a sink."""
        sink = self.sink
        if sink is None:
            return
        record: Dict[str, object] = {"type": event_type, "t": round(time.time(), 6)}
        record.update(fields)
        sink.emit(record)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """All registry values as plain JSON-serializable dicts."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            phases = sorted(self._phases.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.to_dict() for name, h in histograms},
            "phases_seconds": {
                name: round(seconds, 6) for name, seconds in phases
            },
        }

    def counters(self) -> Iterator[tuple]:
        with self._lock:
            pairs = [(name, c.value) for name, c in self._counters.items()]
        return iter(sorted(pairs))

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
            self.sink = None


# ---------------------------------------------------------------------------
# Process-wide active registry
# ---------------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The process-wide registry, or ``None`` when observability is off."""
    return _active


def enable(sink: Optional[EventSink] = None) -> MetricsRegistry:
    """Install (and return) a fresh process-wide registry.

    Instrumented objects capture the active registry when *constructed*,
    so enable observability before building the simulation stack.
    """
    global _active
    _active = MetricsRegistry(sink)
    return _active


def disable() -> None:
    """Tear down the process-wide registry (closing any event sink)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def queue_gauges(prefix: str) -> Optional[QueueGauges]:
    """A :class:`QueueGauges` pair on the active registry, or ``None``.

    The ``None`` return is the whole disabled path — call sites keep
    the repo-standard single ``is None`` test and pay nothing when
    observability is off.
    """
    registry = _active
    return QueueGauges(registry, prefix) if registry is not None else None


def job_timer(name: str) -> Optional[JobTimer]:
    """A :class:`JobTimer` on the active registry, or ``None`` when off."""
    registry = _active
    return JobTimer(registry, name) if registry is not None else None


class _NullScope:
    """No-op context manager: the disabled path of :func:`phase`."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


def phase(name: str):
    """A phase timer scope on the active registry; no-op scope when off.

    The replay drivers wrap their injection and drain stages in these so
    figure wall time can be attributed per phase. Timing never alters
    statistics, and the disabled path is one shared no-op object.
    """
    registry = _active
    if registry is not None:
        return registry.phase(name)
    return _NULL_SCOPE
