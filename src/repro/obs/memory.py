"""Peak-memory observation built on :mod:`tracemalloc`.

The streaming pipeline's whole point is an O(block) memory bound; this
module is how that bound is *measured* rather than asserted.
:class:`PeakMemoryTracker` brackets a region of code and reports the
peak Python allocation size inside it, feeding an ``obs`` gauge when
observability is enabled.

``tracemalloc`` tracks only Python-level allocations (numpy buffers
included — they go through the tracked allocator), which is exactly the
population the streaming refactor bounds. It is also deterministic and
cross-platform, unlike RSS, so benchmark numbers are comparable across
runs and machines. Tracking costs real time; trackers are therefore
explicit and scoped, never ambient.
"""

from __future__ import annotations

import tracemalloc
from typing import Optional

from .registry import active

__all__ = ["PeakMemoryTracker", "measure_peak_memory"]


class PeakMemoryTracker:
    """Context manager measuring peak traced allocations in a region.

    On exit, :attr:`peak_bytes` holds the high-water mark of Python
    allocations made inside the ``with`` block, and the value is pushed
    to the ``<name>`` gauge on the active registry (if any). If
    tracemalloc was already running (e.g. an enclosing tracker), the
    peak counter is reset on entry and tracing is left running on exit;
    otherwise tracing is started and stopped by this tracker.
    """

    def __init__(self, name: str = "memory.peak_bytes"):
        self.name = name
        self.peak_bytes: Optional[int] = None
        self._started_here = False

    def __enter__(self) -> "PeakMemoryTracker":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            self._started_here = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _, peak = tracemalloc.get_traced_memory()
        if self._started_here:
            tracemalloc.stop()
        self.peak_bytes = peak
        registry = active()
        if registry is not None:
            registry.gauge(self.name).set(peak)


def measure_peak_memory(func, *args, **kwargs):
    """Run ``func(*args, **kwargs)`` and return ``(result, peak_bytes)``."""
    with PeakMemoryTracker() as tracker:
        result = func(*args, **kwargs)
    return result, tracker.peak_bytes
