"""The one sanctioned wall-clock accessor.

``repro.lint`` bans ``time.time()`` / ``datetime.now()`` outside
``repro.obs`` so that simulation and storage code cannot make results
depend on when a run happened. Code that legitimately needs the wall
clock (event timestamps, stale-lock aging) calls :func:`wall_time`
instead — one choke point, trivially monkeypatchable in tests. Elapsed
time measurement should use ``time.perf_counter`` directly, which the
linter allows everywhere.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the epoch, as ``time.time()``."""
    return time.time()
