"""Incremental lint cache: per-file analyses memoized on disk.

Warm ``python -m repro.lint`` runs re-parse only the files whose bytes
changed. Each entry stores one :class:`~repro.lint.engine.FileAnalysis`
(per-file findings pre-suppression, the module summary for the project
phase, the suppression table and statement spans) keyed on

* the sha256 of the file's contents,
* the rule-set fingerprint (every registered rule id), and
* the lint engine version,

so editing a file, adding a rule, or upgrading the engine each
invalidate exactly what they must and nothing else. The per-file
analysis is *cache-pure* by construction — it depends only on the
file's own bytes (see :mod:`repro.lint.graph`) — which is what makes
content-hash keying sound. Entries are written atomically through
:mod:`repro.store.atomic` so a crashed run never leaves a torn entry;
a corrupt or unreadable entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

from ..store import default_cache_dir
from ..store.atomic import atomic_write_text
from .engine import FileAnalysis, rule_fingerprint


def default_lint_cache_dir() -> Path:
    """Where lint analyses live: ``<repro cache>/lint``."""
    return default_cache_dir() / "lint"


class LintCache:
    """Content-addressed store of :class:`FileAnalysis` entries.

    The file *path* does not participate in the key — identical bytes
    analyzed under two paths would collide — so the stored analysis is
    revalidated against the requesting path and re-derived on mismatch
    (module names depend on the path). In practice paths are stable and
    this never costs anything.
    """

    __slots__ = ("root", "_fingerprint")

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_lint_cache_dir()
        self._fingerprint = hashlib.sha256(
            rule_fingerprint().encode("utf-8")
        ).hexdigest()[:16]

    def _entry_path(self, source: str) -> Path:
        content = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return self.root / self._fingerprint / f"{content}.json"

    def get(self, path: str, source: str) -> Optional[FileAnalysis]:
        """The cached analysis for these bytes, or ``None`` on a miss."""
        entry = self._entry_path(source)
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
            analysis = FileAnalysis.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if analysis.path != path:
            return None
        return analysis

    def put(self, path: str, source: str, analysis: FileAnalysis) -> None:
        """Persist an analysis; failures are non-fatal (cache is advisory)."""
        entry = self._entry_path(source)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                entry, json.dumps(analysis.to_dict(), sort_keys=True)
            )
        except OSError:
            pass
