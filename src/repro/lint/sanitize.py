"""Runtime sanitizers: invariant checks the AST linter cannot prove.

Two tools live here:

* :class:`TraceInvariantChecker` — validates every request flowing into
  a simulation driver (monotonic timestamps, non-negative aligned
  addresses, legal read/write operations, positive sizes). The sim
  drivers consult :func:`active` so one :func:`enable` call (or the
  ``--sanitize`` flag of ``python -m repro.eval``) turns checking on for
  every driver in the process; a driver-level ``sanitize=`` argument
  overrides per call.
* :func:`check_determinism` — the double-run harness behind
  ``python -m repro.lint --check-determinism``: runs one experiment
  twice in-process and diffs the canonical JSON of the results. Any
  leaked global state (an unseeded RNG, order-dependent accumulation)
  shows up as a byte diff.

Sanitizing never changes results: the checker only *observes* the
request stream, so a clean run produces bit-identical statistics with
checking on or off.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional, Tuple

from ..core.request import MemoryRequest, Operation


class InvariantViolation(RuntimeError):
    """A request stream broke a simulation invariant."""


class TraceInvariantChecker:
    """Validates a time-ordered request stream as it flows past.

    Parameters:
        alignment: required address alignment in bytes (1 = any address).
        max_address: exclusive upper bound on ``request.end_address``
            (``None`` = unbounded).
        require_monotonic: require non-decreasing timestamps — the
            contract every driver's merge logic assumes.
        label: stream name used in violation messages.
    """

    __slots__ = ("alignment", "max_address", "require_monotonic", "label",
                 "checked", "_last_timestamp")

    def __init__(
        self,
        alignment: int = 1,
        max_address: Optional[int] = None,
        require_monotonic: bool = True,
        label: str = "trace",
    ) -> None:
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        self.alignment = alignment
        self.max_address = max_address
        self.require_monotonic = require_monotonic
        self.label = label
        self.checked = 0
        self._last_timestamp: Optional[int] = None

    def _fail(self, index: int, message: str) -> None:
        raise InvariantViolation(f"{self.label}[{index}]: {message}")

    def check(self, request: MemoryRequest) -> MemoryRequest:
        """Validate one request; returns it unchanged, raises on violation."""
        index = self.checked
        timestamp = request.timestamp
        if timestamp < 0:
            self._fail(index, f"negative timestamp {timestamp}")
        if (
            self.require_monotonic
            and self._last_timestamp is not None
            and timestamp < self._last_timestamp
        ):
            self._fail(
                index,
                f"timestamp {timestamp} goes backwards "
                f"(previous request at {self._last_timestamp})",
            )
        if request.address < 0:
            self._fail(index, f"negative address {request.address}")
        if self.alignment > 1 and request.address % self.alignment:
            self._fail(
                index,
                f"address 0x{request.address:x} not {self.alignment}-byte aligned",
            )
        if self.max_address is not None and request.end_address > self.max_address:
            self._fail(
                index,
                f"request [0x{request.address:x}, 0x{request.end_address:x}) "
                f"exceeds address space 0x{self.max_address:x}",
            )
        if request.size <= 0:
            self._fail(index, f"non-positive size {request.size}")
        operation = request.operation
        if operation is not Operation.READ and operation is not Operation.WRITE:
            self._fail(index, f"illegal operation {operation!r} (not READ/WRITE)")
        self._last_timestamp = timestamp
        self.checked += 1
        return request

    def watch(self, requests: Iterable[MemoryRequest]) -> Iterator[MemoryRequest]:
        """Yield ``requests`` unchanged, validating each one."""
        for request in requests:
            yield self.check(request)


# -- process-wide sanitize mode ---------------------------------------------

_ACTIVE_CONFIG: Optional[dict] = None


def enable(
    alignment: int = 1,
    max_address: Optional[int] = None,
    require_monotonic: bool = True,
) -> None:
    """Turn on sanitize mode for every sim driver in this process."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = {
        "alignment": alignment,
        "max_address": max_address,
        "require_monotonic": require_monotonic,
    }


def disable() -> None:
    """Turn sanitize mode back off."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = None


def active() -> bool:
    """Whether process-wide sanitize mode is on."""
    return _ACTIVE_CONFIG is not None


def make_checker(label: str) -> Optional[TraceInvariantChecker]:
    """A checker per the process-wide config, or ``None`` when off."""
    if _ACTIVE_CONFIG is None:
        return None
    return TraceInvariantChecker(label=label, **_ACTIVE_CONFIG)


# -- determinism double-run harness -----------------------------------------


def canonical_json(result: object) -> str:
    """Canonical serialized form used for determinism diffs."""
    from ..eval.__main__ import _json_sanitize

    return json.dumps(_json_sanitize(result), indent=2, sort_keys=True)


def check_determinism(
    experiment: str = "fig3", num_requests: int = 1000
) -> Tuple[bool, str, str]:
    """Run ``experiment`` twice and compare canonical JSON.

    Returns ``(identical, first_payload, second_payload)``. Runs happen
    in one process with identical seeds, so any divergence means hidden
    global state (unseeded RNG, mutation of shared caches, hash-order
    leakage into results).
    """
    from ..eval.__main__ import EXPERIMENTS

    if experiment not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    runner, _ = EXPERIMENTS[experiment]
    first = canonical_json(runner(num_requests))
    second = canonical_json(runner(num_requests))
    return first == second, first, second


def first_divergence(first: str, second: str) -> str:
    """Human-readable description of where two payloads first differ."""
    first_lines = first.splitlines()
    second_lines = second.splitlines()
    for number, (a, b) in enumerate(zip(first_lines, second_lines), start=1):
        if a != b:
            return f"line {number}: {a.strip()!r} != {b.strip()!r}"
    if len(first_lines) != len(second_lines):
        return (
            f"payload lengths differ: {len(first_lines)} vs "
            f"{len(second_lines)} lines"
        )
    return "payloads identical"
