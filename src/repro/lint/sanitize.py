"""Runtime sanitizers: invariant checks the AST linter cannot prove.

Four tools live here:

* :class:`TraceInvariantChecker` — validates every request flowing into
  a simulation driver (monotonic timestamps, non-negative aligned
  addresses, legal read/write operations, positive sizes). The sim
  drivers consult :func:`active` so one :func:`enable` call (or the
  ``--sanitize`` flag of ``python -m repro.eval``) turns checking on for
  every driver in the process; a driver-level ``sanitize=`` argument
  overrides per call.
* :class:`LockOrderChecker` — the runtime half of ``conc-lock-order``:
  records the lock-acquisition graph actually observed (per-thread held
  stacks feeding held→acquired edges) and flags a cycle the moment the
  closing edge is inserted — *before* the schedule that would deadlock
  on it ever runs. Enabled via :func:`enable_lock_order_check` (or
  ``serve --lock-order-check``); when off, :func:`make_lock` hands out
  plain ``threading.Lock`` objects, so the disabled path costs nothing.
* :class:`LoopStallMonitor` — the runtime half of
  ``conc-blocking-in-async``: a heartbeat callback on the service event
  loop measures scheduling lag; any callback (or accidental blocking
  call) that hogs the loop longer than the threshold delays the
  heartbeat and is recorded as a stall.
* :func:`check_determinism` — the double-run harness behind
  ``python -m repro.lint --check-determinism``: runs one experiment
  twice in-process and diffs the canonical JSON of the results. Any
  leaked global state (an unseeded RNG, order-dependent accumulation)
  shows up as a byte diff.

Sanitizing never changes results: every checker only *observes* (the
request stream, the acquisition order, the loop's timing), so a clean
run produces bit-identical statistics with checking on or off.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .. import obs
from ..core.request import MemoryRequest, Operation
from ..store import locks as _store_locks


class InvariantViolation(RuntimeError):
    """A request stream broke a simulation invariant."""


class TraceInvariantChecker:
    """Validates a time-ordered request stream as it flows past.

    Parameters:
        alignment: required address alignment in bytes (1 = any address).
        max_address: exclusive upper bound on ``request.end_address``
            (``None`` = unbounded).
        require_monotonic: require non-decreasing timestamps — the
            contract every driver's merge logic assumes.
        label: stream name used in violation messages.
    """

    __slots__ = ("alignment", "max_address", "require_monotonic", "label",
                 "checked", "_last_timestamp")

    def __init__(
        self,
        alignment: int = 1,
        max_address: Optional[int] = None,
        require_monotonic: bool = True,
        label: str = "trace",
    ) -> None:
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        self.alignment = alignment
        self.max_address = max_address
        self.require_monotonic = require_monotonic
        self.label = label
        self.checked = 0
        self._last_timestamp: Optional[int] = None

    def _fail(self, index: int, message: str) -> None:
        raise InvariantViolation(f"{self.label}[{index}]: {message}")

    def check(self, request: MemoryRequest) -> MemoryRequest:
        """Validate one request; returns it unchanged, raises on violation."""
        index = self.checked
        timestamp = request.timestamp
        if timestamp < 0:
            self._fail(index, f"negative timestamp {timestamp}")
        if (
            self.require_monotonic
            and self._last_timestamp is not None
            and timestamp < self._last_timestamp
        ):
            self._fail(
                index,
                f"timestamp {timestamp} goes backwards "
                f"(previous request at {self._last_timestamp})",
            )
        if request.address < 0:
            self._fail(index, f"negative address {request.address}")
        if self.alignment > 1 and request.address % self.alignment:
            self._fail(
                index,
                f"address 0x{request.address:x} not {self.alignment}-byte aligned",
            )
        if self.max_address is not None and request.end_address > self.max_address:
            self._fail(
                index,
                f"request [0x{request.address:x}, 0x{request.end_address:x}) "
                f"exceeds address space 0x{self.max_address:x}",
            )
        if request.size <= 0:
            self._fail(index, f"non-positive size {request.size}")
        operation = request.operation
        if operation is not Operation.READ and operation is not Operation.WRITE:
            self._fail(index, f"illegal operation {operation!r} (not READ/WRITE)")
        self._last_timestamp = timestamp
        self.checked += 1
        return request

    def watch(self, requests: Iterable[MemoryRequest]) -> Iterator[MemoryRequest]:
        """Yield ``requests`` unchanged, validating each one."""
        for request in requests:
            yield self.check(request)


# -- process-wide sanitize mode ---------------------------------------------

_ACTIVE_CONFIG: Optional[dict] = None


def enable(
    alignment: int = 1,
    max_address: Optional[int] = None,
    require_monotonic: bool = True,
) -> None:
    """Turn on sanitize mode for every sim driver in this process."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = {
        "alignment": alignment,
        "max_address": max_address,
        "require_monotonic": require_monotonic,
    }


def disable() -> None:
    """Turn sanitize mode back off."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = None


def active() -> bool:
    """Whether process-wide sanitize mode is on."""
    return _ACTIVE_CONFIG is not None


def make_checker(label: str) -> Optional[TraceInvariantChecker]:
    """A checker per the process-wide config, or ``None`` when off."""
    if _ACTIVE_CONFIG is None:
        return None
    return TraceInvariantChecker(label=label, **_ACTIVE_CONFIG)


# -- lock-order sanitizer ----------------------------------------------------


class LockOrderChecker:
    """Cycle detection over the observed lock-acquisition graph.

    Each thread keeps a stack of the named locks it currently holds;
    acquiring ``B`` while holding ``A`` inserts the edge ``A → B``. A
    violation is recorded when the *closing* edge of a cycle appears —
    some earlier schedule acquired the locks in the opposite order — or
    when a thread re-acquires a non-reentrant lock it already holds.
    This catches latent deadlocks from any interleaving that exercises
    both orders, without needing the deadlocking schedule itself.

    Observation-only: violations are recorded (and mirrored to
    ``repro.obs`` when a registry is active), never raised, so a
    sanitized run completes and reports at shutdown.
    """

    __slots__ = ("violations", "acquisitions", "_edges", "_local", "_lock")

    def __init__(self) -> None:
        self.violations: List[str] = []
        self.acquisitions = 0
        self._edges: Dict[str, Set[str]] = {}
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _reaches(self, start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _record(self, message: str) -> None:
        self.violations.append(message)
        registry = obs.active()
        if registry is not None:
            registry.counter("sanitize.lock_order.violations").inc()
            registry.event("sanitize.lock_order.violation", detail=message)

    def acquired(self, name: str) -> None:
        """Record that the calling thread now holds ``name``."""
        stack = self._stack()
        with self._lock:
            self.acquisitions += 1
            if name in stack:
                self._record(
                    f"re-entrant acquisition of {name} "
                    f"(already held by this thread; held stack: {stack})"
                )
            else:
                for held in stack:
                    targets = self._edges.setdefault(held, set())
                    if name in targets:
                        continue
                    if self._reaches(name, held):
                        self._record(
                            f"lock order cycle: acquiring {name} while "
                            f"holding {held}, but an earlier schedule "
                            f"acquired {held} while holding {name}"
                        )
                    targets.add(name)
            registry = obs.active()
            if registry is not None:
                registry.counter("sanitize.lock_order.acquisitions").inc()
        stack.append(name)

    def released(self, name: str) -> None:
        """Record that the calling thread released ``name``."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def edge_count(self) -> int:
        with self._lock:
            return sum(len(targets) for targets in self._edges.values())

    def report(self) -> dict:
        with self._lock:
            return {
                "acquisitions": self.acquisitions,
                "edges": sum(len(t) for t in self._edges.values()),
                "violations": list(self.violations),
            }


class TrackedLock:
    """A named ``threading.Lock`` that reports to a lock-order checker.

    Drop-in for the subset of the ``Lock`` API the repo uses (context
    manager, ``acquire``/``release``/``locked``). Handed out by
    :func:`make_lock` only while checking is enabled; the disabled path
    gets a plain ``threading.Lock`` and pays nothing.
    """

    __slots__ = ("name", "_inner", "_checker")

    def __init__(self, name: str, checker: LockOrderChecker) -> None:
        self.name = name
        self._inner = threading.Lock()
        self._checker = checker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._checker.acquired(self.name)
        return ok

    def release(self) -> None:
        self._checker.released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


_LOCK_CHECKER: Optional[LockOrderChecker] = None


def enable_lock_order_check() -> LockOrderChecker:
    """Install a process-wide lock-order checker (and return it).

    Also hooks the store's :class:`~repro.store.locks.FileLock` so
    cross-process compute locks join the in-process acquisition graph
    as the single ``repro.store.locks.FileLock`` hierarchy level.
    """
    global _LOCK_CHECKER
    _LOCK_CHECKER = LockOrderChecker()
    _store_locks.set_lock_observer(_LOCK_CHECKER)
    return _LOCK_CHECKER


def disable_lock_order_check() -> None:
    """Tear the lock-order checker back down."""
    global _LOCK_CHECKER
    _LOCK_CHECKER = None
    _store_locks.set_lock_observer(None)


def lock_order_checker() -> Optional[LockOrderChecker]:
    """The active checker, or ``None`` when lock-order checking is off."""
    return _LOCK_CHECKER


def make_lock(name: str) -> Any:
    """A lock for ``name``: tracked when checking is on, plain when off."""
    checker = _LOCK_CHECKER
    if checker is None:
        return threading.Lock()
    return TrackedLock(name, checker)


# -- event-loop stall monitor ------------------------------------------------


class LoopStallMonitor:
    """Detect event-loop stalls via heartbeat scheduling lag.

    A ``call_later`` heartbeat reschedules itself every ``interval``
    seconds; the loop can only run it late if some callback (or an
    accidental blocking call — exactly what ``conc-blocking-in-async``
    proves statically) hogged the loop in between. Lag beyond
    ``threshold`` seconds is recorded as a stall. Runs entirely on the
    loop, so it needs no locking, and it observes only timing — the
    served byte stream is untouched.
    """

    __slots__ = ("threshold", "interval", "ticks", "stalls", "max_lag",
                 "_loop", "_handle")

    def __init__(self, threshold: float = 0.25, interval: float = 0.05) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.interval = interval
        self.ticks = 0
        self.stalls: List[float] = []
        self.max_lag = 0.0
        self._loop: Any = None
        self._handle: Any = None

    def start(self, loop: Any) -> None:
        """Begin heartbeating on ``loop`` (call from the loop thread)."""
        self._loop = loop
        self._schedule()

    def _schedule(self) -> None:
        expected = self._loop.time() + self.interval
        self._handle = self._loop.call_later(self.interval, self._tick, expected)

    def _tick(self, expected: float) -> None:
        lag = self._loop.time() - expected
        self.ticks += 1
        if lag > self.max_lag:
            self.max_lag = lag
        if lag > self.threshold:
            self.stalls.append(round(lag, 6))
            registry = obs.active()
            if registry is not None:
                registry.counter("sanitize.loop.stalls").inc()
                registry.event("sanitize.loop.stall", lag_seconds=round(lag, 6))
        self._schedule()

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def report(self) -> dict:
        return {
            "ticks": self.ticks,
            "threshold_seconds": self.threshold,
            "max_lag_seconds": round(self.max_lag, 6),
            "stalls": list(self.stalls),
        }


# -- determinism double-run harness -----------------------------------------


def canonical_json(result: object) -> str:
    """Canonical serialized form used for determinism diffs."""
    from ..eval.__main__ import _json_sanitize

    return json.dumps(_json_sanitize(result), indent=2, sort_keys=True)


def check_determinism(
    experiment: str = "fig3", num_requests: int = 1000
) -> Tuple[bool, str, str]:
    """Run ``experiment`` twice and compare canonical JSON.

    Returns ``(identical, first_payload, second_payload)``. Runs happen
    in one process with identical seeds, so any divergence means hidden
    global state (unseeded RNG, mutation of shared caches, hash-order
    leakage into results).
    """
    from ..eval.__main__ import EXPERIMENTS

    if experiment not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    runner, _ = EXPERIMENTS[experiment]
    first = canonical_json(runner(num_requests))
    second = canonical_json(runner(num_requests))
    return first == second, first, second


def first_divergence(first: str, second: str) -> str:
    """Human-readable description of where two payloads first differ."""
    first_lines = first.splitlines()
    second_lines = second.splitlines()
    for number, (a, b) in enumerate(zip(first_lines, second_lines), start=1):
        if a != b:
            return f"line {number}: {a.strip()!r} != {b.strip()!r}"
    if len(first_lines) != len(second_lines):
        return (
            f"payload lengths differ: {len(first_lines)} vs "
            f"{len(second_lines)} lines"
        )
    return "payloads identical"
