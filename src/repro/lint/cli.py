"""Command line for the linter: ``python -m repro.lint``.

Examples::

    python -m repro.lint src/
    python -m repro.lint src/repro/dram --format json
    python -m repro.lint src/ --select conc            # rule family prefix
    python -m repro.lint src/ --ignore perf-slots
    python -m repro.lint src/ --format sarif > lint.sarif
    python -m repro.lint src/ --no-cache
    python -m repro.lint --check-determinism --experiment fig3 --requests 2000

Per-file analyses are cached under the store cache dir keyed on content
hash and rule-set fingerprint, so warm runs re-parse only changed files;
the hit/miss tally is printed to stderr (``--no-cache`` bypasses it).

Exit status: 0 clean, 1 findings (or determinism diff), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import Finding, all_rules, lint_project


def _format_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        if findings
        else "clean: no findings"
    )
    return "\n".join(lines)


def _format_json(findings: List[Finding]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _split_ids(raw: Optional[List[str]]) -> Optional[List[str]]:
    if not raw:
        return None
    ids: List[str] = []
    for chunk in raw:
        ids.extend(name.strip() for name in chunk.split(",") if name.strip())
    return ids or None


def _run_check_determinism(args: argparse.Namespace) -> int:
    from .sanitize import check_determinism, first_divergence

    identical, first, second = check_determinism(
        experiment=args.experiment, num_requests=args.requests
    )
    if identical:
        print(
            f"determinism check passed: {args.experiment} x2 at "
            f"{args.requests:,} requests, payloads identical "
            f"({len(first.splitlines()):,} lines of canonical JSON)"
        )
        return 0
    print(
        f"determinism check FAILED: {args.experiment} diverged between "
        f"two identical runs — {first_divergence(first, second)}",
        file=sys.stderr,
    )
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static determinism/invariant checks for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default text)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental per-file analysis cache")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="lint cache directory (default: <store cache dir>/lint)")
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule ids and exit")
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run one experiment twice and diff canonical JSON instead "
             "of linting")
    parser.add_argument(
        "--experiment", default="fig3", metavar="NAME",
        help="experiment for --check-determinism (default fig3)")
    parser.add_argument(
        "--requests", type=int, default=1000,
        help="requests per trace for --check-determinism (default 1,000)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_class in sorted(all_rules().items()):
            print(f"{rule_id}: {rule_class.description}")
        return 0

    if args.check_determinism:
        return _run_check_determinism(args)

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src/)")

    cache = None
    if not args.no_cache:
        from .cache import LintCache, default_lint_cache_dir

        root = Path(args.cache_dir) if args.cache_dir else default_lint_cache_dir()
        cache = LintCache(root)

    try:
        report = lint_project(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            cache=cache,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    findings = report.findings
    if args.format == "json":
        output = _format_json(findings)
    elif args.format == "sarif":
        from .sarif import render_sarif

        output = render_sarif(findings)
    else:
        output = _format_text(findings)
    print(output)
    if cache is not None:
        # stderr so machine-readable stdout payloads stay pure.
        print(
            f"cache: {report.cache_hits} hits, {report.cache_misses} misses",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
