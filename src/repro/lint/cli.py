"""Command line for the linter: ``python -m repro.lint``.

Examples::

    python -m repro.lint src/
    python -m repro.lint src/repro/dram --format json
    python -m repro.lint src/ --select det-unseeded-random,io-atomic-write
    python -m repro.lint src/ --ignore perf-slots
    python -m repro.lint --check-determinism --experiment fig3 --requests 2000

Exit status: 0 clean, 1 findings (or determinism diff), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import Finding, all_rules, lint_paths


def _format_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        if findings
        else "clean: no findings"
    )
    return "\n".join(lines)


def _format_json(findings: List[Finding]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _split_ids(raw: Optional[List[str]]) -> Optional[List[str]]:
    if not raw:
        return None
    ids: List[str] = []
    for chunk in raw:
        ids.extend(name.strip() for name in chunk.split(",") if name.strip())
    return ids or None


def _run_check_determinism(args: argparse.Namespace) -> int:
    from .sanitize import check_determinism, first_divergence

    identical, first, second = check_determinism(
        experiment=args.experiment, num_requests=args.requests
    )
    if identical:
        print(
            f"determinism check passed: {args.experiment} x2 at "
            f"{args.requests:,} requests, payloads identical "
            f"({len(first.splitlines()):,} lines of canonical JSON)"
        )
        return 0
    print(
        f"determinism check FAILED: {args.experiment} diverged between "
        f"two identical runs — {first_divergence(first, second)}",
        file=sys.stderr,
    )
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static determinism/invariant checks for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)")
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule ids and exit")
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run one experiment twice and diff canonical JSON instead "
             "of linting")
    parser.add_argument(
        "--experiment", default="fig3", metavar="NAME",
        help="experiment for --check-determinism (default fig3)")
    parser.add_argument(
        "--requests", type=int, default=1000,
        help="requests per trace for --check-determinism (default 1,000)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_class in sorted(all_rules().items()):
            print(f"{rule_id}: {rule_class.description}")
        return 0

    if args.check_determinism:
        return _run_check_determinism(args)

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src/)")

    try:
        findings = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    output = _format_json(findings) if args.format == "json" else _format_text(findings)
    print(output)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
